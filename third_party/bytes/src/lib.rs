//! Offline, API-compatible subset of the `bytes` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the handful of external dependencies are vendored as
//! minimal stubs under `third_party/` and wired in with
//! `[patch.crates-io]`. Only the surface the workspace actually uses is
//! implemented: [`Bytes`] — a cheaply cloneable, sliceable, immutable
//! byte buffer backed by a reference-counted allocation.
//!
//! Semantics match the real crate for that subset: `clone` and `slice`
//! are O(1) and never copy; `slice_ref` re-derives a zero-copy `Bytes`
//! from a subslice of `self`.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    /// Shared backing storage. `None` encodes the empty buffer so that
    /// `Bytes::new()` performs no allocation.
    data: Option<Arc<[u8]>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub const fn new() -> Bytes {
        Bytes {
            data: None,
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static slice. (The stub copies into shared storage; the
    /// workspace only uses this for tiny test constants.)
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        if s.is_empty() {
            return Bytes::new();
        }
        Bytes {
            data: Some(Arc::from(s)),
            start: 0,
            end: s.len(),
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy subslice; panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range {begin}..{end} out of bounds for Bytes of length {len}"
        );
        if begin == end {
            return Bytes::new();
        }
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Zero-copy `Bytes` for `subset`, which must lie within `self`.
    /// Panics otherwise (same contract as the real crate).
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let whole = self.as_ref();
        let whole_ptr = whole.as_ptr() as usize;
        let sub_ptr = subset.as_ptr() as usize;
        assert!(
            sub_ptr >= whole_ptr && sub_ptr + subset.len() <= whole_ptr + whole.len(),
            "slice_ref: subset is not contained in this Bytes"
        );
        let off = sub_ptr - whole_ptr;
        self.slice(off..off + subset.len())
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.is_empty() {
            return Bytes::new();
        }
        let end = v.len();
        Bytes {
            data: Some(Arc::from(v.into_boxed_slice())),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&a)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let s2 = s.slice(1..3);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.slice(..).len(), 8);
        assert!(b.slice(8..8).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn slice_ref_rederives() {
        let b = Bytes::from(vec![9, 8, 7, 6, 5]);
        let sub = &b[1..4];
        let s = b.slice_ref(sub);
        assert_eq!(&s[..], &[8, 7, 6]);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"abc\"");
    }
}
