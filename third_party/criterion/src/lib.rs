//! Offline, API-compatible subset of `criterion`.
//!
//! Vendored for hermetic builds (see `third_party/bytes` for the
//! rationale). Implements a small but honest wall-clock harness: each
//! benchmark is warmed up, then timed over enough iterations to exceed
//! a minimum measurement window, and the per-iteration median of
//! several samples is reported. No statistics beyond that — the numbers
//! are for trend tracking, not rigorous confidence intervals.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Build an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // First free CLI argument (as passed by `cargo bench -- <filter>`)
        // filters benchmarks by substring, like the real crate.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate throughput; reported alongside the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        self.run(&id, &mut f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filt) = &self.criterion.filter {
            if !full.contains(filt.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.per_iter);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let tput = match self.throughput {
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                let bps = n as f64 / median.as_secs_f64();
                format!("  {:>10.1} MiB/s", bps / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let eps = n as f64 / median.as_secs_f64();
                format!("  {eps:>10.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{full:<48} {:>12}{tput}", format_duration(median));
    }

    /// End the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Accepts both `&str` and `BenchmarkId` for `bench_function`.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.id)
    }
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Time `f`, storing the mean per-iteration duration of one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that runs at
        // least ~2ms so Instant overhead vanishes.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = start.elapsed();
            if el >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.per_iter = el / iters as u32;
                return;
            }
            iters = (iters * 4).min(1 << 20);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
