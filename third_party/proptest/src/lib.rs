//! Offline, API-compatible subset of `proptest`.
//!
//! Vendored for hermetic builds (see `third_party/bytes` for the
//! rationale). Implements the combinator and macro surface this
//! workspace uses — `proptest!`, `prop_oneof!`, `any`, `Just`,
//! `prop_map`, ranges, tuples, `collection::vec`, `option::of`,
//! `prop_assert*` — as a deterministic randomized test runner.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking.** A failing case reports its seed and values via
//!   the panic message instead of a minimized counterexample.
//! * **Deterministic seeding.** Cases derive from a fixed seed (or
//!   `PROPTEST_SEED`), so failures reproduce exactly in CI.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix-64 generator driving all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test
        // generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing exactly one value.
#[derive(Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    /// The alternative strategies.
    pub arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// A `&str` pattern is a regex strategy in real proptest. This subset
// supports the shapes used in-repo: an optional char-class prefix and a
// trailing `{m,n}` repetition; generated strings are printable chars
// (with occasional multi-byte ones, so UTF-8 handling is exercised).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = self
            .rfind('{')
            .and_then(|i| {
                let body = self.get(i + 1..self.len().checked_sub(1)?)?;
                let (lo, hi) = body.split_once(',')?;
                Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
            })
            .unwrap_or((0usize, 32usize));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                if rng.below(16) == 0 {
                    const WIDE: [char; 4] = ['é', 'λ', '☃', '文'];
                    WIDE[rng.below(WIDE.len() as u64) as usize]
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            })
            .collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Box a strategy as a trait object (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.len.clone()).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// Strategy for `Option<T>`; see [`of`].
    pub struct OptionStrategy<S>(S);

    /// `Some` from `inner` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Runner configuration and entry points used by the macros.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by a property body (e.g. via `?` on a fallible
    /// step). The case body runs in a closure returning
    /// `Result<(), TestCaseError>`, so `?` on an otherwise-unconstrained
    /// error type infers to this via the reflexive `From`.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl TestCaseError {
        /// Reject the case with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    /// Root seed: `PROPTEST_SEED` env var, or a fixed default so runs
    /// are reproducible.
    pub fn root_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FF_EE00_DEAD_BEEF)
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
    /// Alias matching the real crate's module layout.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Assert a condition inside a property; panics (failing the case) with
/// the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { arms: vec![ $($crate::boxed($strat)),+ ] }
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                // Derive a per-test seed from the test path so distinct
                // properties explore distinct sequences.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let root = $crate::test_runner::root_seed() ^ h;
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::TestRng::new(root.wrapping_add(case));
                    $(
                        let $pat = $crate::Strategy::generate(&$strat, &mut rng);
                    )+
                    // Run the body in a fallible closure so `?` works,
                    // matching real proptest's per-case TestCaseResult.
                    #[allow(clippy::redundant_closure_call)]
                    let __case: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __case {
                        panic!(
                            "property {} failed at case {case}: {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn ranges_stay_in_bounds(a in 10u64..20, b in 0i32..=5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((0..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(any::<u8>(), 1..8),
            o in crate::option::of(0u32..4),
            m in (0u32..10).prop_map(|x| x * 2),
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            if let Some(x) = o { prop_assert!(x < 4); }
            prop_assert_eq!(m % 2, 0);
            prop_assert!((1..=3).contains(&pick));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
