//! Offline, API-compatible subset of `parking_lot`.
//!
//! Vendored for hermetic builds (see `third_party/bytes` for the
//! rationale). Wraps `std::sync::Mutex`, exposing `parking_lot`'s
//! poison-free `lock()` signature.

#![warn(missing_docs)]

use std::sync::TryLockError;

/// A mutual-exclusion primitive. `lock()` never returns a poison error:
/// a panicked holder simply releases the lock, as in `parking_lot`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
