//! Soak test: a long stretch of virtual time under mixed load — reads,
//! writes, metadata churn, credit-grant changes, READDIR sweeps — with
//! global invariants checked at the end: balanced registrations, no
//! leaks, no pending exposures, consistent server counters, and exact
//! file contents.

use std::rc::Rc;

use rpcrdma::{Design, StrategyKind};
use sim_core::{Payload, SimRng, Simulation};
use workloads::{build_rdma, solaris_sdr, Backend};

#[test]
fn mixed_load_soak_leaves_no_residue() {
    for (seed, design, strategy) in [
        (1001u64, Design::ReadWrite, StrategyKind::Fmr),
        (2002, Design::ReadRead, StrategyKind::Dynamic),
        (3003, Design::ReadWrite, StrategyKind::Cache),
    ] {
        let mut sim = Simulation::new(seed);
        let h = sim.handle();
        let profile = solaris_sdr();
        let bed = Rc::new(build_rdma(
            &h,
            &profile,
            design,
            strategy,
            Backend::Tmpfs,
            3,
        ));
        let bed2 = bed.clone();
        let h2 = h.clone();
        sim.block_on(async move {
            let bed = bed2;
            let root = bed.server.root_handle();
            let done = sim_core::sync::Semaphore::new(0);

            // A grant-churn task exercising dynamic flow control.
            if let Some(rpc) = &bed.rpc_server {
                let rpc = rpc.clone();
                let h3 = h2.clone();
                h2.spawn(async move {
                    for grant in [8u32, 2, 16, 4, 32].iter().cycle().take(20) {
                        h3.sleep(sim_core::SimDuration::from_millis(2)).await;
                        rpc.set_credit_grant(*grant);
                    }
                });
            }

            for (ci, client) in bed.clients.iter().enumerate() {
                let nfs = client.nfs.clone();
                let mem = client.mem.clone();
                let done = done.clone();
                let mut rng = SimRng::new(seed ^ (ci as u64 + 1));
                h2.spawn(async move {
                    let dir = nfs.mkdir(root, &format!("c{ci}")).await.unwrap();
                    let buf = mem.alloc(256 * 1024);
                    let mut files = Vec::new();
                    for round in 0..120u64 {
                        match rng.gen_range(10) {
                            0..=1 => {
                                let f = nfs
                                    .create(dir.handle(), &format!("f{round}"))
                                    .await
                                    .unwrap();
                                files.push((f.handle(), format!("f{round}"), 0u64));
                            }
                            2..=5 if !files.is_empty() => {
                                let i = rng.gen_range(files.len() as u64) as usize;
                                let len = 1024 * (1 + rng.gen_range(128));
                                let seed2 = round * 1000 + ci as u64;
                                buf.write(0, Payload::synthetic(seed2, len));
                                nfs.write(files[i].0, 0, &buf, 0, len as u32, rng.gen_bool(0.2))
                                    .await
                                    .unwrap();
                                files[i].2 = seed2 << 32 | len;
                            }
                            6..=8 if !files.is_empty() => {
                                let i = rng.gen_range(files.len() as u64) as usize;
                                let (seed2, len) = (files[i].2 >> 32, files[i].2 & 0xFFFF_FFFF);
                                if len > 0 {
                                    let (data, _) = nfs
                                        .read(files[i].0, 0, len as u32, Some((&buf, 0)))
                                        .await
                                        .unwrap();
                                    assert!(
                                        data.content_eq(&Payload::synthetic(seed2, len)),
                                        "soak corruption: client {ci} file {}",
                                        files[i].1
                                    );
                                }
                            }
                            _ => {
                                let entries = nfs.readdir(dir.handle()).await.unwrap();
                                assert_eq!(entries.len(), files.len());
                                if !files.is_empty() && rng.gen_bool(0.3) {
                                    let (_, name, _) = files
                                        .swap_remove(rng.gen_range(files.len() as u64) as usize);
                                    nfs.remove(dir.handle(), &name).await.unwrap();
                                }
                            }
                        }
                    }
                    done.add_permits(1);
                });
            }
            for _ in 0..3 {
                done.acquire().await.forget();
            }
        });
        sim.run(); // quiesce every background release

        // --- Invariants. ------------------------------------------------
        let server_hca = bed.server_hca.as_ref().unwrap();
        for (who, hca) in std::iter::once(("server", server_hca)).chain(
            bed.clients
                .iter()
                .map(|c| ("client", c.hca.as_ref().unwrap())),
        ) {
            let stats = hca.reg_stats();
            assert_eq!(
                stats.leaked_mrs, 0,
                "{who} leaked MRs ({design:?}/{strategy:?})"
            );
            if strategy == StrategyKind::Cache {
                // The registration cache parks live registrations in its
                // free lists by design; they may only outnumber
                // deregistrations, never the reverse.
                assert!(
                    stats.dynamic_regs + stats.fmr_maps >= stats.deregs + stats.fmr_unmaps,
                    "{who} deregistered more than it registered"
                );
            } else {
                assert_eq!(
                    stats.dynamic_regs + stats.fmr_maps,
                    stats.deregs + stats.fmr_unmaps,
                    "{who} unbalanced registrations ({design:?}/{strategy:?})"
                );
            }
        }
        // Cache strategy may park registered slabs; all other strategies
        // must leave zero live TPT entries beyond the setup-time ones.
        if strategy != StrategyKind::Cache {
            let report = server_hca.exposure_report();
            assert_eq!(
                report.current_bytes, 0,
                "server still exposes memory after quiesce"
            );
        }
        let rpc = bed.rpc_server.as_ref().unwrap();
        assert_eq!(
            rpc.stats.exposures_pending.get(),
            0,
            "pending RDMA_DONE exposures after quiesce"
        );
        assert_eq!(rpc.stats.inflight.get(), 0, "ops still in flight");
        assert_eq!(
            bed.server.stats.reads.get()
                + bed.server.stats.writes.get()
                + bed.server.stats.others.get(),
            rpc.stats.ops.get(),
            "NFS and RPC op counters disagree"
        );
    }
}
