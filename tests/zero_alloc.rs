//! Allocation regression tests for the hot paths the executor and
//! marshalling overhaul optimized.
//!
//! A counting global allocator measures the steady state:
//!
//! - RPC/RDMA header encode into a warmed per-connection scratch
//!   encoder must perform **zero** heap allocations.
//! - A warmed executor (slab, ready queue, timer wheel and all bucket
//!   vectors at capacity) must poll tasks without per-event
//!   allocations; only the `run()`-scoped batch buffer may grow, so the
//!   bound is a small constant independent of the poll count.
//! - With span tracing **disabled**, the observability hooks on the
//!   RPC hot path (span/inject/adopt/current_ctx) and the always-on
//!   flight-recorder ring must perform **zero** heap allocations.
//! - A steady-state **cached NFS READ** on the Read-Write design with
//!   the server's zero-copy gather path must move zero payload bytes
//!   through host copies (`copied_bytes` frozen, `zero_copy_bytes`
//!   advancing) and must not allocate payload-sized buffers anywhere in
//!   the stack: heap bytes per op stay far below the record size.
//!
//! All measurements live in ONE `#[test]` so no sibling test thread
//! can inflate the counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ib_verbs::Rkey;
use rpcrdma::{Design, MsgType, RdmaHeader, ReadChunk, Segment, StrategyKind};
use sim_core::{yield_now, Payload, SimDuration, Simulation};
use workloads::{build_rdma_custom, solaris_sdr, Backend, RdmaOpts};
use xdr::{Encoder, XdrCodec};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn alloc_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// A realistic READ-call header: one read chunk, one write chunk.
fn sample_header() -> RdmaHeader {
    let mut hdr = RdmaHeader::new(7, 32, MsgType::Msg);
    hdr.read_chunks.push(ReadChunk {
        position: 128,
        segment: Segment {
            rkey: Rkey(0xabcd),
            len: 131_072,
            addr: 0x10_0000,
        },
    });
    hdr.write_chunks.push(vec![Segment {
        rkey: Rkey(0x1234),
        len: 131_072,
        addr: 0x20_0000,
    }]);
    hdr
}

const TASKS: u64 = 256;
const ITERS: u64 = 64;

fn spawn_churn(sim: &mut Simulation) {
    for t in 0..TASKS {
        let h = sim.handle();
        sim.spawn(async move {
            for i in 0..ITERS {
                let d = (t.wrapping_mul(7919) ^ i.wrapping_mul(104_729)) % 4096 + 1;
                h.sleep(SimDuration::from_nanos(d)).await;
                yield_now().await;
            }
        });
    }
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    // ---- RPC/RDMA header encode into a warmed scratch encoder. ------
    // The counter is process-wide, so a libtest harness thread can
    // slip a stray allocation into the window. Take the minimum over a
    // few attempts: noise only ever adds, while a real hot-path
    // allocation shows up in every attempt.
    let hdr = sample_header();
    let mut enc = Encoder::new();
    hdr.encode_into(&mut enc); // warm the buffer to message size
    let wire_len = enc.len();
    let mut encode_allocs = u64::MAX;
    for _ in 0..5 {
        let before = allocs();
        for _ in 0..1_000 {
            hdr.encode_into(&mut enc);
        }
        encode_allocs = encode_allocs.min(allocs() - before);
        if encode_allocs == 0 {
            break;
        }
    }
    assert_eq!(enc.len(), wire_len);
    assert_eq!(
        encode_allocs, 0,
        "header encode_into must not allocate in steady state"
    );

    // ---- Executor poll/timer churn after warmup passes. -------------
    // Warmup runs: grow the task slab, free list, ready queue, timer
    // wheel buckets and drain vector to capacity. Two passes, because
    // each wheel rebase aligns deadlines to buckets differently and
    // the per-bucket capacity maxima take a pass to be discovered.
    let mut sim = Simulation::new(9);
    spawn_churn(&mut sim);
    sim.run();
    let warm_polls = sim.polls();
    spawn_churn(&mut sim);
    sim.run();

    // Measured run: same shape of work through the warmed structures.
    // (Task spawning is outside the measurement on purpose: boxing the
    // future and its waker is a per-task — not per-event — cost.)
    spawn_churn(&mut sim);
    let polls_before = sim.polls();
    let before = allocs();
    sim.run();
    let run_allocs = allocs() - before;
    let polls = sim.polls() - polls_before;

    assert!(polls >= warm_polls, "later passes should repeat the work");
    assert!(polls > 10_000, "workload too small to be meaningful");
    // Per-event cost is zero; what remains is bounded buffer-capacity
    // discovery (the run()-scoped batch vector plus the occasional
    // timer-wheel bucket finding a new load maximum) — a small
    // constant, independent of how many events are processed.
    assert!(
        run_allocs <= 64,
        "steady-state executor run allocated {run_allocs} times for {polls} polls"
    );

    // ---- Tracing plumbing + flight recorder, tracing DISABLED. ------
    // The observability hooks ride every RPC leg and replication
    // record, so their disabled fast path must be allocation-free:
    // span/inject/adopt/current_ctx collapse to one flag read, and the
    // always-on flight recorder stores plain-old-data into its
    // preallocated ring. Warm the ring past capacity first so the
    // measured window exercises the overwrite path, then demand ZERO
    // heap traffic — not merely "small".
    let mut sim = Simulation::new(0x0B5E);
    let h = sim.handle();
    sim.spawn(async move {
        for i in 0..(2 * sim_core::FLIGHT_CAPACITY as u64) {
            h.flight("warmup", "fill", i, 0);
        }
        // Min-over-attempts for the same reason as the encode section:
        // the process-wide counter can pick up harness-thread noise.
        let mut trace_allocs = u64::MAX;
        let mut trace_bytes = u64::MAX;
        for _ in 0..5 {
            let before_allocs = allocs();
            let before_bytes = alloc_bytes();
            for i in 0..10_000u64 {
                let _op = h.span_remote("test", "op", Some(7), h.current_ctx());
                h.trace_inject(i);
                let _ctx = h.trace_adopt(i);
                h.flight("test", "event", i, i ^ 0xFF);
            }
            trace_allocs = trace_allocs.min(allocs() - before_allocs);
            trace_bytes = trace_bytes.min(alloc_bytes() - before_bytes);
            if trace_allocs == 0 {
                break;
            }
        }
        assert_eq!(
            trace_allocs, 0,
            "disabled-tracing hooks allocated {trace_allocs} times \
             ({trace_bytes} bytes) over 10k op cycles"
        );
    });
    sim.run();

    // ---- Cached READ through the zero-copy server pipeline. ---------
    // Read-Write design, all-physical server window: the reply gathers
    // page-cache slices straight into vectored RDMA Writes. After a
    // warmup pass, every byte of a cached READ must ride the zero-copy
    // path (no staged host copy on the server), and nothing in the
    // stack may allocate a payload-sized buffer — for 1 MiB records the
    // per-op heap traffic is bounded at a small fraction of the record.
    let record: u64 = 1 << 20;
    let file: u64 = 8 * record;
    let ops: u64 = 16;
    let mut sim = Simulation::new(0x2C07);
    let h = sim.handle();
    sim.block_on(async move {
        let profile = solaris_sdr();
        let bed = build_rdma_custom(
            &h,
            &profile,
            RdmaOpts {
                cfg: profile.rpc.with_design(Design::ReadWrite),
                client_strategy: StrategyKind::Dynamic,
                server_strategy: StrategyKind::AllPhysical,
                server_hca: None,
            },
            Backend::Tmpfs,
            1,
        );
        let root = bed.server.root_handle();
        let c = &bed.clients[0];
        let fh = c
            .nfs
            .create(root, "zero-copy")
            .await
            .expect("create")
            .handle();
        let buf = c.mem.alloc(record);
        buf.write(0, Payload::synthetic(0x5EED, record));
        let mut off = 0;
        while off < file {
            c.nfs
                .write(fh, off, &buf, 0, record as u32, false)
                .await
                .expect("prepopulate");
            off += record;
        }
        // Warmup: heat the page cache, the connection scratch encoders,
        // the registration bookkeeping and the per-QP pending queue.
        let mut off = 0;
        while off < file {
            c.nfs
                .read(fh, off, record as u32, Some((&buf, 0)))
                .await
                .expect("warmup read");
            off += record;
        }

        let rpc = bed.rpc_server.as_ref().expect("rdma testbed");
        let copied0 = rpc.stats.copied_bytes.get();
        let zero0 = rpc.stats.zero_copy_bytes.get();
        let bytes0 = alloc_bytes();
        for i in 0..ops {
            let (data, _eof) = c
                .nfs
                .read(fh, (i * record) % file, record as u32, Some((&buf, 0)))
                .await
                .expect("steady-state read");
            assert_eq!(data.len(), record);
        }
        let copied = rpc.stats.copied_bytes.get() - copied0;
        let zeroed = rpc.stats.zero_copy_bytes.get() - zero0;
        let heap_per_op = (alloc_bytes() - bytes0) / ops;

        assert_eq!(
            copied, 0,
            "cached READ staged {copied} payload bytes through server host copies"
        );
        assert_eq!(
            zeroed,
            ops * record,
            "every cached READ byte must take the zero-copy gather path"
        );
        assert!(
            heap_per_op < record / 8,
            "steady-state cached READ allocated {heap_per_op} heap bytes/op \
             for {record}-byte records — a payload-sized buffer is being \
             allocated somewhere on the hot path"
        );
    });

    // ---- Cached WRITE through the receive-side scatter pipeline. ----
    // The WRITE mirror of the READ section: the server pulls the
    // client's read chunks straight into page-cache pages (SgList of
    // refcounted pieces, no bounce buffer). At steady state an UNSTABLE
    // WRITE must stage zero bytes, every byte must be accounted by
    // `server.write.zero_copy_bytes`, and per-op heap traffic stays far
    // below the record size (the pending-write ledger keeps payload
    // *references*, not copies).
    let mut sim = Simulation::new(0x2C08);
    let h = sim.handle();
    sim.block_on(async move {
        let profile = solaris_sdr();
        let mut cfg = profile.rpc.with_design(Design::ReadWrite);
        cfg.server_zero_copy = true;
        let bed = build_rdma_custom(
            &h,
            &profile,
            RdmaOpts {
                cfg,
                client_strategy: StrategyKind::Dynamic,
                server_strategy: StrategyKind::AllPhysical,
                server_hca: None,
            },
            Backend::Tmpfs,
            1,
        );
        let root = bed.server.root_handle();
        let c = &bed.clients[0];
        let fh = c
            .nfs
            .create(root, "zero-copy-write")
            .await
            .expect("create")
            .handle();
        let buf = c.mem.alloc(record);
        buf.write(0, Payload::synthetic(0x5EED, record));
        // Warmup: size the file, heat the page cache, the scratch
        // encoders, the registration bookkeeping and the pending-write
        // ledger's vectors.
        let mut off = 0;
        while off < file {
            c.nfs
                .write(fh, off, &buf, 0, record as u32, false)
                .await
                .expect("warmup write");
            off += record;
        }
        c.nfs.commit(fh).await.expect("warmup commit");

        let rpc = bed.rpc_server.as_ref().expect("rdma testbed");
        let copied0 = rpc.stats.copied_bytes.get();
        let zero0 = rpc.stats.write_zero_copy_bytes.get();
        let bytes0 = alloc_bytes();
        for i in 0..ops {
            let n = c
                .nfs
                .write(fh, (i * record) % file, &buf, 0, record as u32, false)
                .await
                .expect("steady-state write");
            assert_eq!(n as u64, record);
        }
        let copied = rpc.stats.copied_bytes.get() - copied0;
        let zeroed = rpc.stats.write_zero_copy_bytes.get() - zero0;
        let heap_per_op = (alloc_bytes() - bytes0) / ops;

        assert_eq!(
            copied, 0,
            "cached WRITE staged {copied} payload bytes through server host copies"
        );
        assert_eq!(
            zeroed,
            ops * record,
            "every cached WRITE byte must take the receive-side scatter path"
        );
        assert!(
            heap_per_op < record / 8,
            "steady-state cached WRITE allocated {heap_per_op} heap bytes/op \
             for {record}-byte records — a payload-sized buffer is being \
             allocated or copied somewhere on the hot path"
        );
    });
}
