//! Workspace-level integration tests: cross-crate invariants that span
//! the whole stack (verbs → rpcrdma → nfs → fs), including determinism,
//! design equivalence, concurrent-client isolation and a deterministic
//! random-operation fuzz against a reference model.

use std::collections::HashMap;
use std::rc::Rc;

use rpcrdma::{Design, StrategyKind};
use sim_core::{Payload, SimRng, Simulation};
use workloads::{build_rdma, solaris_sdr, Backend, Testbed};

fn bed(sim: &Simulation, design: Design, strategy: StrategyKind, clients: usize) -> Testbed {
    let profile = solaris_sdr();
    build_rdma(
        &sim.handle(),
        &profile,
        design,
        strategy,
        Backend::Tmpfs,
        clients,
    )
}

#[test]
fn same_seed_same_virtual_time() {
    let run = || {
        let mut sim = Simulation::new(1234);
        let h = sim.handle();
        let bed = bed(&sim, Design::ReadWrite, StrategyKind::Fmr, 2);
        sim.block_on(async move {
            let root = bed.server.root_handle();
            for (i, c) in bed.clients.iter().enumerate() {
                let f = c.nfs.create(root, &format!("f{i}")).await.unwrap();
                let buf = c.mem.alloc(256 * 1024);
                buf.write(0, Payload::synthetic(i as u64, 256 * 1024));
                c.nfs
                    .write(f.handle(), 0, &buf, 0, 256 * 1024, false)
                    .await
                    .unwrap();
                let _ = c.nfs.read(f.handle(), 0, 256 * 1024, None).await.unwrap();
            }
            h.now().as_nanos()
        })
    };
    assert_eq!(run(), run(), "simulation must be bit-deterministic");
}

#[test]
fn designs_produce_identical_file_state() {
    // The two transport designs must be observationally equivalent at
    // the file-system level.
    let run = |design: Design| {
        let mut sim = Simulation::new(5);
        let bed = bed(&sim, design, StrategyKind::Dynamic, 1);
        sim.block_on(async move {
            let root = bed.server.root_handle();
            let c = &bed.clients[0];
            let f = c.nfs.create(root, "state").await.unwrap();
            let buf = c.mem.alloc(64 * 1024);
            for i in 0..8u64 {
                buf.write(0, Payload::synthetic(i, 64 * 1024));
                c.nfs
                    .write(f.handle(), i * 64 * 1024, &buf, 0, 64 * 1024, false)
                    .await
                    .unwrap();
            }
            // Overwrite a middle window.
            buf.write(0, Payload::synthetic(99, 10_000));
            c.nfs
                .write(f.handle(), 123_456, &buf, 0, 10_000, true)
                .await
                .unwrap();
            let (data, _) = c.nfs.read(f.handle(), 0, 512 * 1024, None).await.unwrap();
            data.materialize().to_vec()
        })
    };
    assert_eq!(run(Design::ReadRead), run(Design::ReadWrite));
}

#[test]
fn concurrent_clients_are_isolated() {
    let mut sim = Simulation::new(17);
    let h = sim.handle();
    let bed = Rc::new(bed(&sim, Design::ReadWrite, StrategyKind::Cache, 4));
    let bed2 = bed.clone();
    sim.block_on(async move {
        let bed = bed2;
        let root = bed.server.root_handle();
        let done = sim_core::sync::Semaphore::new(0);
        for (i, c) in bed.clients.iter().enumerate() {
            let nfs = c.nfs.clone();
            let mem = c.mem.clone();
            let done = done.clone();
            h.spawn(async move {
                let f = nfs.create(root, &format!("client{i}")).await.unwrap();
                let buf = mem.alloc(128 * 1024);
                for round in 0..16u64 {
                    buf.write(0, Payload::synthetic(i as u64 * 1000 + round, 128 * 1024));
                    nfs.write(f.handle(), round * 131072, &buf, 0, 131072, false)
                        .await
                        .unwrap();
                }
                // Verify every round's data.
                for round in 0..16u64 {
                    let (data, _) = nfs
                        .read(f.handle(), round * 131072, 131072, None)
                        .await
                        .unwrap();
                    assert!(
                        data.content_eq(&Payload::synthetic(i as u64 * 1000 + round, 131072)),
                        "client {i} round {round} corrupted"
                    );
                }
                done.add_permits(1);
            });
        }
        for _ in 0..4 {
            done.acquire().await.forget();
        }
    });
    assert_eq!(bed.server.stats.writes.get(), 64);
    assert_eq!(bed.server.stats.reads.get(), 64);
}

#[test]
fn randomized_ops_match_reference_model() {
    // Deterministic fuzz: a few hundred random operations mirrored
    // against an in-memory model; full contents checked at the end.
    for (seed, design, strategy) in [
        (101u64, Design::ReadWrite, StrategyKind::Dynamic),
        (202, Design::ReadWrite, StrategyKind::Cache),
        (303, Design::ReadRead, StrategyKind::Dynamic),
        (404, Design::ReadWrite, StrategyKind::AllPhysical),
    ] {
        let mut sim = Simulation::new(seed);
        let bed = Rc::new(bed(&sim, design, strategy, 1));
        let bed2 = bed.clone();
        sim.block_on(async move {
            let bed = bed2;
            let root = bed.server.root_handle();
            let c = &bed.clients[0];
            let mut rng = SimRng::new(seed ^ 0xfeed);
            // Model: file name -> expected contents.
            let mut model: HashMap<String, Vec<u8>> = HashMap::new();
            let mut handles: HashMap<String, nfs::FileHandle> = HashMap::new();
            let buf = c.mem.alloc(64 * 1024);

            for _op in 0..300 {
                let which = rng.gen_range(10);
                let name = format!("f{}", rng.gen_range(6));
                match which {
                    0..=1 => {
                        // create (idempotent-ish: ignore EXIST)
                        match c.nfs.create(root, &name).await {
                            Ok(attr) => {
                                handles.insert(name.clone(), attr.handle());
                                model.entry(name).or_default();
                            }
                            Err(nfs::NfsError::Status(nfs::NfsStat::Exist)) => {}
                            Err(e) => panic!("create: {e}"),
                        }
                    }
                    2..=5 => {
                        // write random window
                        if let Some(&fh) = handles.get(&name) {
                            let off = rng.gen_range(64 * 1024);
                            let len = 1 + rng.gen_range(32 * 1024);
                            let pattern: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
                            buf.write(0, Payload::real(pattern.clone()));
                            c.nfs
                                .write(fh, off, &buf, 0, len as u32, false)
                                .await
                                .unwrap();
                            let m = model.get_mut(&name).unwrap();
                            if m.len() < (off + len) as usize {
                                m.resize((off + len) as usize, 0);
                            }
                            m[off as usize..(off + len) as usize].copy_from_slice(&pattern);
                        }
                    }
                    6..=8 => {
                        // read random window and check
                        if let Some(&fh) = handles.get(&name) {
                            let m = &model[&name];
                            if m.is_empty() {
                                continue;
                            }
                            let off = rng.gen_range(m.len() as u64);
                            let len = 1 + rng.gen_range(32 * 1024);
                            let (data, _) = c.nfs.read(fh, off, len as u32, None).await.unwrap();
                            let got = data.materialize();
                            let end = (off as usize + got.len()).min(m.len());
                            assert_eq!(
                                &got[..],
                                &m[off as usize..end],
                                "read mismatch in {name} at {off}+{len} ({design:?}/{strategy:?})"
                            );
                        }
                    }
                    _ => {
                        // remove
                        if handles.contains_key(&name) && rng.gen_bool(0.3) {
                            c.nfs.remove(root, &name).await.unwrap();
                            handles.remove(&name);
                            model.remove(&name);
                        }
                    }
                }
            }
            // Final sweep: every file's full contents must match.
            for (name, m) in &model {
                if m.is_empty() {
                    continue;
                }
                let fh = handles[name];
                let (data, _) = c.nfs.read(fh, 0, m.len() as u32, None).await.unwrap();
                assert_eq!(&data.materialize()[..], &m[..], "final state of {name}");
            }
        });
        // No leaked registrations after the dust settles.
        sim.run();
        for host in std::iter::once(&bed.clients[0].hca)
            .flatten()
            .chain(bed.server_hca.iter())
        {
            assert_eq!(host.reg_stats().leaked_mrs, 0, "{design:?}/{strategy:?}");
        }
    }
}

#[test]
fn server_survives_many_short_sessions() {
    // Sequential bursts from several clients, with the server's task
    // queue and TPT accounting staying consistent throughout.
    let mut sim = Simulation::new(31);
    let bed = bed(&sim, Design::ReadWrite, StrategyKind::Fmr, 3);
    sim.block_on(async move {
        let root = bed.server.root_handle();
        for round in 0..5 {
            for (i, c) in bed.clients.iter().enumerate() {
                let name = format!("r{round}-c{i}");
                let f = c.nfs.create(root, &name).await.unwrap();
                let buf = c.mem.alloc(32 * 1024);
                buf.write(0, Payload::synthetic(round as u64, 32 * 1024));
                c.nfs
                    .write(f.handle(), 0, &buf, 0, 32 * 1024, false)
                    .await
                    .unwrap();
                c.nfs.remove(root, &name).await.unwrap();
            }
        }
        let (bytes_used, inodes) = bed.clients[0].nfs.fsstat(root).await.unwrap();
        assert_eq!(bytes_used, 0, "all files removed");
        assert_eq!(inodes, 1, "only the root remains");
    });
}
