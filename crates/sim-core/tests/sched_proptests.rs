//! Property tests for the executor's weighted scheduling classes: the
//! batch drain must follow the documented weighted round-robin
//! exactly, which implies conservation (every spawned task runs once),
//! no starvation of any positive-weight class, and that the default
//! single-class configuration is plain FIFO — the ordering the golden
//! schedule and every figure fingerprint pin.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use proptest::prelude::*;
use sim_core::Simulation;

/// Spawn `counts[c]` tasks into class `c` (weights per `weights`), run
/// the simulation, and return the order task bodies executed in.
fn record_run(weights: &[u32], counts: &[usize]) -> Vec<(usize, usize)> {
    let mut sim = Simulation::new(42);
    for (c, w) in weights.iter().enumerate() {
        sim.set_class_weight(c, *w);
    }
    let log: Rc<RefCell<Vec<(usize, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    for (c, n) in counts.iter().enumerate() {
        for i in 0..*n {
            let log = log.clone();
            sim.spawn_class(c, async move {
                log.borrow_mut().push((c, i));
            });
        }
    }
    sim.run();
    Rc::try_unwrap(log).unwrap().into_inner()
}

/// The documented drain order: rounds over classes in index order,
/// up to `weight` tasks per class per round, FIFO within a class.
fn reference_interleave(weights: &[u32], counts: &[usize]) -> Vec<(usize, usize)> {
    let mut queues: Vec<VecDeque<(usize, usize)>> = counts
        .iter()
        .enumerate()
        .map(|(c, n)| (0..*n).map(|i| (c, i)).collect())
        .collect();
    let mut out = Vec::new();
    while queues.iter().any(|q| !q.is_empty()) {
        for (c, q) in queues.iter_mut().enumerate() {
            let w = weights.get(c).copied().unwrap_or(1).max(1);
            for _ in 0..w {
                match q.pop_front() {
                    Some(t) => out.push(t),
                    None => break,
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn weighted_drain_matches_reference(
        weights in proptest::collection::vec(1..=4u32, 1..4),
        extra_counts in proptest::collection::vec(0..6usize, 1..4),
    ) {
        // Same arity for both vectors; a class with zero tasks is fine.
        let n = weights.len().min(extra_counts.len());
        let (weights, counts) = (&weights[..n], &extra_counts[..n]);
        let got = record_run(weights, counts);
        let want = reference_interleave(weights, counts);
        // Exact order equality implies weight-sum conservation (every
        // task exactly once) and no starvation of any class.
        prop_assert_eq!(got, want);
    }

    #[test]
    fn single_class_is_fifo(count in 1..24usize, weight in 1..=8u32) {
        // Whatever the weight, one class must drain in spawn order —
        // the historical executor contract every fingerprint pins.
        let got = record_run(&[weight], &[count]);
        let want: Vec<(usize, usize)> = (0..count).map(|i| (0, i)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn schedule_is_deterministic(
        weights in proptest::collection::vec(1..=4u32, 1..4),
        counts in proptest::collection::vec(0..6usize, 1..4),
    ) {
        let n = weights.len().min(counts.len());
        let a = record_run(&weights[..n], &counts[..n]);
        let b = record_run(&weights[..n], &counts[..n]);
        prop_assert_eq!(a, b);
    }
}
