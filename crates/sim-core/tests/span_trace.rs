//! Span tracing invariants: per-task LIFO nesting, consistent parent
//! ids, enclosing intervals — under arbitrary interleavings of nested
//! spans, sleeps and concurrent tasks — plus Chrome trace_event schema
//! sanity on the JSON export.

use proptest::prelude::*;
use sim_core::{chrome_trace_json, validate_json, Sim, SimDuration, Simulation, Span, SpanRecord};

const COMPONENTS: [&str; 4] = ["client", "hca", "server", "fs"];
const NAMES: [&str; 4] = ["call", "reg", "io", "send"];

/// One step of a task's plan.
#[derive(Clone, Debug)]
enum Step {
    /// Open a span (component, name picked by index) and push its guard.
    Enter(usize),
    /// Drop the innermost open guard (no-op on an empty stack).
    Exit,
    /// Advance virtual time, possibly yielding to other tasks.
    Sleep(u64),
}

fn arb_plan() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0..16usize).prop_map(Step::Enter),
            Just(Step::Exit),
            (1..500u64).prop_map(Step::Sleep),
        ],
        1..24,
    )
}

async fn run_plan(sim: Sim, proc_num: u32, plan: Vec<Step>) {
    // Root span tags the whole task with a procedure number, mirroring
    // how an RPC call wraps its phases.
    let _root = sim.span_proc("task", "root", proc_num);
    let mut stack: Vec<Span> = Vec::new();
    for step in plan {
        match step {
            Step::Enter(i) => stack.push(sim.span(COMPONENTS[i % 4], NAMES[(i / 4) % 4])),
            Step::Exit => {
                stack.pop();
            }
            Step::Sleep(ns) => sim.sleep(SimDuration::from_nanos(ns)).await,
        }
    }
    // Remaining guards drop innermost-first as `stack` unwinds in
    // reverse; `_root` last.
    while stack.pop().is_some() {}
}

fn check_invariants(spans: &[SpanRecord]) {
    // Ids unique; parents recorded, same-task, opened earlier, and the
    // parent interval encloses the child's.
    let mut seen = std::collections::HashSet::new();
    for s in spans {
        assert!(seen.insert(s.id), "duplicate span id {}", s.id);
        assert!(s.start <= s.end, "span {} ends before it starts", s.id);
    }
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        if let Some(pid) = s.parent {
            let p = by_id
                .get(&pid)
                .unwrap_or_else(|| panic!("span {} has unrecorded parent {pid}", s.id));
            assert_eq!(p.task, s.task, "parent on a different task");
            assert!(pid < s.id, "parent {pid} opened after child {}", s.id);
            assert!(
                p.start <= s.start && s.end <= p.end,
                "parent interval [{:?},{:?}] does not enclose child [{:?},{:?}]",
                p.start,
                p.end,
                s.start,
                s.end
            );
        }
    }
    // LIFO nesting per task: two spans on one task either nest (one
    // lies on the other's parent chain) or their lifetimes are
    // guard-ordered such that intervals never partially overlap.
    let ancestor = |mut id: u64, target: u64| -> bool {
        loop {
            match by_id.get(&id).and_then(|s| s.parent) {
                Some(p) if p == target => return true,
                Some(p) => id = p,
                None => return false,
            }
        }
    };
    for a in spans {
        for b in spans {
            if a.id >= b.id || a.task != b.task {
                continue;
            }
            let disjoint = a.end <= b.start || b.end <= a.start;
            let nested = ancestor(b.id, a.id) || ancestor(a.id, b.id);
            assert!(
                disjoint || nested,
                "spans {} and {} on task {} partially overlap without nesting",
                a.id,
                b.id,
                a.task
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spans_nest_lifo_with_consistent_parents(
        plans in proptest::collection::vec(arb_plan(), 1..6),
        seed in 0..u64::MAX,
    ) {
        let mut sim = Simulation::new(seed);
        sim.enable_span_tracing();
        for (i, plan) in plans.into_iter().enumerate() {
            let h = sim.handle();
            sim.spawn(run_plan(h, i as u32, plan));
        }
        sim.run();
        let spans = sim.take_spans();
        prop_assert!(!spans.is_empty(), "every task records at least its root span");
        check_invariants(&spans);
        // Every root span resolves its own proc; exported JSON stays valid.
        validate_json(&chrome_trace_json(&spans)).unwrap();
    }
}

#[test]
fn spans_record_lifecycle_across_awaits() {
    let mut sim = Simulation::new(7);
    sim.enable_span_tracing();
    let h = sim.handle();
    sim.block_on(async move {
        let _call = h.span_proc("client", "call", 6);
        {
            let _reg = h.span("hca", "reg");
            h.sleep(SimDuration::from_micros(3)).await;
        }
        let _io = h.span("fs", "read");
        h.sleep(SimDuration::from_micros(10)).await;
    });
    let spans = sim.take_spans();
    assert_eq!(spans.len(), 3);
    check_invariants(&spans);
    let call = spans.iter().find(|s| s.name == "call").unwrap();
    let reg = spans.iter().find(|s| s.name == "reg").unwrap();
    let io = spans.iter().find(|s| s.name == "read").unwrap();
    assert_eq!(call.proc_num, Some(6));
    assert_eq!(reg.parent, Some(call.id));
    assert_eq!(io.parent, Some(call.id));
    assert_eq!(reg.end.saturating_since(reg.start).as_micros(), 3);
    assert_eq!(call.end.saturating_since(call.start).as_micros(), 13);
}

#[test]
fn chrome_export_has_trace_event_schema() {
    let mut sim = Simulation::new(11);
    sim.enable_span_tracing();
    let h = sim.handle();
    sim.block_on(async move {
        let _call = h.span_proc("client", "call", 6);
        let _reg = h.span("hca", "reg");
        h.sleep(SimDuration::from_micros(1)).await;
    });
    let json = chrome_trace_json(&sim.take_spans());
    validate_json(&json).expect("export must be valid JSON");
    // Chrome trace_event essentials: complete events with ts/dur under
    // a traceEvents array, and our args carry span identity.
    for needle in [
        "\"traceEvents\":[",
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":0",
        "\"tid\":",
        "\"cat\":\"hca\"",
        "\"name\":\"reg\"",
        "\"proc\":6",
        "\"parent\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}

#[test]
fn disabled_span_tracing_records_nothing() {
    let mut sim = Simulation::new(3);
    let h = sim.handle();
    sim.block_on(async move {
        assert!(!h.span_tracing());
        let _s = h.span("client", "call");
        h.sleep(SimDuration::from_micros(1)).await;
    });
    assert!(sim.take_spans().is_empty());
}
