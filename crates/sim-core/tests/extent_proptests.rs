//! Model-based property tests: the sparse extent map must agree with a
//! flat byte-array reference under arbitrary write/read interleavings.

use proptest::prelude::*;
use sim_core::{ExtentMap, Payload};

const SPACE: usize = 4096;

#[derive(Clone, Debug)]
enum Op {
    Write { off: usize, data: Vec<u8> },
    Read { off: usize, len: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SPACE, proptest::collection::vec(any::<u8>(), 1..256)).prop_map(|(off, mut data)| {
            data.truncate(SPACE - off);
            if data.is_empty() {
                data.push(1);
            }
            Op::Write {
                off: off.min(SPACE - 1),
                data,
            }
        }),
        (0..SPACE, 1..256usize).prop_map(|(off, len)| Op::Read {
            off,
            len: len.min(SPACE - off).max(1),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn extent_map_matches_flat_array(ops in proptest::collection::vec(arb_op(), 1..64)) {
        let mut map = ExtentMap::new();
        let mut flat = vec![0u8; SPACE];
        for op in ops {
            match op {
                Op::Write { off, data } => {
                    let end = (off + data.len()).min(SPACE);
                    let data = &data[..end - off];
                    map.write(off as u64, Payload::real(data.to_vec()));
                    flat[off..end].copy_from_slice(data);
                }
                Op::Read { off, len } => {
                    let got = map.read(off as u64, len as u64).materialize();
                    prop_assert_eq!(&got[..], &flat[off..off + len]);
                }
            }
        }
        // Full-space sweep at the end.
        let got = map.read(0, SPACE as u64).materialize();
        prop_assert_eq!(&got[..], &flat[..]);
    }

    #[test]
    fn synthetic_and_real_writes_interleave_correctly(
        seed in 1u64..1000,
        cuts in proptest::collection::vec((0..SPACE, 1..128usize), 1..16),
    ) {
        let mut map = ExtentMap::new();
        let mut flat = vec![0u8; SPACE];
        // Base: one big synthetic extent.
        let base = Payload::synthetic(seed, SPACE as u64);
        let base_bytes = base.materialize();
        map.write(0, base.clone());
        flat.copy_from_slice(&base_bytes);
        // Punch real-byte holes into it.
        for (off, len) in cuts {
            let len = len.min(SPACE - off).max(1);
            let patch = vec![0xEE; len];
            map.write(off as u64, Payload::real(patch.clone()));
            flat[off..off + len].copy_from_slice(&patch);
        }
        let got = map.read(0, SPACE as u64).materialize();
        prop_assert_eq!(&got[..], &flat[..]);
    }
}
