//! Golden-schedule regression test for the executor.
//!
//! The determinism contract ("same seed ⇒ same schedule") is easy to
//! state and easy to break silently: a refactor that reorders ready
//! tasks or equal-deadline timers still passes every functional test
//! while changing every simulated result. This test pins the exact
//! schedule of a workload that exercises the ready queue, wake dedup,
//! timer registration/cancellation and nested spawns, as an FNV-1a hash
//! of the first [`GOLDEN_EVENTS`] trace events.
//!
//! If this hash changes, the executor's schedule changed. That is only
//! acceptable in a PR that *intends* to change scheduling semantics —
//! update the constant there and say so loudly in the PR description.

use sim_core::executor::TraceEvent;
use sim_core::{yield_now, SimDuration, Simulation};

/// Number of trace events folded into the golden hash.
const GOLDEN_EVENTS: usize = 4096;

/// Pinned hash, captured from the pre-overhaul executor (HashMap task
/// table + BinaryHeap timers). The slab/timer-wheel rewrite must
/// reproduce the identical schedule.
const GOLDEN_HASH: u64 = 0x9d8a13b2e8ec18f7;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn hash_events(events: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in events.iter().take(GOLDEN_EVENTS) {
        fnv1a(&mut h, &e.at.as_nanos().to_le_bytes());
        fnv1a(&mut h, e.category.as_bytes());
        fnv1a(&mut h, e.detail.as_bytes());
    }
    h
}

/// A workload that leans on every scheduling path:
/// - 64 "worker" tasks sleeping with RNG-derived scattered deadlines
///   (dense ties included) in a loop, yielding between rounds;
/// - nested spawns mid-run (task table growth while polling);
/// - sleeps raced against shorter sleeps and dropped (timer cancel);
/// - equal deadlines across distinct tasks (sequence-order ties).
fn run_workload() -> Vec<TraceEvent> {
    let mut sim = Simulation::new(0xD00D);
    sim.enable_tracing();

    for t in 0..128u64 {
        let h = sim.handle();
        sim.spawn(async move {
            let mut rng = h.fork_rng();
            for round in 0..32u64 {
                // Mix of scattered and deliberately-tied deadlines.
                let d = if round % 3 == 0 {
                    500 // tie with every other task on this round
                } else {
                    rng.gen_range(2000) + 1
                };
                h.sleep(SimDuration::from_nanos(d)).await;
                h.trace("worker", || format!("t{t} r{round}"));
                yield_now().await;

                if round == 4 {
                    // Nested spawn while the pool is mid-flight.
                    let h2 = h.clone();
                    h.spawn(async move {
                        h2.sleep(SimDuration::from_nanos(50 + t)).await;
                        h2.trace("nested", || format!("n{t}"));
                    });
                }
                if round == 7 {
                    // Start a long sleep, then drop it: timer cancel.
                    let long = h.sleep(SimDuration::from_secs(10));
                    drop(long);
                    h.trace("cancel", || format!("c{t}"));
                }
            }
        });
    }
    sim.run();
    sim.take_trace()
}

#[test]
fn golden_schedule_is_stable() {
    let events = run_workload();
    assert!(
        events.len() >= GOLDEN_EVENTS,
        "workload produced only {} events, need {GOLDEN_EVENTS}",
        events.len()
    );
    let h = hash_events(&events);
    assert_eq!(
        h, GOLDEN_HASH,
        "executor schedule changed: golden hash {h:#018x} != pinned {GOLDEN_HASH:#018x}"
    );
}

#[test]
fn golden_workload_is_internally_deterministic() {
    // Independent of the pinned constant: two fresh runs must agree.
    assert_eq!(hash_events(&run_workload()), hash_events(&run_workload()));
}
