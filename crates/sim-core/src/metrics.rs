//! Hierarchical metrics registry: one namespace for every counter in
//! the simulated stack.
//!
//! Components register named counters (`server.drc.replays`,
//! `fabric.port3.dropped`, `rpcrdma.regcache.hits`, `executor.polls`,
//! ...) into the simulation's [`MetricsRegistry`] and keep the returned
//! [`Counter`] handle for hot-path bumps — a `Cell` increment, no map
//! lookup, no allocation. Names use dot-separated components, most
//! general first, so prefix filters select whole subsystems.
//!
//! The registry is held by the executor core and reached from any
//! [`crate::Sim`] handle via `Sim::metrics()`, so components need no
//! extra constructor plumbing. Snapshots iterate a `BTreeMap`, which
//! makes the text/JSON dumps deterministic: two same-seed runs produce
//! byte-identical output (pinned by a chaos-harness test).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::stats::Counter;

/// A shared, named-counter registry (cheap to clone).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<BTreeMap<String, Rc<Counter>>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`. Every caller asking for
    /// the same name shares one counter, so independent components can
    /// aggregate into a single series.
    pub fn counter(&self, name: &str) -> Rc<Counter> {
        let mut map = self.inner.borrow_mut();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Rc::new(Counter::new());
        map.insert(name.to_string(), c.clone());
        c
    }

    /// Current value of `name`, or `None` if never registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.inner.borrow().get(name).map(|c| c.get())
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Sorted `(name, value)` snapshot.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sum every counter whose name starts with `prefix` and ends with
    /// `suffix` (e.g. `sum_matching("fabric.", ".dropped")` totals the
    /// per-port drop counters).
    pub fn sum_matching(&self, prefix: &str, suffix: &str) -> u64 {
        self.inner
            .borrow()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.ends_with(suffix))
            .map(|(_, v)| v.get())
            .sum()
    }

    /// Zero every registered counter (exclude warmup from a report).
    pub fn reset(&self) {
        for c in self.inner.borrow().values() {
            c.reset();
        }
    }

    /// Deterministic `name value` text dump, one counter per line,
    /// sorted by name.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.inner.borrow().iter() {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.get().to_string());
            out.push('\n');
        }
        out
    }

    /// Deterministic JSON object dump (`{"name": value, ...}`), sorted
    /// by name.
    pub fn to_json(&self) -> String {
        let map = self.inner.borrow();
        let mut out = String::from("{");
        for (i, (k, v)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(k));
            out.push_str("\":");
            out.push_str(&v.get().to_string());
        }
        out.push('}');
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("client.retransmits");
        let b = reg.counter("client.retransmits");
        a.inc();
        b.add(2);
        assert_eq!(reg.get("client.retransmits"), Some(3));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.counter("m.mid").add(3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
        assert_eq!(reg.to_text(), "a.first 2\nm.mid 3\nz.last 1\n");
        assert_eq!(reg.to_json(), r#"{"a.first":2,"m.mid":3,"z.last":1}"#);
    }

    #[test]
    fn sum_matching_filters_prefix_and_suffix() {
        let reg = MetricsRegistry::new();
        reg.counter("fabric.port0.dropped").add(2);
        reg.counter("fabric.port1.dropped").add(3);
        reg.counter("fabric.port1.retransmits").add(7);
        reg.counter("client.dropped").add(100);
        assert_eq!(reg.sum_matching("fabric.", ".dropped"), 5);
        assert_eq!(reg.sum_matching("fabric.", ".retransmits"), 7);
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("executor.polls");
        c.add(10);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(reg.get("executor.polls"), Some(0));
    }

    #[test]
    fn clones_share_the_map() {
        let reg = MetricsRegistry::new();
        let reg2 = reg.clone();
        reg.counter("x").inc();
        assert_eq!(reg2.get("x"), Some(1));
    }
}
