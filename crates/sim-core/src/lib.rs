//! # sim-core — deterministic discrete-event simulation runtime
//!
//! The foundation of the `nfs-rdma-rs` workspace: a single-threaded,
//! virtual-time async executor plus the synchronization and resource
//! primitives needed to model a storage/networking testbed —
//! FIFO-contended hardware units ([`Resource`]), links with bandwidth
//! and latency ([`Link`]), CPUs with copy/interrupt cost accounting
//! ([`Cpu`]), channels, semaphores and completions ([`sync`]).
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — identical seeds yield identical event orders and
//!    identical virtual-time results on every platform. This is what
//!    makes each reproduced figure a regression test.
//! 2. **Blocking fidelity** — the modelled kernel code blocks (an NFS
//!    server thread waits on an RDMA Read completion); simulation
//!    processes are `async fn`s that genuinely suspend.
//! 3. **Emergent contention** — throughput limits arise from resource
//!    occupancy (wire time, TPT transactions, CPU copies), never from
//!    hard-coded caps.
//!
//! Parallelism is used *between* simulations: [`sweep::parallel_sweep`]
//! runs independent parameter points on OS threads.
//!
//! ## Example
//!
//! ```
//! use sim_core::{Simulation, SimDuration, Resource};
//!
//! let mut sim = Simulation::new(42);
//! let h = sim.handle();
//! let bus = Resource::new(&h, "io-bus", 1);
//! let b2 = bus.clone();
//! let t = sim.block_on(async move {
//!     b2.use_for(SimDuration::from_micros(10)).await;
//!     h.now()
//! });
//! assert_eq!(t.as_nanos(), 10_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod executor;
pub mod extent;
pub mod flight;
pub mod metrics;
pub mod payload;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod sweep;
pub mod sync;
pub mod time;
pub mod timer_wheel;
pub mod trace;

pub use cpu::{Cpu, CpuCosts};
pub use executor::{yield_now, Sim, Simulation, Span, Timeout, TraceEvent, DEFAULT_CLASS};
pub use extent::ExtentMap;
pub use flight::{format_flight, FlightRecord, FLIGHT_CAPACITY};
pub use metrics::MetricsRegistry;
pub use payload::{Payload, SgList};
pub use resource::{Link, Resource};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, Meter, Summary};
pub use time::{transfer_time, SimDuration, SimTime};
pub use trace::{
    aggregate_phases, chrome_trace_json, validate_json, PhaseStats, SpanRecord, TraceCtx,
};
