//! Always-on flight recorder: a fixed-capacity ring of recent
//! protocol-level events.
//!
//! Unlike span tracing (off by default, drained wholesale), the flight
//! recorder is **always armed**: instrumented code calls
//! [`crate::Sim::flight`] unconditionally, and the ring keeps the last
//! `capacity` records, overwriting the oldest. Harnesses dump the ring
//! to `results/` when a gate fails or state is found corrupted — the
//! deterministic sim-time equivalent of a black box, replacing ad-hoc
//! env-var trace dumps.
//!
//! The design constraints, in order:
//!
//! 1. **Zero steady-state allocation** — records are plain-old-data
//!    (`Copy`, `&'static str` labels, two `u64` operands) written into
//!    a buffer preallocated at construction. `tests/zero_alloc.rs`
//!    pins this.
//! 2. **No schedule perturbation** — recording touches no timer, RNG,
//!    or task state, so the golden-schedule hash and every seeded
//!    result are identical with and without call sites.
//! 3. **Deterministic contents** — records are stamped with virtual
//!    time and the recording task; same seed, same ring.

use std::cell::{Cell, RefCell};

use crate::time::SimTime;

/// Default ring capacity: enough to hold the full protocol history of
/// a failover window without ever reallocating.
pub const FLIGHT_CAPACITY: usize = 1024;

/// One flight-recorder entry. Plain old data: recording one is two
/// pointer copies and four integer stores.
#[derive(Clone, Copy, Debug)]
pub struct FlightRecord {
    /// Virtual time the event was recorded.
    pub at: SimTime,
    /// Executor task that recorded it (`u64::MAX` outside any task).
    pub task: u64,
    /// Component that recorded it ("cluster", "repl", "server", ...).
    pub component: &'static str,
    /// Event name ("kill", "promote", "marker_ack", ...).
    pub event: &'static str,
    /// First event-specific operand (seq, xid, node id, ...).
    pub a: u64,
    /// Second event-specific operand.
    pub b: u64,
}

/// The ring itself. Owned by the executor core; reached through
/// [`crate::Sim::flight`] and [`crate::Simulation::flight_records`].
pub(crate) struct FlightRing {
    /// Preallocated storage; grows by `push` (never reallocating)
    /// until `capacity`, then wraps.
    buf: RefCell<Vec<FlightRecord>>,
    capacity: usize,
    /// Records ever written; `total % capacity` is the next overwrite
    /// slot once the buffer is full.
    total: Cell<u64>,
}

impl FlightRing {
    pub(crate) fn new(capacity: usize) -> FlightRing {
        FlightRing {
            buf: RefCell::new(Vec::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            total: Cell::new(0),
        }
    }

    /// Append one record, overwriting the oldest once full. Never
    /// allocates: the buffer's capacity was reserved at construction.
    pub(crate) fn record(&self, rec: FlightRecord) {
        let mut buf = self.buf.borrow_mut();
        let total = self.total.get();
        if buf.len() < self.capacity {
            buf.push(rec);
        } else {
            buf[(total % self.capacity as u64) as usize] = rec;
        }
        self.total.set(total + 1);
    }

    /// Records ever written (not capped by the ring size).
    pub(crate) fn total(&self) -> u64 {
        self.total.get()
    }

    /// The ring's contents in chronological order (oldest surviving
    /// record first). Allocates — dump-time only.
    pub(crate) fn snapshot(&self) -> Vec<FlightRecord> {
        let buf = self.buf.borrow();
        if buf.len() < self.capacity {
            return buf.clone();
        }
        let head = (self.total.get() % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(buf.len());
        out.extend_from_slice(&buf[head..]);
        out.extend_from_slice(&buf[..head]);
        out
    }
}

/// Render a flight-recorder snapshot in the dump format harnesses
/// write to `results/` (one record per line, same shape as the old
/// `FAILOVER_TRACE` stream):
///
/// ```text
///         1500000ns [cluster] kill_primary a=0 b=0
/// ```
pub fn format_flight(records: &[FlightRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{:>12}ns [{}] {} a={} b={}\n",
            r.at.as_nanos(),
            r.component,
            r.event,
            r.a,
            r.b
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, a: u64) -> FlightRecord {
        FlightRecord {
            at: SimTime::from_nanos(at),
            task: 1,
            component: "test",
            event: "ev",
            a,
            b: 0,
        }
    }

    #[test]
    fn ring_wraps_and_overwrites_oldest() {
        let ring = FlightRing::new(4);
        for i in 0..3 {
            ring.record(rec(i, i));
        }
        // Not yet full: everything survives, in order.
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.iter().map(|r| r.a).collect::<Vec<_>>(), [0, 1, 2]);
        // Fill and wrap: 7 records through a 4-slot ring keep the last 4.
        for i in 3..7 {
            ring.record(rec(i, i));
        }
        assert_eq!(ring.total(), 7);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.iter().map(|r| r.a).collect::<Vec<_>>(), [3, 4, 5, 6]);
        // Chronological: timestamps never decrease across the seam.
        assert!(snap.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn format_is_one_line_per_record() {
        let ring = FlightRing::new(2);
        ring.record(rec(1_500_000, 9));
        let s = format_flight(&ring.snapshot());
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("1500000ns [test] ev a=9 b=0"));
    }
}
