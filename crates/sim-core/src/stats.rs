//! Measurement helpers: throughput meters and summary statistics used
//! by the workload drivers and the figure harnesses.

use std::cell::Cell;

use crate::time::{SimDuration, SimTime};

/// A monotonic event counter cheap enough for per-message hot paths
/// (a [`Cell`] bump, no allocation). Used by the fabric's fault
/// observability (dropped messages, link-level retransmits).
#[derive(Debug, Default)]
pub struct Counter(Cell<u64>);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Count one event.
    pub fn inc(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Count `n` events at once.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Events counted so far.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Zero the counter.
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// Accumulates bytes/ops over a virtual-time window and reports rates.
#[derive(Clone, Debug)]
pub struct Meter {
    start: SimTime,
    bytes: u64,
    ops: u64,
}

impl Meter {
    /// Open a measurement window at `start`.
    pub fn new(start: SimTime) -> Self {
        Meter {
            start,
            bytes: 0,
            ops: 0,
        }
    }

    /// Record one completed operation of `bytes`.
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Window start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Throughput in MB/s (decimal megabytes, as the paper reports) over
    /// the window ending at `now`.
    pub fn mb_per_sec(&self, now: SimTime) -> f64 {
        let secs = now.saturating_since(self.start).as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / secs
    }

    /// Operations per second over the window ending at `now`.
    pub fn ops_per_sec(&self, now: SimTime) -> f64 {
        let secs = now.saturating_since(self.start).as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.ops as f64 / secs
    }
}

/// Log-bucketed latency histogram: ~4% relative resolution across
/// nanoseconds to minutes, O(1) record, O(buckets) quantile.
///
/// ```
/// use sim_core::{Histogram, SimDuration};
/// let mut h = Histogram::new();
/// for us in 1..=100 {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.quantile(0.5).as_micros();
/// assert!((45..=55).contains(&p50));
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    /// buckets[i] counts samples with log1.0905(ns) == i (16 buckets
    /// per power of two).
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    const SUB_BUCKETS: u32 = 16;

    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            // 64 powers of two x 16 sub-buckets covers u64 range.
            buckets: vec![0; (64 * Self::SUB_BUCKETS) as usize],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn index(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        let exp = 63 - ns.leading_zeros();
        let frac = if exp >= 4 {
            ((ns >> (exp - 4)) & 0xF) as u32
        } else {
            0
        };
        (exp * Self::SUB_BUCKETS + frac) as usize
    }

    fn bucket_value(i: usize) -> u64 {
        let exp = i as u32 / Self::SUB_BUCKETS;
        let frac = i as u32 % Self::SUB_BUCKETS;
        if exp >= 4 {
            (1u64 << exp) + ((frac as u64) << (exp - 4))
        } else {
            1u64 << exp
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Smallest sample (exact), or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest sample (exact).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Quantile in `[0, 1]`, accurate to the bucket resolution (~4%).
    /// Clamped into `[min, max]` of the recorded samples, so a quantile
    /// of a single sample is exact rather than its bucket floor.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_nanos(
                    Self::bucket_value(i).clamp(self.min_ns, self.max_ns),
                );
            }
        }
        self.max()
    }

    /// Fold `other`'s samples into `self` (elementwise bucket add plus
    /// count/sum/min/max), so per-shard histograms combine into one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Summary as a JSON object: count, mean/p50/p90/p99/max in
    /// nanoseconds.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count,
            self.mean().as_nanos(),
            self.quantile(0.50).as_nanos(),
            self.quantile(0.90).as_nanos(),
            self.quantile(0.99).as_nanos(),
            self.max_ns,
        )
    }
}

impl std::fmt::Display for Histogram {
    /// `count=… mean=… p50=… p90=… p99=… max=…`, durations in
    /// microseconds — the one-line summary the harnesses print.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let us = |d: SimDuration| d.as_nanos() as f64 / 1_000.0;
        write!(
            f,
            "count={} mean={:.1}us p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us",
            self.count,
            us(self.mean()),
            us(self.quantile(0.50)),
            us(self.quantile(0.90)),
            us(self.quantile(0.99)),
            us(self.max()),
        )
    }
}

/// Online min/mean/max summary of a series of durations.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Smallest sample, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_rates() {
        let mut m = Meter::new(SimTime::ZERO);
        m.record(500_000);
        m.record(500_000);
        let now = SimTime::from_nanos(1_000_000_000); // 1s
        assert!((m.mb_per_sec(now) - 1.0).abs() < 1e-9);
        assert!((m.ops_per_sec(now) - 2.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 1_000_000);
        assert_eq!(m.ops(), 2);
    }

    #[test]
    fn meter_zero_window() {
        let m = Meter::new(SimTime::ZERO);
        assert_eq!(m.mb_per_sec(SimTime::ZERO), 0.0);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for us in [5u64, 1, 9, 3] {
            s.add(SimDuration::from_micros(us));
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), SimDuration::from_micros(1));
        assert_eq!(s.max(), SimDuration::from_micros(9));
        assert_eq!(
            s.mean(),
            SimDuration::from_micros(4) + SimDuration::from_nanos(500)
        );
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_quantiles_roughly_right() {
        let mut h = Histogram::new();
        // Uniform 1..=1000 us.
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).as_micros() as f64;
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!((450.0..=550.0).contains(&p50), "p50={p50}");
        assert!((930.0..=1000.0).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), SimDuration::from_micros(1000));
        let mean = h.mean().as_micros();
        assert!((495..=505).contains(&mean), "mean={mean}");
    }

    #[test]
    fn histogram_edge_cases() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_nanos(u32::MAX as u64 * 1000));
        assert_eq!(h.count(), 3);
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_resolution_within_7_percent() {
        for ns in [100u64, 5_000, 123_456, 9_999_999, 1 << 40] {
            let mut h = Histogram::new();
            h.record(SimDuration::from_nanos(ns));
            let got = h.quantile(0.5).as_nanos() as f64;
            let err = (got - ns as f64).abs() / ns as f64;
            assert!(err < 0.07, "ns={ns} got={got} err={err}");
        }
    }

    #[test]
    fn histogram_single_sample_quantiles_are_exact() {
        // Min clamp: every quantile of one sample is that sample, not
        // the bucket floor beneath it.
        for ns in [1u64, 999, 123_456, 9_999_999] {
            let mut h = Histogram::new();
            h.record(SimDuration::from_nanos(ns));
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q).as_nanos(), ns, "ns={ns} q={q}");
            }
            assert_eq!(h.min().as_nanos(), ns);
        }
    }

    #[test]
    fn histogram_quantile_never_below_min() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(1000));
        h.record(SimDuration::from_nanos(1_000_000));
        assert!(h.quantile(0.0) >= SimDuration::from_nanos(1000));
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for us in 1..=500u64 {
            a.record(SimDuration::from_micros(us));
        }
        for us in 501..=1000u64 {
            b.record(SimDuration::from_micros(us));
        }
        let mut whole = Histogram::new();
        for us in 1..=1000u64 {
            whole.record(SimDuration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), SimDuration::from_micros(1));
        assert_eq!(a.max(), SimDuration::from_micros(1000));
        assert_eq!(a.mean(), whole.mean());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(SimDuration::from_micros(7));
        let before = (a.count(), a.min(), a.max(), a.mean());
        a.merge(&Histogram::new());
        assert_eq!(before, (a.count(), a.min(), a.max(), a.mean()));
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.min(), SimDuration::from_micros(7));
    }

    #[test]
    fn histogram_summary_display_and_json() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(10));
        let text = h.to_string();
        assert!(text.contains("count=1"), "{text}");
        assert!(text.contains("p50=10.0us"), "{text}");
        assert!(text.contains("max=10.0us"), "{text}");
        let json = h.to_json();
        assert_eq!(
            json,
            "{\"count\":1,\"mean_ns\":10000,\"p50_ns\":10000,\
             \"p90_ns\":10000,\"p99_ns\":10000,\"max_ns\":10000}"
        );
    }
}
