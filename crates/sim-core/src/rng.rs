//! Deterministic pseudo-random numbers for simulations.
//!
//! The simulator must be bit-for-bit reproducible from a seed, so the
//! core does not depend on external RNG crates. [`SimRng`] is a
//! SplitMix64 generator: tiny state, excellent statistical quality for
//! simulation workloads, and trivially seedable.

/// A deterministic SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Equal seeds yield identical
    /// sequences on every platform.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derive an independent child generator; used to give each
    /// simulated host or workload thread its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method so the result is
    /// unbiased.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Sample an exponential distribution with the given mean (used for
    /// OLTP think times and arrival processes).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0).
        let u = 1.0 - self.gen_f64();
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(13);
            assert!(v < 13);
            let w = r.gen_range_in(5, 9);
            assert!((5..9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = SimRng::new(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen_exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(123);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
