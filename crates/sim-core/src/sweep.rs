//! Parallel parameter sweeps.
//!
//! A single `Simulation` is deterministic and single-threaded; figure
//! harnesses need dozens of independent runs (thread counts × record
//! sizes × designs). [`parallel_sweep`] fans those runs out across OS
//! threads with `std::thread::scope` — the data-race-free pattern from
//! the workspace's HPC guides — and returns results in input order, so
//! output is as reproducible as a serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over every element of `params` using up to
/// `std::thread::available_parallelism()` worker threads. Results are
/// returned in the same order as `params`. Panics in `f` propagate.
pub fn parallel_sweep<P, R, F>(params: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return params.into_iter().map(f).collect();
    }

    // Work-stealing by index over a shared counter; each worker writes
    // results into disjoint slots.
    let inputs: Vec<std::sync::Mutex<Option<P>>> = params
        .into_iter()
        .map(|p| std::sync::Mutex::new(Some(p)))
        .collect();
    let outputs: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let p = inputs[i].lock().unwrap().take().expect("input taken twice");
                let r = f(p);
                *outputs[i].lock().unwrap() = Some(r);
            });
        }
    });

    outputs
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing sweep result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_sweep((0..100).collect(), |i: u32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_sweep(Vec::<u32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn runs_simulations_independently() {
        use crate::executor::Simulation;
        use crate::time::SimDuration;
        let out = parallel_sweep(vec![1u64, 2, 3, 4], |seed| {
            let mut sim = Simulation::new(seed);
            let h = sim.handle();
            sim.block_on(async move {
                h.sleep(SimDuration::from_micros(seed)).await;
                h.now().as_nanos()
            })
        });
        assert_eq!(out, vec![1_000, 2_000, 3_000, 4_000]);
    }

    #[test]
    fn single_element_uses_serial_path() {
        let out = parallel_sweep(vec![7u32], |i| i + 1);
        assert_eq!(out, vec![8]);
    }
}
