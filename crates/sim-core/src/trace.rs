//! Structured lifecycle tracing: nested spans over virtual time.
//!
//! A [`crate::executor::Span`] (entered via `Sim::span`) records one
//! phase of an RPC's life — client marshal, memory registration, fabric
//! transit, server dispatch, backend I/O, RDMA data movement, reply —
//! stamped with sim-time, the executing task and the enclosing span.
//! Spans nest per task: the innermost open span on the entering task
//! becomes the parent, and the guard's `Drop` closes the span, so
//! nesting is LIFO by construction (a proptest pins this).
//!
//! Tracing is **off by default and free when off**: entering a span
//! then costs one flag read and constructs an inert guard — no
//! allocation, no RNG draw, no timer — so the instrumented hot path
//! stays on the `tests/zero_alloc.rs` and golden-schedule gates.
//!
//! Completed spans export two ways:
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON ("X" complete
//!   events), loadable in Perfetto / `chrome://tracing`.
//! * [`aggregate_phases`] — per-(procedure, phase) [`Histogram`]s for
//!   latency-anatomy tables. A span inherits its procedure from the
//!   nearest proc-tagged ancestor, so only the outermost span of an
//!   RPC needs `Sim::span_proc`.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};

use crate::metrics::escape_json;
use crate::stats::Histogram;
use crate::time::SimTime;

/// Compact cross-node trace context: the correlation id of one causal
/// tree plus the span the next hop should link from. Carried
/// *out-of-band* with RPC calls (so modeled wire bytes never change)
/// and in-band on replication records (behind a flag bit, so untraced
/// encodes are byte-identical). `(0, 0)` means "no context" — tracing
/// disabled, or an untraced root.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Correlation id shared by every span of one causal tree.
    pub trace_id: u64,
    /// Span on the sending node the receiving span links from.
    pub parent_span: u64,
}

impl TraceCtx {
    /// The empty ("untraced") context.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
    };
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id (creation order).
    pub id: u64,
    /// Innermost span open on the same task at entry, if any.
    pub parent: Option<u64>,
    /// Executor task the span was entered on.
    pub task: u64,
    /// Component ("client", "hca", "fabric", "server", "fs", ...).
    pub component: &'static str,
    /// Phase name within the component ("marshal", "reg", "pull", ...).
    pub name: &'static str,
    /// RPC procedure number, when tagged at entry (`Sim::span_proc`).
    pub proc_num: Option<u32>,
    /// Causal-tree correlation id: inherited from the enclosing span,
    /// adopted from a remote [`TraceCtx`], or minted fresh for roots.
    /// 0 only for spans recorded before cross-node tracing existed.
    pub trace_id: u64,
    /// Remote span this span was causally triggered by (rendered as a
    /// Chrome/Perfetto flow edge); 0 when the trigger was local.
    pub flow_from: u64,
    /// Entry instant (virtual time).
    pub start: SimTime,
    /// Exit instant (virtual time).
    pub end: SimTime,
}

/// Retained span storage: one fixed 48-byte plain-old-data record
/// per span, written **once at enter** into the `done` buffer and
/// patched in place (`end_ns` only) at exit. Retention cost per span
/// is thus under one cache line streamed plus one hot-line store —
/// the previous design (open-span structs copied into 104-byte
/// records at exit) more than doubled the tracing-enabled hot-path
/// overhead. Strings are interned (see [`Tracer::intern`]); sentinel
/// fields stand in for the `Option`s of the public [`SpanRecord`].
#[derive(Clone, Copy, Default)]
struct Packed {
    start_ns: u64,
    /// [`OPEN_NS`] until the span exits.
    end_ns: u64,
    task: u64,
    id: u32,
    /// [`NO_PARENT`] for roots.
    parent: u32,
    /// 0 when the trigger was local.
    flow: u32,
    trace: u32,
    /// [`NO_PROC`] when untagged.
    proc_num: u32,
    /// Index into the intern table of (component, name) pairs.
    names: u32,
}

const OPEN_NS: u64 = u64::MAX;
const NO_PARENT: u32 = u32::MAX;
const NO_PROC: u32 = u32::MAX;

/// Stack entry for one open span: everything enter/exit and
/// [`Tracer::current_ctx`] need without touching the `done` buffer —
/// the record index (to patch `end_ns`), the span id, and the cached
/// trace id children inherit.
#[derive(Clone, Copy)]
struct OpenEntry {
    id: u32,
    idx: u32,
    trace: u32,
}

/// Multiplicative u64 hasher (FxHash-style) for the span hot path's
/// integer-keyed maps — SipHash dominates the tracing-enabled span
/// cost otherwise. No map is ever iterated for output, so the
/// hasher cannot affect determinism.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// (ptr, len) identity of one `&'static str` — the intern key half.
type StrKey = (usize, usize);

/// Open span stacks, indexed by executor task *slot* (low id bits) —
/// a dense vector, not a map, because the span enter/exit pair is the
/// tracing-enabled hot path and a direct offset beats hashing and
/// bucket probing. Slots are reused from the executor's free list, so
/// the vector stays bounded by peak task concurrency; emptied stacks
/// keep their capacity, making steady-state enter/exit
/// allocation-free. Generation reuse cannot mix stacks: span guards
/// are RAII, so a task's stack is empty again before its slot is
/// freed.
#[derive(Default)]
struct OpenStacks {
    by_slot: Vec<Vec<OpenEntry>>,
    /// Spans entered outside any task (`block_on` driver code).
    detached: Vec<OpenEntry>,
}

/// `task_slot(NO_TASK)`: the executor's "no current task" sentinel.
const DETACHED_SLOT: usize = u32::MAX as usize;

impl OpenStacks {
    fn stack_mut(&mut self, task: u64) -> &mut Vec<OpenEntry> {
        let slot = crate::executor::task_slot(task);
        if slot == DETACHED_SLOT {
            return &mut self.detached;
        }
        if slot >= self.by_slot.len() {
            self.by_slot.resize_with(slot + 1, Vec::new);
        }
        &mut self.by_slot[slot]
    }

    fn stack(&self, task: u64) -> &[OpenEntry] {
        let slot = crate::executor::task_slot(task);
        if slot == DETACHED_SLOT {
            return &self.detached;
        }
        self.by_slot.get(slot).map_or(&[], Vec::as_slice)
    }
}

/// Records pre-faulted at [`Tracer::enable`]: growth reallocations
/// and first-touch page faults otherwise land mid-measurement on the
/// instrumented hot path (they showed up as the single largest cost
/// in the tracing-overhead gate before records were written through a
/// warmed buffer).
const PREFAULT_RECORDS: usize = 1 << 15;

/// All of the tracer's mutable state behind **one** `RefCell` — the
/// span enter/exit pair is the tracing-enabled hot path, and one
/// borrow-flag check beats the three or four that separate cells for
/// the buffer, stacks and intern maps would cost per span.
#[derive(Default)]
struct TracerState {
    next_id: u32,
    open: OpenStacks,
    done: Vec<Packed>,
    /// Intern table: `names` index in a [`Packed`] record → strings.
    names: Vec<(&'static str, &'static str)>,
    /// Reverse interning by the `&'static str`s' (ptr, len) identity —
    /// distinct literals with equal text intern separately, which only
    /// costs a duplicate table entry.
    name_ids: FxMap<(StrKey, StrKey), u32>,
    /// Trace contexts of in-flight RPCs, keyed by
    /// `(client_node << 32) | xid` — the out-of-band channel that lets
    /// the server adopt the caller's context without a single byte of
    /// modeled wire growth.
    inflight: FxMap<u64, TraceCtx>,
}

impl TracerState {
    fn intern(&mut self, component: &'static str, name: &'static str) -> u32 {
        let key = (
            (component.as_ptr() as usize, component.len()),
            (name.as_ptr() as usize, name.len()),
        );
        if let Some(&i) = self.name_ids.get(&key) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("intern table overflow");
        self.names.push((component, name));
        self.name_ids.insert(key, i);
        i
    }
}

/// Span recorder owned by the executor core. All methods are no-ops
/// until [`Tracer::enable`].
#[derive(Default)]
pub(crate) struct Tracer {
    enabled: Cell<bool>,
    state: RefCell<TracerState>,
}

impl Tracer {
    pub(crate) fn enable(&self) {
        self.enabled.set(true);
        let done = &mut self.state.borrow_mut().done;
        if done.capacity() < PREFAULT_RECORDS {
            // Touch every page once so neither the allocator's growth
            // schedule nor first-write faults tax the traced run.
            done.resize(PREFAULT_RECORDS, Packed::default());
            done.clear();
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Open a span on `task`; the top of the task's stack becomes the
    /// parent. Returns the new span's id. (The executor calls
    /// [`Tracer::enter_remote`] directly; this shorthand serves tests.)
    #[cfg(test)]
    pub(crate) fn enter(
        &self,
        now: SimTime,
        task: u64,
        component: &'static str,
        name: &'static str,
        proc_num: Option<u32>,
    ) -> u64 {
        self.enter_remote(now, task, component, name, proc_num, TraceCtx::NONE)
    }

    /// Open a span adopting a remote [`TraceCtx`]: the span joins the
    /// sender's causal tree (`trace_id`) and records the sending span
    /// as its flow trigger. With an empty context the trace id
    /// inherits from the enclosing span, or a fresh one is minted for
    /// roots (`id + 1`, so 0 stays the "untraced" sentinel).
    pub(crate) fn enter_remote(
        &self,
        now: SimTime,
        task: u64,
        component: &'static str,
        name: &'static str,
        proc_num: Option<u32>,
        ctx: TraceCtx,
    ) -> u64 {
        let state = &mut *self.state.borrow_mut();
        let id = state.next_id;
        state.next_id = id + 1;
        let names = state.intern(component, name);
        let stack = state.open.stack_mut(task);
        let parent = stack.last().map_or(NO_PARENT, |e| e.id);
        let (trace, flow) = if ctx.trace_id != 0 {
            (ctx.trace_id as u32, ctx.parent_span as u32)
        } else if let Some(top) = stack.last() {
            (top.trace, 0)
        } else {
            (id + 1, 0)
        };
        let idx = state.done.len() as u32;
        state.done.push(Packed {
            start_ns: now.as_nanos(),
            end_ns: OPEN_NS,
            task,
            id,
            parent,
            flow,
            trace,
            proc_num: proc_num.unwrap_or(NO_PROC),
            names,
        });
        stack.push(OpenEntry { id, idx, trace });
        u64::from(id)
    }

    /// The context a message sent from `task` right now should carry:
    /// the innermost open span's trace id, with that span as the link
    /// point. [`TraceCtx::NONE`] when no span is open.
    pub(crate) fn current_ctx(&self, task: u64) -> TraceCtx {
        let state = self.state.borrow();
        match state.open.stack(task).last() {
            Some(top) => TraceCtx {
                trace_id: u64::from(top.trace),
                parent_span: u64::from(top.id),
            },
            None => TraceCtx::NONE,
        }
    }

    /// Stash `ctx` for the in-flight RPC `key`; retransmissions
    /// overwrite, so the adopted context always reflects the attempt
    /// that actually reached the server.
    pub(crate) fn inject(&self, key: u64, ctx: TraceCtx) {
        if ctx.trace_id != 0 {
            self.state.borrow_mut().inflight.insert(key, ctx);
        }
    }

    /// Remove and return the context stashed for `key`
    /// ([`TraceCtx::NONE`] when absent).
    pub(crate) fn adopt(&self, key: u64) -> TraceCtx {
        self.state
            .borrow_mut()
            .inflight
            .remove(&key)
            .unwrap_or_default()
    }

    /// Close span `id` on `task` at `now`: pop the stack entry and
    /// patch the record's end time in place (one store to a line the
    /// op just wrote). Closes are LIFO in normal use; a guard dropped
    /// out of order (e.g. a future torn down mid `.await`) is found
    /// by searching down the stack.
    pub(crate) fn exit(&self, now: SimTime, task: u64, id: u64) {
        let state = &mut *self.state.borrow_mut();
        let stack = state.open.stack_mut(task);
        let Some(pos) = stack.iter().rposition(|e| u64::from(e.id) == id) else {
            return;
        };
        // An emptied stack keeps its capacity: the slot will host
        // another task's spans soon enough.
        let e = stack.remove(pos);
        if let Some(rec) = state.done.get_mut(e.idx as usize) {
            rec.end_ns = now.as_nanos();
        }
    }

    /// Drain completed spans (in **enter order**), leaving tracing
    /// enabled. Spans still open stay behind — compacted to the front
    /// of the buffer with their stack entries re-indexed — and
    /// complete into the next drain.
    pub(crate) fn take(&self) -> Vec<SpanRecord> {
        let state = &mut *self.state.borrow_mut();
        let mut out = Vec::with_capacity(state.done.len());
        let mut remap: FxMap<u32, u32> = FxMap::default();
        let mut write = 0usize;
        for read in 0..state.done.len() {
            let rec = state.done[read];
            if rec.end_ns == OPEN_NS {
                remap.insert(read as u32, write as u32);
                state.done[write] = rec;
                write += 1;
                continue;
            }
            let (component, name) = state.names[rec.names as usize];
            out.push(SpanRecord {
                id: u64::from(rec.id),
                parent: (rec.parent != NO_PARENT).then(|| u64::from(rec.parent)),
                task: rec.task,
                component,
                name,
                proc_num: (rec.proc_num != NO_PROC).then_some(rec.proc_num),
                trace_id: u64::from(rec.trace),
                flow_from: u64::from(rec.flow),
                start: SimTime::from_nanos(rec.start_ns),
                end: SimTime::from_nanos(rec.end_ns),
            });
        }
        state.done.truncate(write);
        if write > 0 {
            let fix = |stack: &mut Vec<OpenEntry>| {
                for e in stack {
                    if let Some(&n) = remap.get(&e.idx) {
                        e.idx = n;
                    }
                }
            };
            for stack in &mut state.open.by_slot {
                fix(stack);
            }
            fix(&mut state.open.detached);
        }
        out
    }
}

/// Format nanoseconds as fractional microseconds (Chrome's `ts` unit)
/// without going through floating point.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render spans as Chrome `trace_event` JSON — an object with a
/// `traceEvents` array of "X" (complete) events plus "s"/"f" flow
/// events for cross-node links — loadable in Perfetto or
/// `chrome://tracing`. `ts`/`dur` are microseconds of virtual time;
/// `tid` is the executor task; span id, parent, procedure and trace id
/// ride in `args`. Each span with a `flow_from` trigger whose source
/// span is present gets a flow edge from the source span's slice to
/// its own (the pair shares `cat:"flow"` and the destination span's
/// id, which is how Perfetto stitches them).
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = s.end.as_nanos().saturating_sub(s.start.as_nanos());
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{}",
            escape_json(s.name),
            escape_json(s.component),
            micros(s.start.as_nanos()),
            micros(dur),
            // Keep tids inside i64 for strict trace viewers.
            s.task & (i64::MAX as u64),
            s.id,
        ));
        if let Some(p) = s.parent {
            out.push_str(&format!(",\"parent\":{p}"));
        }
        if let Some(p) = s.proc_num {
            out.push_str(&format!(",\"proc\":{p}"));
        }
        if s.trace_id != 0 {
            out.push_str(&format!(",\"trace\":{}", s.trace_id));
        }
        out.push_str("}}");
    }
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for s in spans.iter().filter(|s| s.flow_from != 0) {
        let Some(src) = by_id.get(&s.flow_from) else {
            continue; // source span still open (or dropped): no edge
        };
        // Both endpoints' timestamps sit at the binding slices' starts,
        // which is always inside the slice.
        out.push_str(&format!(
            ",{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":{},\"pid\":0,\"tid\":{},\"id\":{id}}}",
            micros(src.start.as_nanos()),
            src.task & (i64::MAX as u64),
            name = escape_json(s.name),
            id = s.id,
        ));
        out.push_str(&format!(
            ",{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"ts\":{},\"pid\":0,\"tid\":{},\"id\":{id}}}",
            micros(s.start.as_nanos()),
            s.task & (i64::MAX as u64),
            name = escape_json(s.name),
            id = s.id,
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Latency histogram of one (procedure, phase) cell.
pub struct PhaseStats {
    /// Procedure: the span's own tag, else the nearest tagged
    /// ancestor's; `None` if no ancestor is tagged.
    pub proc_num: Option<u32>,
    /// Component the phase belongs to.
    pub component: &'static str,
    /// Phase name.
    pub name: &'static str,
    /// Latency distribution of every matching span.
    pub hist: Histogram,
}

/// Fold spans into per-(procedure, component, phase) histograms,
/// resolving each span's procedure by walking its parent chain to the
/// nearest proc-tagged ancestor. Deterministically ordered by
/// (procedure, component, phase).
pub fn aggregate_phases(spans: &[SpanRecord]) -> Vec<PhaseStats> {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let resolve = |s: &SpanRecord| -> Option<u32> {
        let mut cur = Some(s);
        while let Some(s) = cur {
            if s.proc_num.is_some() {
                return s.proc_num;
            }
            cur = s.parent.and_then(|p| by_id.get(&p).copied());
        }
        None
    };
    let mut cells: BTreeMap<(Option<u32>, &'static str, &'static str), Histogram> = BTreeMap::new();
    for s in spans {
        let key = (resolve(s), s.component, s.name);
        cells
            .entry(key)
            .or_default()
            .record(s.end.saturating_since(s.start));
    }
    cells
        .into_iter()
        .map(|((proc_num, component, name), hist)| PhaseStats {
            proc_num,
            component,
            name,
            hist,
        })
        .collect()
}

/// Validate that `s` is one well-formed JSON value (hand-rolled — the
/// workspace is hermetic, with no serde). Used by the trace-schema test
/// and the `check.sh` traced-workload smoke step.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!(
            "unexpected byte {c:#x} at offset {pos}",
            pos = *pos
        )),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at offset {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {pos}", pos = *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte at offset {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at offset {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        id: u64,
        parent: Option<u64>,
        task: u64,
        component: &'static str,
        name: &'static str,
        proc_num: Option<u32>,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            task,
            component,
            name,
            proc_num,
            trace_id: 0,
            flow_from: 0,
            start: SimTime::from_nanos(start_ns),
            end: SimTime::from_nanos(end_ns),
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_fields() {
        let spans = vec![
            rec(0, None, 1, "client", "call", Some(6), 0, 5_000),
            rec(1, Some(0), 1, "client", "marshal", None, 100, 1_100),
        ];
        let json = chrome_trace_json(&spans);
        validate_json(&json).expect("chrome export must be valid JSON");
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"proc\":6"));
    }

    #[test]
    fn empty_export_is_valid() {
        validate_json(&chrome_trace_json(&[])).unwrap();
    }

    #[test]
    fn aggregate_resolves_proc_through_parents() {
        let spans = vec![
            rec(0, None, 1, "client", "call", Some(7), 0, 10_000),
            rec(1, Some(0), 1, "hca", "reg", None, 0, 2_000),
            rec(2, Some(1), 1, "hca", "pin", None, 0, 1_000),
            rec(3, None, 2, "fabric", "transit", None, 0, 500),
        ];
        let phases = aggregate_phases(&spans);
        let find = |c: &str, n: &str| {
            phases
                .iter()
                .find(|p| p.component == c && p.name == n)
                .unwrap()
        };
        assert_eq!(find("hca", "reg").proc_num, Some(7));
        assert_eq!(find("hca", "pin").proc_num, Some(7));
        assert_eq!(find("client", "call").proc_num, Some(7));
        assert_eq!(find("fabric", "transit").proc_num, None);
        assert_eq!(
            find("hca", "reg").hist.quantile(0.5),
            SimDuration::from_micros(2)
        );
        // Untagged procs sort first.
        assert_eq!(phases[0].proc_num, None);
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [ 1 , 2 ]  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{'single':1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn tracer_records_nesting_and_parenting() {
        let t = Tracer::default();
        t.enable();
        let a = t.enter(SimTime::from_nanos(0), 1, "c", "outer", Some(6));
        let b = t.enter(SimTime::from_nanos(10), 1, "c", "inner", None);
        let x = t.enter(SimTime::from_nanos(5), 2, "c", "other", None);
        t.exit(SimTime::from_nanos(20), 1, b);
        t.exit(SimTime::from_nanos(30), 1, a);
        t.exit(SimTime::from_nanos(7), 2, x);
        let spans = t.take();
        assert_eq!(spans.len(), 3);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(a));
        assert_eq!(inner.task, 1);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, None);
        let other = spans.iter().find(|s| s.name == "other").unwrap();
        assert_eq!(other.parent, None);
        assert!(t.take().is_empty());
    }

    #[test]
    fn trace_ids_inherit_and_remote_adoption_links_flows() {
        let t = Tracer::default();
        t.enable();
        // Client node: root span mints a trace id, child inherits it.
        let root = t.enter(SimTime::from_nanos(0), 1, "client", "call", Some(7));
        let child = t.enter(SimTime::from_nanos(1), 1, "client", "marshal", None);
        let ctx = t.current_ctx(1);
        assert_ne!(ctx.trace_id, 0);
        assert_eq!(ctx.parent_span, child);
        // "Wire": inject under the RPC key, adopt on the server task.
        t.inject(77, ctx);
        let got = t.adopt(77);
        assert_eq!(got, ctx);
        assert_eq!(t.adopt(77), TraceCtx::NONE); // consumed
        let srv = t.enter_remote(SimTime::from_nanos(5), 2, "server", "op", Some(7), got);
        t.exit(SimTime::from_nanos(9), 2, srv);
        t.exit(SimTime::from_nanos(3), 1, child);
        t.exit(SimTime::from_nanos(4), 1, root);
        let spans = t.take();
        let r = spans.iter().find(|s| s.id == root).unwrap();
        let c = spans.iter().find(|s| s.id == child).unwrap();
        let s = spans.iter().find(|s| s.id == srv).unwrap();
        assert_ne!(r.trace_id, 0);
        assert_eq!(c.trace_id, r.trace_id);
        assert_eq!(s.trace_id, r.trace_id);
        assert_eq!(s.flow_from, child);
        assert_eq!(r.flow_from, 0);
        // The export carries the flow pair bound to the server span.
        let json = chrome_trace_json(&spans);
        validate_json(&json).unwrap();
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""));
        assert!(json.contains(&format!("\"trace\":{}", r.trace_id)));
    }

    #[test]
    fn flow_edge_to_missing_source_is_skipped() {
        let spans = vec![SpanRecord {
            flow_from: 999, // no such span in the export
            trace_id: 5,
            ..rec(3, None, 2, "server", "op", None, 0, 10)
        }];
        let json = chrome_trace_json(&spans);
        validate_json(&json).unwrap();
        assert!(!json.contains("\"ph\":\"s\""));
    }

    #[test]
    fn out_of_order_exit_is_tolerated() {
        let t = Tracer::default();
        t.enable();
        let a = t.enter(SimTime::from_nanos(0), 1, "c", "a", None);
        let b = t.enter(SimTime::from_nanos(1), 1, "c", "b", None);
        // Torn-down future drops guards outer-first.
        t.exit(SimTime::from_nanos(2), 1, a);
        t.exit(SimTime::from_nanos(3), 1, b);
        let spans = t.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[1].parent, Some(a));
    }
}
