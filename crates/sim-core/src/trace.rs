//! Structured lifecycle tracing: nested spans over virtual time.
//!
//! A [`crate::executor::Span`] (entered via `Sim::span`) records one
//! phase of an RPC's life — client marshal, memory registration, fabric
//! transit, server dispatch, backend I/O, RDMA data movement, reply —
//! stamped with sim-time, the executing task and the enclosing span.
//! Spans nest per task: the innermost open span on the entering task
//! becomes the parent, and the guard's `Drop` closes the span, so
//! nesting is LIFO by construction (a proptest pins this).
//!
//! Tracing is **off by default and free when off**: entering a span
//! then costs one flag read and constructs an inert guard — no
//! allocation, no RNG draw, no timer — so the instrumented hot path
//! stays on the `tests/zero_alloc.rs` and golden-schedule gates.
//!
//! Completed spans export two ways:
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON ("X" complete
//!   events), loadable in Perfetto / `chrome://tracing`.
//! * [`aggregate_phases`] — per-(procedure, phase) [`Histogram`]s for
//!   latency-anatomy tables. A span inherits its procedure from the
//!   nearest proc-tagged ancestor, so only the outermost span of an
//!   RPC needs `Sim::span_proc`.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};

use crate::metrics::escape_json;
use crate::stats::Histogram;
use crate::time::SimTime;

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id (creation order).
    pub id: u64,
    /// Innermost span open on the same task at entry, if any.
    pub parent: Option<u64>,
    /// Executor task the span was entered on.
    pub task: u64,
    /// Component ("client", "hca", "fabric", "server", "fs", ...).
    pub component: &'static str,
    /// Phase name within the component ("marshal", "reg", "pull", ...).
    pub name: &'static str,
    /// RPC procedure number, when tagged at entry (`Sim::span_proc`).
    pub proc_num: Option<u32>,
    /// Entry instant (virtual time).
    pub start: SimTime,
    /// Exit instant (virtual time).
    pub end: SimTime,
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    component: &'static str,
    name: &'static str,
    proc_num: Option<u32>,
    start: SimTime,
}

/// Span recorder owned by the executor core. All methods are no-ops
/// until [`Tracer::enable`].
#[derive(Default)]
pub(crate) struct Tracer {
    enabled: Cell<bool>,
    next_id: Cell<u64>,
    /// Open span stacks, keyed by task id.
    open: RefCell<HashMap<u64, Vec<OpenSpan>>>,
    done: RefCell<Vec<SpanRecord>>,
}

impl Tracer {
    pub(crate) fn enable(&self) {
        self.enabled.set(true);
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Open a span on `task`; the top of the task's stack becomes the
    /// parent. Returns the new span's id.
    pub(crate) fn enter(
        &self,
        now: SimTime,
        task: u64,
        component: &'static str,
        name: &'static str,
        proc_num: Option<u32>,
    ) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        let mut open = self.open.borrow_mut();
        let stack = open.entry(task).or_default();
        let parent = stack.last().map(|s| s.id);
        stack.push(OpenSpan {
            id,
            parent,
            component,
            name,
            proc_num,
            start: now,
        });
        id
    }

    /// Close span `id` on `task` at `now`. Closes are LIFO in normal
    /// use; a guard dropped out of order (e.g. a future torn down mid
    /// `.await`) is found by searching down the stack.
    pub(crate) fn exit(&self, now: SimTime, task: u64, id: u64) {
        let mut open = self.open.borrow_mut();
        let Some(stack) = open.get_mut(&task) else {
            return;
        };
        let Some(pos) = stack.iter().rposition(|s| s.id == id) else {
            return;
        };
        let s = stack.remove(pos);
        if stack.is_empty() {
            open.remove(&task);
        }
        drop(open);
        self.done.borrow_mut().push(SpanRecord {
            id: s.id,
            parent: s.parent,
            task,
            component: s.component,
            name: s.name,
            proc_num: s.proc_num,
            start: s.start,
            end: now,
        });
    }

    /// Drain completed spans, leaving tracing enabled. Spans still open
    /// stay open and complete into the next drain.
    pub(crate) fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.done.borrow_mut())
    }
}

/// Format nanoseconds as fractional microseconds (Chrome's `ts` unit)
/// without going through floating point.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render spans as Chrome `trace_event` JSON — an object with a
/// `traceEvents` array of "X" (complete) events — loadable in Perfetto
/// or `chrome://tracing`. `ts`/`dur` are microseconds of virtual time;
/// `tid` is the executor task; span id, parent and procedure ride in
/// `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = s.end.as_nanos().saturating_sub(s.start.as_nanos());
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{}",
            escape_json(s.name),
            escape_json(s.component),
            micros(s.start.as_nanos()),
            micros(dur),
            // Keep tids inside i64 for strict trace viewers.
            s.task & (i64::MAX as u64),
            s.id,
        ));
        if let Some(p) = s.parent {
            out.push_str(&format!(",\"parent\":{p}"));
        }
        if let Some(p) = s.proc_num {
            out.push_str(&format!(",\"proc\":{p}"));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Latency histogram of one (procedure, phase) cell.
pub struct PhaseStats {
    /// Procedure: the span's own tag, else the nearest tagged
    /// ancestor's; `None` if no ancestor is tagged.
    pub proc_num: Option<u32>,
    /// Component the phase belongs to.
    pub component: &'static str,
    /// Phase name.
    pub name: &'static str,
    /// Latency distribution of every matching span.
    pub hist: Histogram,
}

/// Fold spans into per-(procedure, component, phase) histograms,
/// resolving each span's procedure by walking its parent chain to the
/// nearest proc-tagged ancestor. Deterministically ordered by
/// (procedure, component, phase).
pub fn aggregate_phases(spans: &[SpanRecord]) -> Vec<PhaseStats> {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let resolve = |s: &SpanRecord| -> Option<u32> {
        let mut cur = Some(s);
        while let Some(s) = cur {
            if s.proc_num.is_some() {
                return s.proc_num;
            }
            cur = s.parent.and_then(|p| by_id.get(&p).copied());
        }
        None
    };
    let mut cells: BTreeMap<(Option<u32>, &'static str, &'static str), Histogram> = BTreeMap::new();
    for s in spans {
        let key = (resolve(s), s.component, s.name);
        cells
            .entry(key)
            .or_default()
            .record(s.end.saturating_since(s.start));
    }
    cells
        .into_iter()
        .map(|((proc_num, component, name), hist)| PhaseStats {
            proc_num,
            component,
            name,
            hist,
        })
        .collect()
}

/// Validate that `s` is one well-formed JSON value (hand-rolled — the
/// workspace is hermetic, with no serde). Used by the trace-schema test
/// and the `check.sh` traced-workload smoke step.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!(
            "unexpected byte {c:#x} at offset {pos}",
            pos = *pos
        )),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at offset {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {pos}", pos = *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte at offset {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at offset {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        id: u64,
        parent: Option<u64>,
        task: u64,
        component: &'static str,
        name: &'static str,
        proc_num: Option<u32>,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            task,
            component,
            name,
            proc_num,
            start: SimTime::from_nanos(start_ns),
            end: SimTime::from_nanos(end_ns),
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_fields() {
        let spans = vec![
            rec(0, None, 1, "client", "call", Some(6), 0, 5_000),
            rec(1, Some(0), 1, "client", "marshal", None, 100, 1_100),
        ];
        let json = chrome_trace_json(&spans);
        validate_json(&json).expect("chrome export must be valid JSON");
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"proc\":6"));
    }

    #[test]
    fn empty_export_is_valid() {
        validate_json(&chrome_trace_json(&[])).unwrap();
    }

    #[test]
    fn aggregate_resolves_proc_through_parents() {
        let spans = vec![
            rec(0, None, 1, "client", "call", Some(7), 0, 10_000),
            rec(1, Some(0), 1, "hca", "reg", None, 0, 2_000),
            rec(2, Some(1), 1, "hca", "pin", None, 0, 1_000),
            rec(3, None, 2, "fabric", "transit", None, 0, 500),
        ];
        let phases = aggregate_phases(&spans);
        let find = |c: &str, n: &str| {
            phases
                .iter()
                .find(|p| p.component == c && p.name == n)
                .unwrap()
        };
        assert_eq!(find("hca", "reg").proc_num, Some(7));
        assert_eq!(find("hca", "pin").proc_num, Some(7));
        assert_eq!(find("client", "call").proc_num, Some(7));
        assert_eq!(find("fabric", "transit").proc_num, None);
        assert_eq!(
            find("hca", "reg").hist.quantile(0.5),
            SimDuration::from_micros(2)
        );
        // Untagged procs sort first.
        assert_eq!(phases[0].proc_num, None);
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [ 1 , 2 ]  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{'single':1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn tracer_records_nesting_and_parenting() {
        let t = Tracer::default();
        t.enable();
        let a = t.enter(SimTime::from_nanos(0), 1, "c", "outer", Some(6));
        let b = t.enter(SimTime::from_nanos(10), 1, "c", "inner", None);
        let x = t.enter(SimTime::from_nanos(5), 2, "c", "other", None);
        t.exit(SimTime::from_nanos(20), 1, b);
        t.exit(SimTime::from_nanos(30), 1, a);
        t.exit(SimTime::from_nanos(7), 2, x);
        let spans = t.take();
        assert_eq!(spans.len(), 3);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(a));
        assert_eq!(inner.task, 1);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, None);
        let other = spans.iter().find(|s| s.name == "other").unwrap();
        assert_eq!(other.parent, None);
        assert!(t.take().is_empty());
    }

    #[test]
    fn out_of_order_exit_is_tolerated() {
        let t = Tracer::default();
        t.enable();
        let a = t.enter(SimTime::from_nanos(0), 1, "c", "a", None);
        let b = t.enter(SimTime::from_nanos(1), 1, "c", "b", None);
        // Torn-down future drops guards outer-first.
        t.exit(SimTime::from_nanos(2), 1, a);
        t.exit(SimTime::from_nanos(3), 1, b);
        let spans = t.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[1].parent, Some(a));
    }
}
