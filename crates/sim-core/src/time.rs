//! Virtual time for the discrete-event simulator.
//!
//! All simulated measurements in this workspace are expressed in virtual
//! nanoseconds. [`SimTime`] is an instant on the simulation clock and
//! [`SimDuration`] a span between instants. Both are thin `u64` wrappers
//! so they are `Copy`, totally ordered and free of floating-point drift.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual simulation clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, truncating.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Compute a transfer time for `bytes` at `bytes_per_sec`, rounding up to
/// the nearest nanosecond so zero-cost transfers cannot occur for
/// non-empty payloads.
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    assert!(bytes_per_sec > 0, "zero bandwidth");
    // ns = bytes * 1e9 / rate, computed in u128 to avoid overflow.
    let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
    SimDuration(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(d + d, SimDuration::from_micros(6));
        assert_eq!(d * 4, SimDuration::from_micros(12));
        assert_eq!(d / 3, SimDuration::from_nanos(1_000));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(50);
        assert_eq!(a.saturating_since(b).as_nanos(), 50);
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 1 GB/s is 1ns exactly.
        assert_eq!(transfer_time(1, 1_000_000_000).as_nanos(), 1);
        // 1 byte at 3 GB/s rounds up to 1ns.
        assert_eq!(transfer_time(1, 3_000_000_000).as_nanos(), 1);
        assert_eq!(transfer_time(0, 1).as_nanos(), 0);
        // 900 MB/s moving 128 KiB ~ 145.6us.
        let t = transfer_time(131072, 900_000_000);
        assert!(t > SimDuration::from_micros(145) && t < SimDuration::from_micros(146));
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
