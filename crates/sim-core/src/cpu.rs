//! Host CPU model.
//!
//! A [`Cpu`] is a pool of cores (a multi-slot [`Resource`]) plus
//! convenience operations for the cost classes the paper's analysis
//! cares about: data copies (per-byte), interrupts, and fixed-cost
//! driver/stack sections. Client CPU-utilization curves in Figures 6, 7
//! and 9 come straight out of this accounting.

use crate::executor::Sim;
use crate::resource::Resource;
use crate::time::{SimDuration, SimTime};

/// Cost constants for a host's CPU-bound operations, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct CpuCosts {
    /// Cost to copy one byte between buffers (memcpy through cache).
    pub copy_ns_per_byte: f64,
    /// Cost to take and service one interrupt.
    pub interrupt_ns: u64,
    /// Cost of a syscall / context-switch boundary.
    pub syscall_ns: u64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        // Mid-2000s server-class defaults; profiles override these.
        CpuCosts {
            copy_ns_per_byte: 0.5,
            interrupt_ns: 5_000,
            syscall_ns: 1_000,
        }
    }
}

/// A pool of CPU cores with cost accounting.
#[derive(Clone)]
pub struct Cpu {
    sim: Sim,
    cores: Resource,
    costs: CpuCosts,
}

impl Cpu {
    /// Create a CPU with `cores` cores and the given cost table.
    pub fn new(sim: &Sim, name: impl Into<String>, cores: usize, costs: CpuCosts) -> Self {
        Cpu {
            sim: sim.clone(),
            cores: Resource::new(sim, name, cores),
            costs,
        }
    }

    /// Execute `d` of CPU work on one core (queueing if all busy).
    pub async fn execute(&self, d: SimDuration) {
        self.cores.use_for(d).await;
    }

    /// Record `d` of busy time without occupying a core slot — for
    /// work whose serialization is modelled by another resource (e.g.
    /// a single-queue NIC softirq) but which still burns CPU.
    pub fn charge(&self, d: SimDuration) {
        self.cores.charge(d);
    }

    /// Copy `bytes` through the CPU (one core).
    pub async fn copy(&self, bytes: u64) {
        let ns = (bytes as f64 * self.costs.copy_ns_per_byte).round() as u64;
        self.execute(SimDuration::from_nanos(ns)).await;
    }

    /// Service one interrupt.
    pub async fn interrupt(&self) {
        self.execute(SimDuration::from_nanos(self.costs.interrupt_ns))
            .await;
    }

    /// Cross a syscall boundary.
    pub async fn syscall(&self) {
        self.execute(SimDuration::from_nanos(self.costs.syscall_ns))
            .await;
    }

    /// The cost table.
    pub fn costs(&self) -> CpuCosts {
        self.costs
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cores.capacity()
    }

    /// Busy fraction since the accounting window opened (0..=1).
    pub fn utilization(&self) -> f64 {
        self.cores.utilization()
    }

    /// Total CPU-busy time since the accounting window opened.
    pub fn busy_time(&self) -> SimDuration {
        self.cores.busy_time()
    }

    /// Reset the accounting window (exclude warmup).
    pub fn reset_accounting(&self) {
        self.cores.reset_accounting();
    }

    /// Current virtual time (convenience for utilization snapshots).
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;

    #[test]
    fn copy_charges_per_byte() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let cpu = Cpu::new(
            &h,
            "host",
            1,
            CpuCosts {
                copy_ns_per_byte: 2.0,
                ..Default::default()
            },
        );
        let c2 = cpu.clone();
        sim.block_on(async move { c2.copy(1000).await });
        assert_eq!(cpu.busy_time(), SimDuration::from_nanos(2000));
    }

    #[test]
    fn cores_run_in_parallel() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let cpu = Cpu::new(&h, "host", 4, CpuCosts::default());
        for _ in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(async move { cpu.execute(SimDuration::from_micros(100)).await });
        }
        sim.run();
        assert_eq!(sim.now().as_nanos(), 100_000);
        assert!((cpu.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interrupt_and_syscall_costs() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let cpu = Cpu::new(
            &h,
            "host",
            1,
            CpuCosts {
                interrupt_ns: 4_000,
                syscall_ns: 1_500,
                ..Default::default()
            },
        );
        let c2 = cpu.clone();
        sim.block_on(async move {
            c2.interrupt().await;
            c2.syscall().await;
        });
        assert_eq!(cpu.busy_time(), SimDuration::from_nanos(5_500));
    }
}
