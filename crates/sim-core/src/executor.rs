//! A deterministic, single-threaded, virtual-time async executor.
//!
//! Simulation processes (NFS clients, server worker threads, HCA DMA
//! engines, disks) are ordinary `async fn`s. Awaiting [`Sim::sleep`]
//! advances nothing in real time: the executor maintains a virtual clock
//! and leaps it forward to the next scheduled timer whenever every task
//! is blocked. This models blocking behaviour — e.g. an NFS server
//! thread waiting on an RDMA Read completion — precisely and
//! deterministically.
//!
//! Determinism contract: given the same seed and the same spawn order,
//! two runs produce identical event orderings and identical virtual-time
//! results. Ready tasks run FIFO; timers fire in `(deadline, sequence)`
//! order.
//!
//! The executor is intentionally `!Send`: tasks may freely hold
//! `Rc`/`RefCell` state across `.await`. Parameter sweeps parallelize by
//! running *independent* `Simulation`s on separate OS threads.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

type TaskId = u64;
type BoxFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Queue of tasks woken and awaiting a poll. Shared with [`Waker`]s,
/// which must be `Send + Sync`, hence the `Mutex` — it is never
/// contended because the executor is single-threaded.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue.lock().push_back(id);
    }
    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

#[derive(PartialEq, Eq)]
struct TimerEntry {
    deadline: SimTime,
    seq: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// When it happened (virtual time).
    pub at: SimTime,
    /// Short category ("reg", "rpc", "nfs", ...).
    pub category: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

struct Core {
    now: Cell<SimTime>,
    tasks: RefCell<HashMap<TaskId, BoxFuture>>,
    next_task: Cell<TaskId>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_wakers: RefCell<HashMap<u64, Waker>>,
    timer_seq: Cell<u64>,
    rng: RefCell<SimRng>,
    /// Count of task polls, a cheap progress metric for tests/benches.
    polls: Cell<u64>,
    /// Event trace; `None` when tracing is off (the default).
    trace: RefCell<Option<Vec<TraceEvent>>>,
}

/// The simulation world: owns all tasks, the virtual clock and the
/// deterministic RNG. Create one per experiment run.
pub struct Simulation {
    core: Rc<Core>,
    ready: Arc<ReadyQueue>,
}

/// A cheap, clonable handle onto a [`Simulation`], usable from inside
/// tasks to read the clock, sleep, spawn further tasks and draw random
/// numbers.
#[derive(Clone)]
pub struct Sim {
    core: Rc<Core>,
    ready: Arc<ReadyQueue>,
}

impl Simulation {
    /// Create a fresh simulation whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulation {
            core: Rc::new(Core {
                now: Cell::new(SimTime::ZERO),
                tasks: RefCell::new(HashMap::new()),
                next_task: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                timer_wakers: RefCell::new(HashMap::new()),
                timer_seq: Cell::new(0),
                rng: RefCell::new(SimRng::new(seed)),
                polls: Cell::new(0),
                trace: RefCell::new(None),
            }),
            ready: Arc::new(ReadyQueue::default()),
        }
    }

    /// Handle for use inside tasks.
    pub fn handle(&self) -> Sim {
        Sim {
            core: self.core.clone(),
            ready: self.ready.clone(),
        }
    }

    /// Spawn a root task.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.handle().spawn(fut);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Number of task polls performed so far.
    pub fn polls(&self) -> u64 {
        self.core.polls.get()
    }

    /// Turn on event tracing (off by default; ~zero cost when off).
    pub fn enable_tracing(&self) {
        *self.core.trace.borrow_mut() = Some(Vec::new());
    }

    /// Take the recorded trace, leaving tracing enabled.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        match self.core.trace.borrow_mut().as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Run until no task is runnable and no timer is pending, i.e. the
    /// simulation has quiesced. Tasks still blocked on channels that will
    /// never receive are simply abandoned (like detached threads).
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Run until the virtual clock would pass `deadline` (exclusive) or
    /// the simulation quiesces, whichever is first. The clock never
    /// advances beyond the last fired timer.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            // Drain every ready task at the current instant.
            while let Some(id) = self.ready.pop() {
                self.poll_task(id);
            }
            // Advance to the earliest pending timer.
            let next = {
                let mut timers = self.core.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.deadline <= deadline => {
                        let Reverse(e) = timers.pop().unwrap();
                        Some(e)
                    }
                    _ => None,
                }
            };
            match next {
                Some(entry) => {
                    // A cancelled timer (dropped Sleep) leaves a stale
                    // heap entry with no waker; skip it without touching
                    // the clock.
                    let waker = self.core.timer_wakers.borrow_mut().remove(&entry.seq);
                    if let Some(w) = waker {
                        debug_assert!(entry.deadline >= self.core.now.get());
                        self.core.now.set(entry.deadline);
                        w.wake();
                    }
                }
                None => return,
            }
        }
    }

    /// Drive the simulation until `fut` completes and return its output.
    /// Panics if the simulation quiesces with `fut` still pending (a
    /// deadlock in the modelled system).
    pub fn block_on<T: 'static>(&mut self, fut: impl Future<Output = T> + 'static) -> T {
        let slot: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let slot2 = slot.clone();
        self.spawn(async move {
            let v = fut.await;
            *slot2.borrow_mut() = Some(v);
        });
        self.run();
        let out = slot.borrow_mut().take();
        out.expect("simulation quiesced before block_on future completed (deadlock?)")
    }

    fn poll_task(&self, id: TaskId) {
        // Remove the task while polling so the task body can call
        // spawn() (which borrows the task map) without re-entrancy.
        let fut = self.core.tasks.borrow_mut().remove(&id);
        let Some(mut fut) = fut else {
            return; // already completed; duplicate wake
        };
        self.core.polls.set(self.core.polls.get() + 1);
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: self.ready.clone(),
        }));
        let mut cx = Context::from_waker(&waker);
        if fut.as_mut().poll(&mut cx).is_pending() {
            self.core.tasks.borrow_mut().insert(id, fut);
        }
    }
}

impl Sim {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Spawn a detached task.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        let id = self.core.next_task.get();
        self.core.next_task.set(id + 1);
        self.core.tasks.borrow_mut().insert(id, Box::pin(fut));
        self.ready.push(id);
    }

    /// Sleep for a span of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Sleep until an absolute virtual instant.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            timer_seq: None,
        }
    }

    /// Draw from the simulation's root RNG stream. Prefer [`Sim::fork_rng`]
    /// per logical actor so adding draws in one actor does not perturb
    /// another.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SimRng) -> T) -> T {
        f(&mut self.core.rng.borrow_mut())
    }

    /// Derive an independent RNG stream.
    pub fn fork_rng(&self) -> SimRng {
        self.core.rng.borrow_mut().fork()
    }

    /// True when event tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.core.trace.borrow().is_some()
    }

    /// Record a trace event; the detail closure only runs when tracing
    /// is on, so instrumented hot paths stay free by default.
    pub fn trace(&self, category: &'static str, detail: impl FnOnce() -> String) {
        let mut trace = self.core.trace.borrow_mut();
        if let Some(events) = trace.as_mut() {
            events.push(TraceEvent {
                at: self.now(),
                category,
                detail: detail(),
            });
        }
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) -> u64 {
        let seq = self.core.timer_seq.get();
        self.core.timer_seq.set(seq + 1);
        self.core
            .timers
            .borrow_mut()
            .push(Reverse(TimerEntry { deadline, seq }));
        self.core.timer_wakers.borrow_mut().insert(seq, waker);
        seq
    }

    fn cancel_timer(&self, seq: u64) {
        // The heap entry stays until popped, but without a waker it is a
        // no-op when it fires.
        self.core.timer_wakers.borrow_mut().remove(&seq);
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    timer_seq: Option<u64>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            if let Some(seq) = self.timer_seq.take() {
                self.sim.cancel_timer(seq);
            }
            return Poll::Ready(());
        }
        // (Re-)register; re-registration on spurious polls is rare and
        // cheap, and keeping exactly one live waker avoids staleness.
        if let Some(seq) = self.timer_seq.take() {
            self.sim.cancel_timer(seq);
        }
        let seq = self
            .sim
            .register_timer(self.deadline, cx.waker().clone());
        self.timer_seq = Some(seq);
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(seq) = self.timer_seq.take() {
            self.sim.cancel_timer(seq);
        }
    }
}

/// Yield once, letting every other currently-ready task run before this
/// one resumes (still at the same virtual instant).
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn block_on_returns_value() {
        let mut sim = Simulation::new(1);
        let v = sim.block_on(async { 40 + 2 });
        assert_eq!(v, 42);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let wall = std::time::Instant::now();
        let t = sim.block_on(async move {
            h.sleep(SimDuration::from_secs(3600)).await;
            h.now()
        });
        assert_eq!(t, SimTime::from_nanos(3600 * 1_000_000_000));
        assert!(wall.elapsed().as_secs() < 5, "virtual sleep took real time");
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, d) in [(1u32, 30u64), (2, 10), (3, 20)] {
            let h = sim.handle();
            let log = log.clone();
            sim.spawn(async move {
                h.sleep(SimDuration::from_micros(d)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![2, 3, 1]);
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10u32 {
            let h = sim.handle();
            let log = log.clone();
            sim.spawn(async move {
                h.sleep(SimDuration::from_micros(5)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_runs() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let hit = Rc::new(Cell::new(false));
        let hit2 = hit.clone();
        sim.spawn(async move {
            let h2 = h.clone();
            let hit3 = hit2.clone();
            h.spawn(async move {
                h2.sleep(SimDuration::from_nanos(1)).await;
                hit3.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn run_until_stops_clock() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_secs(100)).await;
        });
        sim.run_until(SimTime::from_nanos(1_000));
        assert!(sim.now() <= SimTime::from_nanos(1_000));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_nanos(100 * 1_000_000_000));
    }

    #[test]
    fn yield_now_interleaves() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            yield_now().await;
            l1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
            yield_now().await;
            l2.borrow_mut().push("b2");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn block_on_deadlock_panics() {
        let mut sim = Simulation::new(1);
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        fn run_once() -> Vec<u64> {
            let mut sim = Simulation::new(99);
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..20 {
                let h = sim.handle();
                let log = log.clone();
                let d = h.with_rng(|r| r.gen_range(1000));
                sim.spawn(async move {
                    h.sleep(SimDuration::from_nanos(d)).await;
                    log.borrow_mut().push(h.now().as_nanos());
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn tracing_records_and_is_free_when_off() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let ran = Rc::new(Cell::new(0u32));
        // Off: the detail closure must never run.
        let r2 = ran.clone();
        h.trace("test", move || {
            r2.set(r2.get() + 1);
            String::new()
        });
        assert_eq!(ran.get(), 0);
        assert!(!h.tracing());
        assert!(sim.take_trace().is_empty());

        sim.enable_tracing();
        assert!(h.tracing());
        let h2 = h.clone();
        sim.block_on(async move {
            h2.trace("alpha", || "first".into());
            h2.sleep(SimDuration::from_micros(5)).await;
            h2.trace("beta", || "second".into());
        });
        let events = sim.take_trace();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].category, "alpha");
        assert_eq!(events[0].at, SimTime::ZERO);
        assert_eq!(events[1].detail, "second");
        assert_eq!(events[1].at, SimTime::from_nanos(5_000));
        // Taking drains but keeps tracing on.
        assert!(sim.take_trace().is_empty());
        assert!(h.tracing());
    }

    #[test]
    fn dropped_sleep_cancels_timer() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let long = h.sleep(SimDuration::from_secs(1000));
            drop(long);
            h.sleep(SimDuration::from_nanos(5)).await;
        });
        // If the cancelled timer still fired we'd have advanced to 1000s.
        assert_eq!(sim.now(), SimTime::from_nanos(5));
    }
}
