//! A deterministic, single-threaded, virtual-time async executor.
//!
//! Simulation processes (NFS clients, server worker threads, HCA DMA
//! engines, disks) are ordinary `async fn`s. Awaiting [`Sim::sleep`]
//! advances nothing in real time: the executor maintains a virtual clock
//! and leaps it forward to the next scheduled timer whenever every task
//! is blocked. This models blocking behaviour — e.g. an NFS server
//! thread waiting on an RDMA Read completion — precisely and
//! deterministically.
//!
//! Determinism contract: given the same seed and the same spawn order,
//! two runs produce identical event orderings and identical virtual-time
//! results. Ready tasks run FIFO; timers fire in `(deadline, sequence)`
//! order. `tests/golden_schedule.rs` pins a hash of a full schedule, so
//! a refactor that silently changes ordering fails loudly.
//!
//! ## Hot-path internals
//!
//! Simulated seconds cost millions of polls of host time, so the
//! per-poll constants here dominate every benchmark harness:
//!
//! - **Slab task table.** Tasks live in a `Vec` of slots indexed by the
//!   low half of the task id, with a free list for reuse — no hashing on
//!   poll. The high half is a per-slot generation, so a stale wake
//!   (e.g. from a timer outliving its task) addresses a reused slot
//!   harmlessly: the generation no longer matches and the wake is
//!   dropped.
//! - **Cached wakers.** Each slot holds one `Arc`-backed [`Waker`],
//!   created at spawn; polls clone it (a refcount bump) instead of
//!   allocating a fresh waker per poll. Steady-state polling performs
//!   zero heap allocations (pinned by `tests/zero_alloc.rs`).
//! - **Wake dedup.** The waker carries an "already scheduled" flag;
//!   waking a task that is still queued is a no-op rather than a
//!   duplicate queue entry and a wasted poll. The flag clears *before*
//!   the poll runs so a task that wakes itself (`yield_now`) re-queues
//!   correctly.
//! - **Batched ready-queue drain.** The ready queue is `Mutex`-guarded
//!   only because `Waker` must be `Send + Sync`; the executor swaps the
//!   whole queue into a local buffer and takes the lock once per batch
//!   instead of once per task. FIFO order is preserved: wakes raised
//!   while a batch runs land in the (empty) shared queue and form the
//!   next batch, exactly the order the one-pop-per-lock loop produced.
//! - **Timer wheel.** Pending timers live in a bucketed wheel with a
//!   far-future heap and O(1) lazy cancellation ([`crate::timer_wheel`])
//!   instead of a `BinaryHeap` + `HashMap` pair.
//!
//! The executor is intentionally `!Send`: tasks may freely hold
//! `Rc`/`RefCell` state across `.await`. Parameter sweeps parallelize by
//! running *independent* `Simulation`s on separate OS threads.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::flight::{FlightRecord, FlightRing, FLIGHT_CAPACITY};
use crate::metrics::MetricsRegistry;
use crate::rng::SimRng;
use crate::stats::Counter;
use crate::time::{SimDuration, SimTime};
use crate::timer_wheel::{TimerHandle, TimerWheel};
use crate::trace::{SpanRecord, TraceCtx, Tracer};

/// Packed task id: `generation << 32 | slot index`.
type TaskId = u64;
type BoxFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Sentinel for "no task is being polled" (code running outside the
/// executor, e.g. between `run()` calls).
const NO_TASK: TaskId = u64::MAX;

pub(crate) fn task_slot(id: TaskId) -> usize {
    (id & u32::MAX as u64) as usize
}

fn task_gen(id: TaskId) -> u32 {
    (id >> 32) as u32
}

/// The scheduling class every task belongs to unless spawned with
/// [`Sim::spawn_class`]. Plain [`Sim::spawn`] always lands here.
pub const DEFAULT_CLASS: usize = 0;

/// One scheduling class's slice of the ready queue.
struct ClassLane {
    queue: Vec<TaskId>,
    /// Tasks this class may contribute per interleave round when more
    /// than one class is ready (weighted round-robin quantum).
    weight: u32,
}

/// Queue of tasks woken and awaiting a poll, partitioned into weighted
/// scheduling classes. Shared with [`Waker`]s, which must be
/// `Send + Sync`, hence the `Mutex` — it is never contended because the
/// executor is single-threaded.
///
/// Class [`DEFAULT_CLASS`] always exists. When it is the only class
/// with queued tasks (the overwhelmingly common case — every component
/// predating QoS spawns there), the drain is the historical whole-queue
/// swap and the batch order is exactly the old FIFO order; the
/// golden-schedule gate pins this. Only when two or more classes hold
/// ready tasks does the drain interleave them, `weight` tasks per class
/// per round, in ascending class index — deterministic, starvation-free
/// (every positive-weight class contributes to every round), and
/// proportional to the configured weights within a batch.
struct ReadyQueue {
    lanes: Mutex<Vec<ClassLane>>,
    /// Mirrors the total queued count across lanes; lets the executor's
    /// drain loop detect emptiness with one atomic load instead of a
    /// lock round-trip.
    len: AtomicUsize,
}

impl Default for ReadyQueue {
    fn default() -> Self {
        ReadyQueue {
            lanes: Mutex::new(vec![ClassLane {
                queue: Vec::new(),
                weight: 1,
            }]),
            len: AtomicUsize::new(0),
        }
    }
}

impl ReadyQueue {
    fn push(&self, class: usize, id: TaskId) {
        let mut lanes = self.lanes.lock();
        // Wakes can outlive weight configuration; grow on demand.
        while lanes.len() <= class {
            lanes.push(ClassLane {
                queue: Vec::new(),
                weight: 1,
            });
        }
        lanes[class].queue.push(id);
        self.len.fetch_add(1, Ordering::Release);
    }

    fn set_weight(&self, class: usize, weight: u32) {
        let mut lanes = self.lanes.lock();
        while lanes.len() <= class {
            lanes.push(ClassLane {
                queue: Vec::new(),
                weight: 1,
            });
        }
        lanes[class].weight = weight.max(1);
    }

    /// Move the queued batch into `buf` (cleared first), taking the
    /// lock once — or zero locks when the queue is empty. With a single
    /// non-empty lane this swaps the whole queue (the historical FIFO
    /// drain, zero-alloc in steady state); with several it interleaves
    /// them weight-proportionally.
    fn drain_into(&self, buf: &mut Vec<TaskId>) {
        buf.clear();
        if self.len.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut lanes = self.lanes.lock();
        let mut nonempty = lanes.iter_mut().filter(|l| !l.queue.is_empty());
        let (first, second) = (nonempty.next(), nonempty.next());
        match (first, second) {
            (Some(only), None) => std::mem::swap(&mut only.queue, buf),
            (Some(first), Some(second)) => {
                // Weighted round-robin interleave: each round visits
                // classes in index order and takes up to `weight` tasks
                // from each, so a positive-weight class waits at most
                // one round's worth of higher-priority work.
                let rest = nonempty;
                let mut ready: Vec<(&mut ClassLane, usize)> = Vec::with_capacity(4);
                ready.push((first, 0));
                ready.push((second, 0));
                ready.extend(rest.map(|l| (l, 0)));
                loop {
                    let mut moved = false;
                    for (lane, cursor) in ready.iter_mut() {
                        let take = (lane.weight as usize).min(lane.queue.len() - *cursor);
                        buf.extend_from_slice(&lane.queue[*cursor..*cursor + take]);
                        *cursor += take;
                        moved |= take > 0;
                    }
                    if !moved {
                        break;
                    }
                }
                for (lane, _) in ready {
                    lane.queue.clear();
                }
            }
            (None, _) => {}
        }
        self.len.store(0, Ordering::Release);
    }
}

/// One waker per task, created at spawn and cached in the task's slot.
struct TaskWaker {
    id: TaskId,
    /// Scheduling class the task was spawned into; fixed for life.
    class: usize,
    ready: Arc<ReadyQueue>,
    /// True while the task sits in the ready queue; extra wakes are
    /// no-ops. Cleared by the executor just before polling.
    scheduled: AtomicBool,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::Relaxed) {
            self.ready.push(self.class, self.id);
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// When it happened (virtual time).
    pub at: SimTime,
    /// Short category ("reg", "rpc", "nfs", ...).
    pub category: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// A live task's state; `None` in [`TaskSlot::live`] marks a free slot.
struct LiveTask {
    /// Taken out during a poll so the task body can re-entrantly spawn.
    fut: Option<BoxFuture>,
    /// Shared with every clone of the task's waker; lets the executor
    /// clear the scheduled flag without allocating.
    flag: Arc<TaskWaker>,
    /// Cached waker backed by `flag`; cloned (refcount bump) per poll.
    waker: Waker,
}

struct TaskSlot {
    /// Bumped when the slot is freed, invalidating outstanding ids.
    gen: u32,
    live: Option<LiveTask>,
}

#[derive(Default)]
struct TaskSlab {
    slots: Vec<TaskSlot>,
    free: Vec<u32>,
}

struct Core {
    now: Cell<SimTime>,
    tasks: RefCell<TaskSlab>,
    timers: RefCell<TimerWheel>,
    rng: RefCell<SimRng>,
    /// Count of task polls, a cheap progress metric for tests/benches.
    /// Registered as `executor.polls` in the metrics registry.
    polls: Rc<Counter>,
    /// Event trace; `None` when tracing is off (the default).
    trace: RefCell<Option<Vec<TraceEvent>>>,
    /// Task currently being polled ([`NO_TASK`] outside a poll); spans
    /// entered during the poll attach to it.
    current_task: Cell<TaskId>,
    /// Structured span recorder (off by default; see [`crate::trace`]).
    tracer: Tracer,
    /// Always-on flight recorder (see [`crate::flight`]): a fixed ring
    /// of recent protocol events, dumped by harnesses on failure.
    flight: FlightRing,
    /// Named-counter registry shared by every component in the world.
    metrics: MetricsRegistry,
}

/// The simulation world: owns all tasks, the virtual clock and the
/// deterministic RNG. Create one per experiment run.
pub struct Simulation {
    core: Rc<Core>,
    ready: Arc<ReadyQueue>,
}

/// A cheap, clonable handle onto a [`Simulation`], usable from inside
/// tasks to read the clock, sleep, spawn further tasks and draw random
/// numbers.
#[derive(Clone)]
pub struct Sim {
    core: Rc<Core>,
    ready: Arc<ReadyQueue>,
}

impl Simulation {
    /// Create a fresh simulation whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        let metrics = MetricsRegistry::new();
        let polls = metrics.counter("executor.polls");
        Simulation {
            core: Rc::new(Core {
                now: Cell::new(SimTime::ZERO),
                tasks: RefCell::new(TaskSlab::default()),
                timers: RefCell::new(TimerWheel::new()),
                rng: RefCell::new(SimRng::new(seed)),
                polls,
                trace: RefCell::new(None),
                current_task: Cell::new(NO_TASK),
                tracer: Tracer::default(),
                flight: FlightRing::new(FLIGHT_CAPACITY),
                metrics,
            }),
            ready: Arc::new(ReadyQueue::default()),
        }
    }

    /// Handle for use inside tasks.
    pub fn handle(&self) -> Sim {
        Sim {
            core: self.core.clone(),
            ready: self.ready.clone(),
        }
    }

    /// Spawn a root task.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.handle().spawn(fut);
    }

    /// Spawn a root task in scheduling class `class` (see
    /// [`Sim::spawn_class`]).
    pub fn spawn_class(&self, class: usize, fut: impl Future<Output = ()> + 'static) {
        self.handle().spawn_class(class, fut);
    }

    /// Set a scheduling class's weight (see [`Sim::set_class_weight`]).
    pub fn set_class_weight(&self, class: usize, weight: u32) {
        self.ready.set_weight(class, weight);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Number of task polls performed so far.
    pub fn polls(&self) -> u64 {
        self.core.polls.get()
    }

    /// Turn on event tracing (off by default; ~zero cost when off).
    pub fn enable_tracing(&self) {
        *self.core.trace.borrow_mut() = Some(Vec::new());
    }

    /// Take the recorded trace, leaving tracing enabled.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        match self.core.trace.borrow_mut().as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Turn on structured span tracing (off by default; entering a span
    /// while off costs one flag read and no allocation).
    pub fn enable_span_tracing(&self) {
        self.core.tracer.enable();
    }

    /// Drain the completed spans, leaving span tracing in its current
    /// state. Spans still open stay open and land in the next drain.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        self.core.tracer.take()
    }

    /// Snapshot the always-on flight recorder in chronological order
    /// (oldest surviving record first). Allocates — dump-time only.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        self.core.flight.snapshot()
    }

    /// Flight records ever written (the ring overwrites; this counter
    /// does not).
    pub fn flight_total(&self) -> u64 {
        self.core.flight.total()
    }

    /// The world's metrics registry (shared; cheap to clone).
    pub fn metrics(&self) -> MetricsRegistry {
        self.core.metrics.clone()
    }

    /// Run until no task is runnable and no timer is pending, i.e. the
    /// simulation has quiesced. Tasks still blocked on channels that will
    /// never receive are simply abandoned (like detached threads).
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Run until the virtual clock would pass `deadline` (exclusive) or
    /// the simulation quiesces, whichever is first. The clock never
    /// advances beyond the last fired timer.
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch: Vec<TaskId> = Vec::new();
        loop {
            // Drain every ready task at the current instant, one lock
            // acquisition per batch. Wakes raised while the batch runs
            // form the next batch, preserving FIFO order.
            loop {
                self.ready.drain_into(&mut batch);
                if batch.is_empty() {
                    break;
                }
                for &id in &batch {
                    self.poll_task(id);
                }
            }
            // Advance to the earliest pending timer. (Cancelled timers
            // are skipped inside the wheel without touching the clock.)
            let fired = self
                .core
                .timers
                .borrow_mut()
                .pop_due(deadline, self.core.now.get());
            match fired {
                Some((at, waker)) => {
                    debug_assert!(at >= self.core.now.get());
                    self.core.now.set(at);
                    waker.wake();
                }
                None => return,
            }
        }
    }

    /// Drive the simulation until `fut` completes and return its output.
    /// Panics if the simulation quiesces with `fut` still pending (a
    /// deadlock in the modelled system).
    pub fn block_on<T: 'static>(&mut self, fut: impl Future<Output = T> + 'static) -> T {
        let slot: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let slot2 = slot.clone();
        self.spawn(async move {
            let v = fut.await;
            *slot2.borrow_mut() = Some(v);
        });
        self.run();
        let out = slot.borrow_mut().take();
        out.expect("simulation quiesced before block_on future completed (deadlock?)")
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out while polling so the task body can call
        // spawn() (which borrows the slab) without re-entrancy.
        let (mut fut, waker) = {
            let mut slab = self.core.tasks.borrow_mut();
            let Some(slot) = slab.slots.get_mut(task_slot(id)) else {
                return;
            };
            if slot.gen != task_gen(id) {
                return; // stale wake: slot was freed (and maybe reused)
            }
            let Some(live) = slot.live.as_mut() else {
                return;
            };
            // Clear before polling: a task that wakes itself mid-poll
            // (yield_now) must land back in the queue.
            live.flag.scheduled.store(false, Ordering::Relaxed);
            let Some(fut) = live.fut.take() else {
                return;
            };
            (fut, live.waker.clone())
        };
        self.core.polls.inc();
        let prev_task = self.core.current_task.replace(id);
        let mut cx = Context::from_waker(&waker);
        let pending = fut.as_mut().poll(&mut cx).is_pending();
        self.core.current_task.set(prev_task);
        let mut slab = self.core.tasks.borrow_mut();
        let slot = &mut slab.slots[task_slot(id)];
        if pending {
            if let Some(live) = slot.live.as_mut() {
                live.fut = Some(fut);
            }
        } else {
            slot.gen = slot.gen.wrapping_add(1);
            slot.live = None;
            slab.free.push(task_slot(id) as u32);
        }
    }
}

impl Sim {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Spawn a detached task in the default scheduling class.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.spawn_class(DEFAULT_CLASS, fut);
    }

    /// Spawn a detached task in scheduling class `class`. Classes are
    /// created on first use with weight 1; see
    /// [`Sim::set_class_weight`]. Tasks in different classes that are
    /// ready at the same instant are polled interleaved in proportion
    /// to their class weights instead of global FIFO order.
    pub fn spawn_class(&self, class: usize, fut: impl Future<Output = ()> + 'static) {
        let id = {
            let mut slab = self.core.tasks.borrow_mut();
            let idx = match slab.free.pop() {
                Some(i) => i,
                None => {
                    slab.slots.push(TaskSlot { gen: 0, live: None });
                    (slab.slots.len() - 1) as u32
                }
            };
            let slot = &mut slab.slots[idx as usize];
            let id = ((slot.gen as u64) << 32) | idx as u64;
            let flag = Arc::new(TaskWaker {
                id,
                class,
                ready: self.ready.clone(),
                // Born scheduled: pushed directly below.
                scheduled: AtomicBool::new(true),
            });
            let waker = Waker::from(flag.clone());
            slot.live = Some(LiveTask {
                fut: Some(Box::pin(fut)),
                flag,
                waker,
            });
            id
        };
        self.ready.push(class, id);
    }

    /// Set the weight of scheduling class `class` (clamped to ≥ 1):
    /// the number of tasks the class contributes per interleave round
    /// when several classes are ready at once. Uniform weights (the
    /// default) reproduce round-robin; the default class alone
    /// reproduces the historical FIFO drain exactly.
    pub fn set_class_weight(&self, class: usize, weight: u32) {
        self.ready.set_weight(class, weight);
    }

    /// Sleep for a span of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Sleep until an absolute virtual instant.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        // `Sleep` only needs the clock and the timer wheel, so it holds
        // the core alone — cheaper to create per-await than a full
        // handle clone (skips the ready queue's atomic refcount).
        Sleep {
            core: self.core.clone(),
            deadline,
            timer: None,
        }
    }

    /// Draw from the simulation's root RNG stream. Prefer [`Sim::fork_rng`]
    /// per logical actor so adding draws in one actor does not perturb
    /// another.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SimRng) -> T) -> T {
        f(&mut self.core.rng.borrow_mut())
    }

    /// Derive an independent RNG stream.
    pub fn fork_rng(&self) -> SimRng {
        self.core.rng.borrow_mut().fork()
    }

    /// True when event tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.core.trace.borrow().is_some()
    }

    /// Race `fut` against a span of virtual time: `Some(output)` if the
    /// future completes first, `None` if the deadline fires first. The
    /// future is borrowed (`&mut`), so on timeout the caller still owns
    /// it and may keep waiting, retry, or drop it — the pattern an RPC
    /// retransmission loop needs.
    pub fn timeout<'a, F>(&self, limit: SimDuration, fut: &'a mut F) -> Timeout<'a, F>
    where
        F: Future + Unpin,
    {
        Timeout {
            sleep: self.sleep(limit),
            fut,
        }
    }

    /// Record a trace event; the detail closure only runs when tracing
    /// is on, so instrumented hot paths stay free by default.
    pub fn trace(&self, category: &'static str, detail: impl FnOnce() -> String) {
        let mut trace = self.core.trace.borrow_mut();
        if let Some(events) = trace.as_mut() {
            events.push(TraceEvent {
                at: self.now(),
                category,
                detail: detail(),
            });
        }
    }

    /// True when structured span tracing is enabled.
    pub fn span_tracing(&self) -> bool {
        self.core.tracer.enabled()
    }

    /// Open a lifecycle span; it closes (recording its end time) when
    /// the returned guard drops. With span tracing off this is one flag
    /// read and an inert guard — no allocation, no RNG draw, no timer —
    /// so instrumented hot paths stay on the zero-alloc and
    /// golden-schedule gates.
    pub fn span(&self, component: &'static str, name: &'static str) -> Span {
        self.span_inner(component, name, None, TraceCtx::NONE)
    }

    /// Like [`Sim::span`], tagging the span with an RPC procedure
    /// number. Child spans inherit the tag through their parent chain
    /// when aggregated (see [`crate::trace::aggregate_phases`]).
    pub fn span_proc(&self, component: &'static str, name: &'static str, proc_num: u32) -> Span {
        self.span_inner(component, name, Some(proc_num), TraceCtx::NONE)
    }

    /// Like [`Sim::span_proc`], adopting a remote [`TraceCtx`]: the
    /// span joins the sender's causal tree and renders with a flow
    /// edge from the sending span in the Chrome export. An empty
    /// context degrades to a plain span. Same disabled fast path as
    /// [`Sim::span`].
    pub fn span_remote(
        &self,
        component: &'static str,
        name: &'static str,
        proc_num: Option<u32>,
        ctx: TraceCtx,
    ) -> Span {
        self.span_inner(component, name, proc_num, ctx)
    }

    fn span_inner(
        &self,
        component: &'static str,
        name: &'static str,
        proc_num: Option<u32>,
        ctx: TraceCtx,
    ) -> Span {
        if !self.core.tracer.enabled() {
            return Span {
                core: None,
                task: NO_TASK,
                id: 0,
            };
        }
        let task = self.core.current_task.get();
        let id = self.core.tracer.enter_remote(
            self.core.now.get(),
            task,
            component,
            name,
            proc_num,
            ctx,
        );
        Span {
            core: Some(self.core.clone()),
            task,
            id,
        }
    }

    /// The [`TraceCtx`] a message sent from the current task right now
    /// should carry: the innermost open span's trace id with that span
    /// as the link point. [`TraceCtx::NONE`] when span tracing is off
    /// (one flag read) or no span is open.
    pub fn current_ctx(&self) -> TraceCtx {
        if !self.core.tracer.enabled() {
            return TraceCtx::NONE;
        }
        self.core.tracer.current_ctx(self.core.current_task.get())
    }

    /// Stash the current task's [`TraceCtx`] for the in-flight RPC
    /// `key` (conventionally `(client_node << 32) | xid`) — the
    /// out-of-band channel the receiver's [`Sim::trace_adopt`] reads,
    /// keeping modeled wire bytes untouched. Retransmissions overwrite.
    /// One flag read when span tracing is off.
    pub fn trace_inject(&self, key: u64) {
        if self.core.tracer.enabled() {
            let ctx = self.core.tracer.current_ctx(self.core.current_task.get());
            self.core.tracer.inject(key, ctx);
        }
    }

    /// Remove and return the [`TraceCtx`] stashed under `key` by the
    /// sender's [`Sim::trace_inject`] ([`TraceCtx::NONE`] when absent
    /// or span tracing is off).
    pub fn trace_adopt(&self, key: u64) -> TraceCtx {
        if !self.core.tracer.enabled() {
            return TraceCtx::NONE;
        }
        self.core.tracer.adopt(key)
    }

    /// Record one event in the always-on flight recorder: plain-old-
    /// data stores into a preallocated ring — no allocation, no RNG,
    /// no timer — safe on any hot path and never perturbing the
    /// schedule. See [`crate::flight`].
    pub fn flight(&self, component: &'static str, event: &'static str, a: u64, b: u64) {
        self.core.flight.record(FlightRecord {
            at: self.core.now.get(),
            task: self.core.current_task.get(),
            component,
            event,
            a,
            b,
        });
    }

    /// The world's metrics registry (shared; cheap to clone). Components
    /// register named counters once and keep the handle for hot-path
    /// bumps.
    pub fn metrics(&self) -> MetricsRegistry {
        self.core.metrics.clone()
    }
}

/// RAII guard for an open lifecycle span (see [`Sim::span`]). Dropping
/// it records the span's end at the current virtual time. When tracing
/// is disabled the guard is inert.
pub struct Span {
    /// `None` when tracing was off at entry: `Drop` does nothing.
    core: Option<Rc<Core>>,
    task: TaskId,
    id: u64,
}

impl Span {
    /// Open a span on `sim` — alias for [`Sim::span`] in guard-first
    /// call style.
    pub fn enter(sim: &Sim, component: &'static str, name: &'static str) -> Span {
        sim.span(component, name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            core.tracer.exit(core.now.get(), self.task, self.id);
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    core: Rc<Core>,
    deadline: SimTime,
    timer: Option<TimerHandle>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.core.now.get() >= self.deadline {
            if let Some(h) = self.timer.take() {
                // Woken by something other than our own timer (which
                // would have consumed the registration); cancel it.
                self.core.timers.borrow_mut().cancel(h);
            }
            return Poll::Ready(());
        }
        match self.timer {
            // Spurious poll: keep the registration, refresh the stored
            // waker in place only if it would wake a different task.
            Some(h) => self.core.timers.borrow_mut().update_waker(h, cx.waker()),
            None => {
                let h = self
                    .core
                    .timers
                    .borrow_mut()
                    .register(self.deadline, cx.waker().clone());
                self.timer = Some(h);
            }
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(h) = self.timer.take() {
            self.core.timers.borrow_mut().cancel(h);
        }
    }
}

/// Future returned by [`Sim::timeout`].
pub struct Timeout<'a, F> {
    sleep: Sleep,
    fut: &'a mut F,
}

impl<F: Future + Unpin> Future for Timeout<'_, F> {
    type Output = Option<F::Output>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        if let Poll::Ready(v) = Pin::new(&mut *this.fut).poll(cx) {
            return Poll::Ready(Some(v));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(None),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Yield once, letting every other currently-ready task run before this
/// one resumes (still at the same virtual instant).
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn block_on_returns_value() {
        let mut sim = Simulation::new(1);
        let v = sim.block_on(async { 40 + 2 });
        assert_eq!(v, 42);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let wall = std::time::Instant::now();
        let t = sim.block_on(async move {
            h.sleep(SimDuration::from_secs(3600)).await;
            h.now()
        });
        assert_eq!(t, SimTime::from_nanos(3600 * 1_000_000_000));
        assert!(wall.elapsed().as_secs() < 5, "virtual sleep took real time");
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, d) in [(1u32, 30u64), (2, 10), (3, 20)] {
            let h = sim.handle();
            let log = log.clone();
            sim.spawn(async move {
                h.sleep(SimDuration::from_micros(d)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![2, 3, 1]);
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10u32 {
            let h = sim.handle();
            let log = log.clone();
            sim.spawn(async move {
                h.sleep(SimDuration::from_micros(5)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_runs() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let hit = Rc::new(Cell::new(false));
        let hit2 = hit.clone();
        sim.spawn(async move {
            let h2 = h.clone();
            let hit3 = hit2.clone();
            h.spawn(async move {
                h2.sleep(SimDuration::from_nanos(1)).await;
                hit3.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn run_until_stops_clock() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_secs(100)).await;
        });
        sim.run_until(SimTime::from_nanos(1_000));
        assert!(sim.now() <= SimTime::from_nanos(1_000));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_nanos(100 * 1_000_000_000));
    }

    #[test]
    fn yield_now_interleaves() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            yield_now().await;
            l1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
            yield_now().await;
            l2.borrow_mut().push("b2");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn block_on_deadlock_panics() {
        let mut sim = Simulation::new(1);
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        fn run_once() -> Vec<u64> {
            let mut sim = Simulation::new(99);
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..20 {
                let h = sim.handle();
                let log = log.clone();
                let d = h.with_rng(|r| r.gen_range(1000));
                sim.spawn(async move {
                    h.sleep(SimDuration::from_nanos(d)).await;
                    log.borrow_mut().push(h.now().as_nanos());
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn tracing_records_and_is_free_when_off() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let ran = Rc::new(Cell::new(0u32));
        // Off: the detail closure must never run.
        let r2 = ran.clone();
        h.trace("test", move || {
            r2.set(r2.get() + 1);
            String::new()
        });
        assert_eq!(ran.get(), 0);
        assert!(!h.tracing());
        assert!(sim.take_trace().is_empty());

        sim.enable_tracing();
        assert!(h.tracing());
        let h2 = h.clone();
        sim.block_on(async move {
            h2.trace("alpha", || "first".into());
            h2.sleep(SimDuration::from_micros(5)).await;
            h2.trace("beta", || "second".into());
        });
        let events = sim.take_trace();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].category, "alpha");
        assert_eq!(events[0].at, SimTime::ZERO);
        assert_eq!(events[1].detail, "second");
        assert_eq!(events[1].at, SimTime::from_nanos(5_000));
        // Taking drains but keeps tracing on.
        assert!(sim.take_trace().is_empty());
        assert!(h.tracing());
    }

    #[test]
    fn trace_ctx_rides_out_of_band_between_tasks() {
        let mut sim = Simulation::new(1);
        // Off: everything is inert and ctx-free.
        let h = sim.handle();
        assert_eq!(h.current_ctx(), TraceCtx::NONE);
        h.trace_inject(7);
        assert_eq!(h.trace_adopt(7), TraceCtx::NONE);

        sim.enable_span_tracing();
        let h = sim.handle();
        let h2 = h.clone();
        sim.block_on(async move {
            let _call = h2.span_proc("client", "call", 7);
            h2.trace_inject(42);
            let h3 = h2.clone();
            h2.spawn(async move {
                // "Server" task: adopt the caller's context.
                let ctx = h3.trace_adopt(42);
                assert_ne!(ctx, TraceCtx::NONE);
                let _op = h3.span_remote("server", "op", Some(7), ctx);
            });
            h2.sleep(SimDuration::from_nanos(1)).await;
        });
        let spans = sim.take_spans();
        let call = spans.iter().find(|s| s.name == "call").unwrap();
        let op = spans.iter().find(|s| s.name == "op").unwrap();
        assert_eq!(op.trace_id, call.trace_id);
        assert_eq!(op.flow_from, call.id);
        assert_ne!(op.task, call.task);
    }

    #[test]
    fn flight_recorder_is_always_armed() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            h.flight("test", "start", 1, 2);
            h.sleep(SimDuration::from_micros(3)).await;
            h.flight("test", "stop", 3, 4);
        });
        let recs = sim.flight_records();
        assert_eq!(sim.flight_total(), 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].event, "start");
        assert_eq!(recs[1].at, SimTime::from_nanos(3_000));
        assert_ne!(recs[0].task, NO_TASK);
    }

    #[test]
    fn dropped_sleep_cancels_timer() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let long = h.sleep(SimDuration::from_secs(1000));
            drop(long);
            h.sleep(SimDuration::from_nanos(5)).await;
        });
        // If the cancelled timer still fired we'd have advanced to 1000s.
        assert_eq!(sim.now(), SimTime::from_nanos(5));
    }

    #[test]
    fn task_slots_are_reused_and_stale_wakes_ignored() {
        let mut sim = Simulation::new(1);
        // Many short-lived generations of tasks must recycle a small
        // set of slots rather than grow the table.
        for round in 0..50u64 {
            for i in 0..4u64 {
                let h = sim.handle();
                sim.spawn(async move {
                    h.sleep(SimDuration::from_nanos(round * 10 + i + 1)).await;
                });
            }
            sim.run();
        }
        let slab = sim.core.tasks.borrow();
        assert!(
            slab.slots.len() <= 8,
            "slab grew to {} slots for 4 concurrent tasks",
            slab.slots.len()
        );
    }

    #[test]
    fn ten_k_concurrent_sleepers_bound_slab_and_keep_order() {
        // Open-loop arrival audit: 10k tasks pending at once, each
        // parked on its own staggered timer. The task slab must be
        // sized by peak concurrency, the timer wheel must fire them in
        // deadline order, and a second same-seed run must produce the
        // identical completion sequence.
        const N: u64 = 10_000;
        let run = || {
            let mut sim = Simulation::new(7);
            let order: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..N {
                let h = sim.handle();
                let order = order.clone();
                sim.spawn(async move {
                    h.sleep(SimDuration::from_nanos((i + 1) * 997)).await;
                    order.borrow_mut().push(i);
                });
            }
            sim.run();
            let slots = sim.core.tasks.borrow().slots.len();
            (Rc::try_unwrap(order).unwrap().into_inner(), slots)
        };
        let (order, slots) = run();
        assert_eq!(order.len(), N as usize);
        assert!(
            order.windows(2).all(|p| p[0] < p[1]),
            "staggered sleepers completed out of deadline order"
        );
        assert!(
            slots <= N as usize + 64,
            "task slab grew to {slots} slots for {N} concurrent tasks"
        );
        let (order2, _) = run();
        assert_eq!(order, order2, "same-seed completion order diverged");
    }

    #[test]
    fn class_interleave_follows_weights() {
        // Nine tasks ready at the same instant: 3 in class 0, 3 in
        // class 1 (weight 2), 3 in class 2 (weight 1). One interleave
        // round takes 1 from class 0, 2 from class 1, 1 from class 2.
        let mut sim = Simulation::new(1);
        sim.set_class_weight(1, 2);
        let log: Rc<RefCell<Vec<(usize, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for class in 0..3usize {
            for i in 0..3u32 {
                let log = log.clone();
                sim.spawn_class(class, async move {
                    log.borrow_mut().push((class, i));
                });
            }
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![
                (0, 0),
                (1, 0),
                (1, 1),
                (2, 0),
                (0, 1),
                (1, 2),
                (2, 1),
                (0, 2),
                (2, 2),
            ]
        );
    }

    #[test]
    fn single_class_drain_is_plain_fifo() {
        // Tasks spawned into one non-default class behave exactly like
        // the default class alone: plain FIFO.
        let mut sim = Simulation::new(1);
        sim.set_class_weight(3, 7);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..6u32 {
            let log = log.clone();
            sim.spawn_class(3, async move {
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn positive_weight_class_is_not_starved() {
        // A huge-weight class cannot push a weight-1 class out of a
        // batch: every round still visits every non-empty lane.
        let mut sim = Simulation::new(1);
        sim.set_class_weight(1, 1000);
        let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..50u32 {
            let log = log.clone();
            sim.spawn_class(1, async move {
                log.borrow_mut().push(1);
            });
        }
        let log0 = log.clone();
        sim.spawn_class(0, async move {
            log0.borrow_mut().push(0);
        });
        sim.run();
        // The lone class-0 task runs in the very first round, i.e.
        // before the bulk of the 50 class-1 tasks completes.
        let pos = log.borrow().iter().position(|&c| c == 0).unwrap();
        assert!(pos <= 1, "class-0 task ran at position {pos}");
    }

    #[test]
    fn duplicate_wakes_are_deduped() {
        // Two external wakers for the same pending task must produce a
        // single poll, not two.
        struct Armed {
            wakers: Rc<RefCell<Vec<Waker>>>,
            done: Rc<Cell<bool>>,
        }
        impl Future for Armed {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.done.get() {
                    Poll::Ready(())
                } else {
                    self.wakers.borrow_mut().push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let mut sim = Simulation::new(1);
        let wakers: Rc<RefCell<Vec<Waker>>> = Rc::new(RefCell::new(Vec::new()));
        let done = Rc::new(Cell::new(false));
        sim.spawn(Armed {
            wakers: wakers.clone(),
            done: done.clone(),
        });
        sim.run();
        assert_eq!(wakers.borrow().len(), 1);
        let polls_before = sim.polls();
        done.set(true);
        let w = wakers.borrow_mut().pop().unwrap();
        w.wake_by_ref(); // queues the task
        w.wake(); // duplicate: must be a no-op
        sim.run();
        assert_eq!(
            sim.polls() - polls_before,
            1,
            "duplicate wake caused a second poll"
        );
    }
}
