//! Contended hardware resources.
//!
//! Every serialized unit in the modelled testbed — a link direction, a
//! CPU core pool, the HCA's TPT-update engine, a disk arm — is a
//! [`Resource`]: a FIFO server with a fixed number of slots. Callers
//! occupy a slot for a duration; throughput ceilings and queueing delays
//! *emerge* from occupancy rather than being hard-coded, which is what
//! lets the paper's bottleneck crossovers reproduce.

use std::cell::Cell;
use std::rc::Rc;

use crate::executor::Sim;
use crate::sync::{SemPermit, Semaphore};
use crate::time::{transfer_time, SimDuration, SimTime};

struct ResourceInner {
    name: String,
    capacity: usize,
    busy: Cell<SimDuration>,
    ops: Cell<u64>,
    opened_at: Cell<SimTime>,
}

/// A FIFO-fair multi-slot resource with busy-time accounting.
#[derive(Clone)]
pub struct Resource {
    sim: Sim,
    sem: Semaphore,
    inner: Rc<ResourceInner>,
}

impl Resource {
    /// Create a resource with `capacity` concurrent slots.
    pub fn new(sim: &Sim, name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource needs at least one slot");
        Resource {
            sim: sim.clone(),
            sem: Semaphore::new(capacity),
            inner: Rc::new(ResourceInner {
                name: name.into(),
                capacity,
                busy: Cell::new(SimDuration::ZERO),
                ops: Cell::new(0),
                opened_at: Cell::new(sim.now()),
            }),
        }
    }

    /// Resource name (for traces and reports).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The simulation handle this resource runs on.
    pub fn sim(&self) -> Sim {
        self.sim.clone()
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Occupy one slot for `d`, queueing FIFO behind earlier users.
    /// This is the fundamental "spend hardware time" operation.
    pub async fn use_for(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let _permit = self.sem.acquire().await;
        self.sim.sleep(d).await;
        self.charge(d);
    }

    /// Acquire a slot without a fixed duration; the caller models the
    /// occupancy itself and should call [`Resource::charge`] for
    /// accounting. Used when holding across multiple sub-steps.
    pub async fn acquire(&self) -> SemPermit {
        self.sem.acquire().await
    }

    /// Record `d` of busy time without occupying a slot (for work that
    /// was serialized by some other mechanism).
    pub fn charge(&self, d: SimDuration) {
        self.inner.busy.set(self.inner.busy.get() + d);
        self.inner.ops.set(self.inner.ops.get() + 1);
    }

    /// Total busy time across all slots since creation (or last reset).
    pub fn busy_time(&self) -> SimDuration {
        self.inner.busy.get()
    }

    /// Completed occupancy intervals.
    pub fn ops(&self) -> u64 {
        self.inner.ops.get()
    }

    /// Fraction of slot-time spent busy since the accounting window
    /// opened. 1.0 = fully saturated.
    pub fn utilization(&self) -> f64 {
        let elapsed = self.sim.now().saturating_since(self.inner.opened_at.get());
        if elapsed.is_zero() {
            return 0.0;
        }
        self.inner.busy.get().as_nanos() as f64
            / (elapsed.as_nanos() as f64 * self.inner.capacity as f64)
    }

    /// Reset the accounting window to "now" (used to exclude warmup).
    pub fn reset_accounting(&self) {
        self.inner.busy.set(SimDuration::ZERO);
        self.inner.ops.set(0);
        self.inner.opened_at.set(self.sim.now());
    }

    /// Queued waiters right now (diagnostic).
    pub fn queue_len(&self) -> usize {
        self.sem.queue_len()
    }
}

/// A unidirectional link: serialization at `bandwidth` plus a fixed
/// propagation `latency`. Store-and-forward: the wire is released as
/// soon as the last byte is transmitted, and delivery completes one
/// `latency` later, so back-to-back messages pipeline.
#[derive(Clone)]
pub struct Link {
    sim: Sim,
    wire: Resource,
    bandwidth: u64,
    latency: SimDuration,
    bytes: Rc<Cell<u64>>,
}

impl Link {
    /// Create a link with `bandwidth` in bytes/second and propagation
    /// `latency`.
    pub fn new(sim: &Sim, name: impl Into<String>, bandwidth: u64, latency: SimDuration) -> Self {
        Link {
            sim: sim.clone(),
            wire: Resource::new(sim, name, 1),
            bandwidth,
            latency,
            bytes: Rc::new(Cell::new(0)),
        }
    }

    /// Transmit `bytes`; resolves when the data has fully arrived at the
    /// far end.
    pub async fn transfer(&self, bytes: u64) {
        let occupancy = transfer_time(bytes, self.bandwidth);
        self.wire.use_for(occupancy).await;
        self.bytes.set(self.bytes.get() + bytes);
        if !self.latency.is_zero() {
            self.sim.sleep(self.latency).await;
        }
    }

    /// Bytes/second capacity.
    pub fn bandwidth(&self) -> u64 {
        self.bandwidth
    }

    /// Propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes.get()
    }

    /// Wire utilization since the accounting window opened.
    pub fn utilization(&self) -> f64 {
        self.wire.utilization()
    }

    /// Reset accounting (exclude warmup).
    pub fn reset_accounting(&self) {
        self.wire.reset_accounting();
        self.bytes.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use crate::time::SimTime;
    use std::cell::RefCell;

    #[test]
    fn resource_serializes_users() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let r = Resource::new(&h, "bus", 1);
        let done: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let r = r.clone();
            let done = done.clone();
            let h = sim.handle();
            sim.spawn(async move {
                r.use_for(SimDuration::from_micros(10)).await;
                done.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        assert_eq!(*done.borrow(), vec![10_000, 20_000, 30_000, 40_000]);
        assert_eq!(r.busy_time(), SimDuration::from_micros(40));
        assert_eq!(r.ops(), 4);
    }

    #[test]
    fn multi_slot_resource_overlaps() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let r = Resource::new(&h, "cpu", 2);
        for _ in 0..4 {
            let r = r.clone();
            sim.spawn(async move {
                r.use_for(SimDuration::from_micros(10)).await;
            });
        }
        sim.run();
        // Two pairs of 10us: finishes at 20us, not 40us.
        assert_eq!(sim.now(), SimTime::from_nanos(20_000));
    }

    #[test]
    fn utilization_is_fractional() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let r = Resource::new(&h, "cpu", 2);
        let r2 = r.clone();
        let h2 = sim.handle();
        sim.spawn(async move {
            r2.use_for(SimDuration::from_micros(10)).await;
            h2.sleep(SimDuration::from_micros(10)).await;
        });
        sim.run();
        // busy 10us of 2 slots * 20us elapsed = 0.25
        assert!((r.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn link_pipelines_messages() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        // 1 GB/s, 5us latency: 1 MB takes 1ms on the wire.
        let link = Link::new(&h, "ib", 1_000_000_000, SimDuration::from_micros(5));
        let done: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let link = link.clone();
            let done = done.clone();
            let h = sim.handle();
            sim.spawn(async move {
                link.transfer(1_000_000).await;
                done.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        // Serialization 1ms apart, each + 5us propagation.
        assert_eq!(*done.borrow(), vec![1_005_000, 2_005_000, 3_005_000]);
        assert_eq!(link.bytes_carried(), 3_000_000);
    }

    #[test]
    fn zero_byte_transfer_costs_latency_only() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let link = Link::new(&h, "ib", 1_000_000_000, SimDuration::from_micros(3));
        let l2 = link.clone();
        sim.block_on(async move { l2.transfer(0).await });
        assert_eq!(sim.now(), SimTime::from_nanos(3_000));
    }

    #[test]
    fn reset_accounting_clears_window() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let r = Resource::new(&h, "x", 1);
        let r2 = r.clone();
        sim.block_on(async move {
            r2.use_for(SimDuration::from_micros(10)).await;
            r2.reset_accounting();
            r2.use_for(SimDuration::from_micros(5)).await;
        });
        assert_eq!(r.busy_time(), SimDuration::from_micros(5));
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }
}
