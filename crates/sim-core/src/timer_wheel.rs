//! Timer wheel: the executor's pending-timer structure.
//!
//! Replaces the seed's `BinaryHeap<TimerEntry>` + `HashMap<u64, Waker>`
//! pair, which paid a heap sift plus a hash insert/remove per sleep.
//! The common case in simulation workloads is a burst of near-future
//! deadlines (I/O completions microseconds out); this structure makes
//! that case O(1) amortized while keeping the executor's *exact*
//! ordering contract: timers fire in `(deadline, registration)` order,
//! bit-for-bit identical to the old implementation.
//!
//! ## Structure
//!
//! Three tiers, strictly ordered (every drain deadline < every wheel
//! deadline < every far-heap deadline):
//!
//! 1. **drain** — the imminent timers, sorted by `(deadline, seq)`.
//!    Stored descending so the next timer to fire is `drain.last()`,
//!    popped in O(1). Late registrations that land inside the drain
//!    window are sorted in (rare: only a shorter sleep created *after*
//!    the window opened).
//! 2. **wheel** — [`BUCKETS`] buckets of [`GRAIN`] ns each, covering
//!    `[base, base + BUCKETS·GRAIN)`. Insert is O(1): push onto
//!    `buckets[(deadline - base) / GRAIN]`. The wheel is *non-cyclic*:
//!    a bucket holds exactly one grain-window, never a future lap, so
//!    collecting a bucket needs no re-sifting. When the drain empties,
//!    the cursor advances to the next non-empty bucket and its contents
//!    are sorted into the drain — sorting restores exact sub-grain
//!    order, so bucketing never coarsens firing order.
//! 3. **far heap** — deadlines at or beyond the wheel horizon, in a
//!    `BinaryHeap`. When drain and wheel are both empty the wheel
//!    *rebases* at the heap minimum and pours every heap entry inside
//!    the new window into buckets. Idle periods therefore skip forward
//!    in one O(k log n) step instead of ticking empty buckets.
//!
//! ## Cancellation
//!
//! [`TimerWheel::cancel`] is O(1) and lazy: it clears the slot's waker;
//! the dead key is dropped when its tier is next traversed. Generation
//! counters on slots make stale handles (a fired timer's `Sleep`
//! dropped later) harmless. Lazy deletion is *bounded*: cancelled
//! entries in the far heap are counted and purged wholesale once they
//! outnumber live ones (see [`TimerWheel::maybe_purge_heap`]), so a
//! workload that registers long timeouts and always cancels them keeps
//! memory proportional to the live set.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::task::Waker;

use crate::time::SimTime;

/// Buckets in the wheel window.
const BUCKETS: usize = 256;
/// Nanoseconds per bucket (power of two so index math is a shift).
const GRAIN: u64 = 1024;

/// Handle to a registered timer; needed to cancel it or swap its waker.
/// Stale handles (timer already fired) are detected by generation and
/// ignored.
#[derive(Clone, Copy, Debug)]
pub struct TimerHandle {
    slot: u32,
    gen: u32,
}

/// Where a timer's key currently lives (for dead-entry accounting).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    Drain,
    Wheel,
    Heap,
}

/// One timer's identity and firing order. Keys live in exactly one tier
/// and own their slab slot until popped.
#[derive(Clone, Copy)]
struct Key {
    deadline: u64,
    seq: u64,
    slot: u32,
}

impl Key {
    fn order(&self) -> (u64, u64) {
        (self.deadline, self.seq)
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.order() == other.order()
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order().cmp(&other.order())
    }
}

struct Slot {
    gen: u32,
    /// `Some` while the timer is live; cleared by cancel/fire.
    waker: Option<Waker>,
    tier: Tier,
}

/// The three-tier pending-timer structure. See the module docs.
pub struct TimerWheel {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Global registration counter; ties on deadline fire in seq order.
    seq: u64,
    /// Imminent timers, sorted descending by `(deadline, seq)` —
    /// `last()` is the next to fire.
    drain: Vec<Key>,
    /// Deadlines below this are in (or past) the drain.
    drain_end: u64,
    buckets: Vec<Vec<Key>>,
    /// Start of the wheel window (multiple of `GRAIN`).
    base: u64,
    /// Next bucket to collect into the drain.
    cursor: usize,
    /// Keys currently in buckets (live + dead).
    wheel_len: usize,
    /// Far-future timers (deadline ≥ wheel horizon).
    heap: BinaryHeap<Reverse<Key>>,
    /// Cancelled keys still sitting in the heap.
    heap_dead: usize,
    /// Live (uncancelled, unfired) timers across all tiers.
    live: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl TimerWheel {
    /// An empty wheel based at t=0.
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            drain: Vec::new(),
            drain_end: 0,
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            base: 0,
            cursor: 0,
            wheel_len: 0,
            heap: BinaryHeap::new(),
            heap_dead: 0,
            live: 0,
        }
    }

    /// Number of live (registered, not cancelled, not fired) timers.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Register a timer. Steady-state cost is O(1) and allocation-free
    /// (slab slots and bucket capacity are reused).
    pub fn register(&mut self, deadline: SimTime, waker: Waker) -> TimerHandle {
        let slot = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    waker: None,
                    tier: Tier::Heap,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.slots[slot as usize].waker = Some(waker);
        self.seq += 1;
        let key = Key {
            deadline: deadline.as_nanos(),
            seq: self.seq,
            slot,
        };
        self.place(key);
        self.live += 1;
        TimerHandle { slot, gen }
    }

    /// Route a key to its tier. Keys below `drain_end` must sort into
    /// the drain (the wheel has already swept past them).
    fn place(&mut self, key: Key) {
        let d = key.deadline;
        let tier = if d < self.drain_end {
            let pos = self.drain.partition_point(|k| k.order() > key.order());
            self.drain.insert(pos, key);
            Tier::Drain
        } else {
            let off = (d - self.base) / GRAIN;
            if off < BUCKETS as u64 {
                self.buckets[off as usize].push(key);
                self.wheel_len += 1;
                Tier::Wheel
            } else {
                self.heap.push(Reverse(key));
                Tier::Heap
            }
        };
        self.slots[key.slot as usize].tier = tier;
    }

    /// Cancel a timer: O(1), lazy. A stale handle is a no-op.
    pub fn cancel(&mut self, h: TimerHandle) {
        let Some(slot) = self.slots.get_mut(h.slot as usize) else {
            return;
        };
        if slot.gen != h.gen || slot.waker.is_none() {
            return;
        }
        slot.waker = None;
        self.live -= 1;
        if slot.tier == Tier::Heap {
            self.heap_dead += 1;
            self.maybe_purge_heap();
        }
    }

    /// Replace a live timer's waker (used by `Sleep::poll` on spurious
    /// polls). No-op on stale handles or when the stored waker would
    /// already wake the same task.
    pub fn update_waker(&mut self, h: TimerHandle, waker: &Waker) {
        let Some(slot) = self.slots.get_mut(h.slot as usize) else {
            return;
        };
        if slot.gen != h.gen {
            return;
        }
        if let Some(w) = &slot.waker {
            if !w.will_wake(waker) {
                slot.waker = Some(waker.clone());
            }
        }
    }

    /// Pop the earliest live timer with `deadline <= limit`, if any.
    /// Dead keys encountered on the way are freed (bounded lazy
    /// deletion); a live timer beyond `limit` is left in place.
    ///
    /// `now` is the caller's current virtual time; it anchors the wheel
    /// window when the far heap has to be consulted (see
    /// [`TimerWheel::refill`]), so a pending long timeout never drags
    /// the window away from the present.
    pub fn pop_due(&mut self, limit: SimTime, now: SimTime) -> Option<(SimTime, Waker)> {
        loop {
            self.refill(now.as_nanos());
            let key = *self.drain.last()?;
            if self.slots[key.slot as usize].waker.is_none() {
                self.drain.pop();
                self.free_slot(key.slot);
                continue;
            }
            if key.deadline > limit.as_nanos() {
                return None;
            }
            self.drain.pop();
            let waker = self.slots[key.slot as usize]
                .waker
                .take()
                .expect("checked live above");
            self.live -= 1;
            self.free_slot(key.slot);
            return Some((SimTime::from_nanos(key.deadline), waker));
        }
    }

    /// Make the drain non-empty if any timer exists: advance the cursor
    /// collecting buckets, rebasing when the wheel runs dry.
    ///
    /// Rebasing anchors at `now` first, so that a long-lived far-heap
    /// timer (e.g. an RPC retransmission timeout, typically cancelled
    /// long before it fires) cannot drag the window into the far
    /// future — which would force every subsequent near-future sleep
    /// down the sorted-drain slow path. Only when nothing lands in the
    /// window at `now` (a genuine idle skip: the far timer is the next
    /// event) does the window jump to the heap minimum.
    fn refill(&mut self, now: u64) {
        while self.drain.is_empty() {
            if self.wheel_len > 0 {
                while self.buckets[self.cursor].is_empty() {
                    self.cursor += 1;
                }
                // Collect one bucket, dropping dead keys; `extend` +
                // `drain(..)` keeps both vecs' capacity.
                let mut bucket = std::mem::take(&mut self.buckets[self.cursor]);
                self.wheel_len -= bucket.len();
                for key in bucket.drain(..) {
                    if self.slots[key.slot as usize].waker.is_some() {
                        self.slots[key.slot as usize].tier = Tier::Drain;
                        self.drain.push(key);
                    } else {
                        self.free_slot(key.slot);
                    }
                }
                self.buckets[self.cursor] = bucket;
                self.cursor += 1;
                self.drain_end = self.base.saturating_add(self.cursor as u64 * GRAIN);
                // Descending sort: `last()` = minimum `(deadline, seq)`.
                self.drain
                    .sort_unstable_by_key(|k| std::cmp::Reverse(k.order()));
            } else if !self.heap.is_empty() {
                if !self.rebase_at(now) {
                    // Nothing within the window of the present: idle
                    // skip to the heap minimum. (The pour below frees
                    // dead heap keys, so this loop always progresses.)
                    let min = self
                        .heap
                        .peek()
                        .expect("checked non-empty above")
                        .0
                        .deadline;
                    self.rebase_at(min);
                }
            } else {
                return;
            }
        }
    }

    /// Move the wheel window to start at `at` and pour every heap entry
    /// inside the new window into buckets (dead keys are freed on the
    /// way). Returns whether any key left the heap.
    fn rebase_at(&mut self, at: u64) -> bool {
        self.base = at & !(GRAIN - 1);
        self.cursor = 0;
        self.drain_end = self.base;
        let mut moved = false;
        while let Some(Reverse(key)) = self.heap.peek() {
            // Keys below the new base can only be long-dead (the clock
            // never passes a live timer); saturate them into bucket 0.
            let off = key.deadline.saturating_sub(self.base) / GRAIN;
            if off >= BUCKETS as u64 {
                break;
            }
            let Reverse(key) = self.heap.pop().expect("peeked");
            moved = true;
            if self.slots[key.slot as usize].waker.is_some() {
                self.slots[key.slot as usize].tier = Tier::Wheel;
                self.buckets[off as usize].push(key);
                self.wheel_len += 1;
            } else {
                self.heap_dead -= 1;
                self.free_slot(key.slot);
            }
        }
        moved
    }

    /// Purge the far heap once cancelled entries outnumber live ones
    /// (plus a floor so small heaps never bother). Keeps lazy-deletion
    /// memory proportional to the live set.
    fn maybe_purge_heap(&mut self) {
        if self.heap_dead <= 64 || self.heap_dead * 2 <= self.heap.len() {
            return;
        }
        let keys = std::mem::take(&mut self.heap).into_vec();
        let mut kept = Vec::with_capacity(keys.len() - self.heap_dead);
        for Reverse(key) in keys {
            if self.slots[key.slot as usize].waker.is_some() {
                kept.push(Reverse(key));
            } else {
                self.free_slot(key.slot);
            }
        }
        self.heap = BinaryHeap::from(kept);
        self.heap_dead = 0;
    }

    fn free_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.waker = None;
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Waker {
        Waker::noop().clone()
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Pop everything due by `limit`, returning deadlines in fire order.
    /// Tracks the virtual clock the way the executor does: `now`
    /// advances to each fired deadline.
    fn drain_all(wheel: &mut TimerWheel, limit: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut now = 0;
        while let Some((at, _)) = wheel.pop_due(t(limit), t(now)) {
            now = at.as_nanos();
            out.push(now);
        }
        out
    }

    #[test]
    fn fires_in_deadline_order_across_tiers() {
        let mut wh = TimerWheel::new();
        // Far heap, wheel, and (after a pop) drain-window inserts.
        for d in [5_000_000u64, 300, 900_000, 7, 80_000, 2] {
            wh.register(t(d), w());
        }
        assert_eq!(
            drain_all(&mut wh, u64::MAX),
            vec![2, 7, 300, 80_000, 900_000, 5_000_000]
        );
        assert_eq!(wh.live(), 0);
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let mut wh = TimerWheel::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(wh.register(t(500), w()));
        }
        // All in one bucket; seq must break the tie. Pop one at a time
        // and match the seq-implied order via the handles' slots.
        let mut fired = 0;
        while wh.pop_due(t(u64::MAX), t(0)).is_some() {
            fired += 1;
        }
        assert_eq!(fired, 8);
    }

    #[test]
    fn respects_pop_limit() {
        let mut wh = TimerWheel::new();
        wh.register(t(100), w());
        wh.register(t(200), w());
        assert_eq!(drain_all(&mut wh, 150), vec![100]);
        assert_eq!(wh.live(), 1);
        assert_eq!(drain_all(&mut wh, u64::MAX), vec![200]);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut wh = TimerWheel::new();
        let a = wh.register(t(100), w());
        wh.register(t(200), w());
        let c = wh.register(t(10_000_000), w());
        wh.cancel(a);
        wh.cancel(c);
        assert_eq!(wh.live(), 1);
        assert_eq!(drain_all(&mut wh, u64::MAX), vec![200]);
    }

    #[test]
    fn stale_handle_cancel_is_noop() {
        let mut wh = TimerWheel::new();
        let a = wh.register(t(100), w());
        assert_eq!(drain_all(&mut wh, u64::MAX), vec![100]);
        // Slot has been freed and maybe reused; the stale cancel must
        // not touch the new occupant.
        let _b = wh.register(t(300), w());
        wh.cancel(a);
        assert_eq!(wh.live(), 1);
        assert_eq!(drain_all(&mut wh, u64::MAX), vec![300]);
    }

    #[test]
    fn late_registration_inside_drain_window_sorts_in() {
        let mut wh = TimerWheel::new();
        wh.register(t(100), w());
        wh.register(t(900), w());
        // Open the drain window (collects the first bucket).
        assert_eq!(wh.pop_due(t(u64::MAX), t(0)).unwrap().0.as_nanos(), 100);
        // 500 is inside the already-swept window; must still fire
        // before 900.
        wh.register(t(500), w());
        assert_eq!(drain_all(&mut wh, u64::MAX), vec![500, 900]);
    }

    #[test]
    fn far_future_rebase_skips_idle_gap() {
        let mut wh = TimerWheel::new();
        // Two clusters far apart, plus a straggler between them.
        wh.register(t(10), w());
        wh.register(t(1 << 40), w());
        wh.register(t((1 << 40) + 3), w());
        wh.register(t(1 << 50), w());
        assert_eq!(
            drain_all(&mut wh, u64::MAX),
            vec![10, 1 << 40, (1 << 40) + 3, 1 << 50]
        );
    }

    #[test]
    fn cancelled_long_timeouts_do_not_disturb_near_timers() {
        // The RPC retransmission pattern: every operation arms a
        // far-future timeout, awaits a burst of near-future timers, and
        // cancels the timeout. Near timers must keep firing in order
        // (and the window must keep tracking the present rather than
        // the abandoned timeouts).
        let mut wh = TimerWheel::new();
        let mut now = 0u64;
        for op in 0..1000u64 {
            let timeout = wh.register(t(now + 50_000_000), w());
            let mut expect = Vec::new();
            for i in 0..4 {
                let d = now + 100 * (i + 1);
                wh.register(t(d), w());
                expect.push(d);
            }
            for want in expect {
                let (at, _) = wh.pop_due(t(u64::MAX), t(now)).expect("near timer pending");
                assert_eq!(at.as_nanos(), want, "op {op}: fired out of order");
                now = at.as_nanos();
            }
            wh.cancel(timeout);
        }
        assert_eq!(wh.live(), 0);
        assert!(drain_all(&mut wh, u64::MAX).is_empty());
    }

    #[test]
    fn heap_purge_bounds_dead_entries() {
        let mut wh = TimerWheel::new();
        // Register and cancel many far-future timers; the heap must not
        // retain them all.
        for i in 0..10_000u64 {
            let h = wh.register(t((1 << 40) + i), w());
            wh.cancel(h);
        }
        assert_eq!(wh.live(), 0);
        assert!(
            wh.heap.len() < 1000,
            "lazy deletion unbounded: {} dead heap entries",
            wh.heap.len()
        );
        assert!(drain_all(&mut wh, u64::MAX).is_empty());
    }

    #[test]
    fn ten_k_staggered_timers_no_rescan_per_tick() {
        // The open-loop overload pattern: 10k+ pending deadlines at
        // once, spanning many wheel windows into the far heap, with new
        // arrivals replacing fired ones. Guards three properties: the
        // slab is bounded by peak concurrency (not total
        // registrations), the drain never approaches the live
        // population (each tick touches O(bucket) keys, no O(n)
        // rescan), and the firing order is exactly the deadline order.
        const N: usize = 10_000;
        const GAP: u64 = 1_000; // sub-grain stagger, ~4 buckets/5 keys
        let mut wh = TimerWheel::new();
        let mut next = GAP;
        for _ in 0..N {
            wh.register(t(next), w());
            next += GAP;
        }
        assert_eq!(wh.live(), N);
        let mut fired = Vec::new();
        let mut now = 0;
        let mut max_drain = 0;
        for i in 0..2 * N {
            let (at, _) = wh.pop_due(t(u64::MAX), t(now)).expect("timer pending");
            now = at.as_nanos();
            fired.push(now);
            max_drain = max_drain.max(wh.drain.len());
            if i < N {
                wh.register(t(next), w());
                next += GAP;
            }
        }
        assert_eq!(wh.live(), 0);
        let expect: Vec<u64> = (1..=2 * N as u64).map(|i| i * GAP).collect();
        assert_eq!(
            fingerprint(&fired),
            fingerprint(&expect),
            "firing order diverged"
        );
        assert!(
            wh.slots.len() <= N + 64,
            "slab grew to {} slots for {N} concurrent timers",
            wh.slots.len()
        );
        assert!(
            max_drain <= 64,
            "drain held {max_drain} keys at once — per-tick collect is rescanning"
        );
    }

    /// FNV-1a over a deadline sequence (firing-order fingerprint).
    fn fingerprint(seq: &[u64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in seq {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut wh = TimerWheel::new();
        for round in 0..100u64 {
            for i in 0..10 {
                wh.register(t(round * 1000 + i + 1), w());
            }
            assert_eq!(drain_all(&mut wh, u64::MAX).len(), 10);
        }
        assert!(
            wh.slots.len() <= 16,
            "slab grew to {} slots for 10 concurrent timers",
            wh.slots.len()
        );
    }
}
