//! Synchronization primitives for simulation tasks.
//!
//! These mirror the shapes of real kernel primitives the modelled
//! systems use — message queues between interrupt handlers and worker
//! threads, counted semaphores for resource slots, completion
//! notifications — but operate purely in virtual time. All are
//! single-threaded (`Rc`-based); only the `Waker`s they store cross the
//! (nonexistent) thread boundary.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// mpsc channel
// ---------------------------------------------------------------------------

struct ChanInner<T> {
    queue: VecDeque<T>,
    recv_wakers: VecDeque<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Unbounded multi-producer single-consumer channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(ChanInner {
        queue: VecDeque::new(),
        recv_wakers: VecDeque::new(),
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Sending half of [`channel`]. Clonable.
pub struct Sender<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

/// Receiving half of [`channel`].
pub struct Receiver<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when all senders are gone and
/// the queue is drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake the receiver so a pending recv() observes closure.
            for w in inner.recv_wakers.drain(..) {
                w.wake();
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.borrow_mut().receiver_alive = false;
    }
}

impl<T> Sender<T> {
    /// Enqueue a message, waking the receiver if it is parked.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.inner.borrow_mut();
        if !inner.receiver_alive {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        if let Some(w) = inner.recv_wakers.pop_front() {
            w.wake();
        }
        Ok(())
    }

    /// Number of queued messages (for backpressure heuristics/tests).
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Await the next message; resolves to `Err(RecvError)` once every
    /// sender has been dropped and the queue is empty.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking take.
    pub fn try_recv(&mut self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.rx.inner.borrow_mut();
        if let Some(v) = inner.queue.pop_front() {
            return Poll::Ready(Ok(v));
        }
        if inner.senders == 0 {
            return Poll::Ready(Err(RecvError));
        }
        inner.recv_wakers.push_back(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

struct OneshotInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Single-value channel; the canonical "completion" primitive used for
/// RPC reply matching and I/O completion.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Rc::new(RefCell::new(OneshotInner {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (
        OneshotSender {
            inner: inner.clone(),
        },
        OneshotReceiver { inner },
    )
}

/// Sending half of [`oneshot`].
pub struct OneshotSender<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

/// Receiving half of [`oneshot`]; a `Future` resolving to
/// `Err(RecvError)` if the sender is dropped without sending.
pub struct OneshotReceiver<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(self, value: T) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.value = Some(value);
        }
        // Drop runs next: it marks the sender dead and wakes the
        // receiver, which will find the value in place.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.sender_alive = false;
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.inner.borrow_mut();
        if let Some(v) = inner.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !inner.sender_alive {
            return Poll::Ready(Err(RecvError));
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Semaphore (FIFO-fair)
// ---------------------------------------------------------------------------

struct SemWaiter {
    ticket: u64,
    waker: Option<Waker>,
}

struct SemInner {
    permits: usize,
    waiters: VecDeque<SemWaiter>,
    /// Tickets whose permit has been handed over but whose future has
    /// not observed it yet.
    granted: Vec<u64>,
    next_ticket: u64,
}

impl SemInner {
    /// Hand available permits to queued waiters, FIFO.
    fn dispatch(&mut self) {
        while self.permits > 0 {
            let Some(mut w) = self.waiters.pop_front() else {
                break;
            };
            self.permits -= 1;
            self.granted.push(w.ticket);
            if let Some(waker) = w.waker.take() {
                waker.wake();
            }
        }
    }
}

/// A counted, strictly FIFO semaphore. Fairness matters: hardware queues
/// (HCA work queues, disk queues, NIC transmit rings) service requests
/// in order, and the paper's contention effects depend on that.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

impl Semaphore {
    /// Create with `permits` initial slots.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                permits,
                waiters: VecDeque::new(),
                granted: Vec::new(),
                next_ticket: 0,
            })),
        }
    }

    /// Acquire one permit, waiting in FIFO order.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            ticket: None,
        }
    }

    /// Try to acquire without waiting; respects FIFO order (fails if
    /// anyone is queued ahead).
    pub fn try_acquire(&self) -> Option<SemPermit> {
        let mut inner = self.inner.borrow_mut();
        if inner.permits > 0 && inner.waiters.is_empty() {
            inner.permits -= 1;
            Some(SemPermit { sem: self.clone() })
        } else {
            None
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Add permits (used by resources that grow, e.g. credit grants).
    pub fn add_permits(&self, n: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += n;
        inner.dispatch();
    }

    fn release(&self) {
        self.add_permits(1);
    }
}

/// RAII permit from [`Semaphore::acquire`]; releasing wakes the next
/// FIFO waiter.
pub struct SemPermit {
    sem: Semaphore,
}

impl SemPermit {
    /// Consume the permit without returning it to the semaphore.
    /// Used for credit-style accounting where replenishment happens
    /// explicitly via [`Semaphore::add_permits`].
    pub fn forget(self) {
        std::mem::forget(self);
    }
}

impl Drop for SemPermit {
    fn drop(&mut self) {
        self.sem.release();
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    ticket: Option<u64>,
}

impl Future for Acquire {
    type Output = SemPermit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.sem.inner.borrow_mut();
        match self.ticket {
            None => {
                if inner.permits > 0 && inner.waiters.is_empty() {
                    inner.permits -= 1;
                    drop(inner);
                    let sem = self.sem.clone();
                    self.ticket = Some(u64::MAX); // sentinel: already granted+consumed
                    Poll::Ready(SemPermit { sem })
                } else {
                    let ticket = inner.next_ticket;
                    inner.next_ticket += 1;
                    inner.waiters.push_back(SemWaiter {
                        ticket,
                        waker: Some(cx.waker().clone()),
                    });
                    drop(inner);
                    self.ticket = Some(ticket);
                    Poll::Pending
                }
            }
            Some(ticket) => {
                if let Some(pos) = inner.granted.iter().position(|&t| t == ticket) {
                    inner.granted.swap_remove(pos);
                    drop(inner);
                    let sem = self.sem.clone();
                    self.ticket = Some(u64::MAX);
                    Poll::Ready(SemPermit { sem })
                } else {
                    // Refresh the stored waker.
                    if let Some(w) = inner.waiters.iter_mut().find(|w| w.ticket == ticket) {
                        w.waker = Some(cx.waker().clone());
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        let Some(ticket) = self.ticket else { return };
        if ticket == u64::MAX {
            return; // permit already handed to caller
        }
        let mut inner = self.sem.inner.borrow_mut();
        if let Some(pos) = inner.waiters.iter().position(|w| w.ticket == ticket) {
            inner.waiters.remove(pos);
        } else if let Some(pos) = inner.granted.iter().position(|&t| t == ticket) {
            // Granted but never observed: return the permit.
            inner.granted.swap_remove(pos);
            inner.permits += 1;
            inner.dispatch();
        }
    }
}

// ---------------------------------------------------------------------------
// Notify (condition-variable-ish broadcast)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct NotifyInner {
    generation: u64,
    wakers: Vec<Waker>,
}

/// Broadcast notification: every task parked in [`Notify::notified`]
/// before a [`Notify::notify_all`] call is woken by it.
#[derive(Clone, Default)]
pub struct Notify {
    inner: Rc<RefCell<NotifyInner>>,
}

impl Notify {
    /// Create an idle notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake all currently parked waiters.
    pub fn notify_all(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.generation += 1;
        for w in inner.wakers.drain(..) {
            w.wake();
        }
    }

    /// Wait for the next `notify_all` that happens after this call.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            generation: self.inner.borrow().generation,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    generation: u64,
}

impl Future for Notified {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.notify.inner.borrow_mut();
        if inner.generation != self.generation {
            Poll::Ready(())
        } else {
            inner.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn channel_delivers_in_order() {
        let mut sim = Simulation::new(1);
        let (tx, mut rx) = channel::<u32>();
        let h = sim.handle();
        sim.spawn(async move {
            for i in 0..5 {
                h.sleep(SimDuration::from_micros(1)).await;
                tx.send(i).unwrap();
            }
        });
        let got = sim.block_on(async move {
            let mut v = Vec::new();
            while let Ok(x) = rx.recv().await {
                v.push(x);
            }
            v
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_close_on_sender_drop() {
        let mut sim = Simulation::new(1);
        let (tx, mut rx) = channel::<u32>();
        drop(tx);
        let r = sim.block_on(async move { rx.recv().await });
        assert_eq!(r, Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn oneshot_roundtrip() {
        let mut sim = Simulation::new(1);
        let (tx, rx) = oneshot::<&'static str>();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_micros(10)).await;
            tx.send("done");
        });
        let v = sim.block_on(rx);
        assert_eq!(v, Ok("done"));
    }

    #[test]
    fn oneshot_sender_drop_errors() {
        let mut sim = Simulation::new(1);
        let (tx, rx) = oneshot::<u32>();
        drop(tx);
        assert_eq!(sim.block_on(rx), Err(RecvError));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Simulation::new(1);
        let sem = Semaphore::new(2);
        let active = Rc::new(Cell2::default());
        for _ in 0..10 {
            let sem = sem.clone();
            let active = active.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                active.cur.set(active.cur.get() + 1);
                active.max.set(active.max.get().max(active.cur.get()));
                h.sleep(SimDuration::from_micros(10)).await;
                active.cur.set(active.cur.get() - 1);
            });
        }
        sim.run();
        assert_eq!(active.max.get(), 2);
    }

    #[derive(Default)]
    struct Cell2 {
        cur: std::cell::Cell<u32>,
        max: std::cell::Cell<u32>,
    }

    #[test]
    fn semaphore_is_fifo() {
        let mut sim = Simulation::new(1);
        let sem = Semaphore::new(1);
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let sem = sem.clone();
            let order = order.clone();
            let h = sim.handle();
            sim.spawn(async move {
                // Stagger arrival to fix the queue order.
                h.sleep(SimDuration::from_nanos(i as u64)).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                h.sleep(SimDuration::from_micros(1)).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let mut sim = Simulation::new(1);
        let sem = Semaphore::new(1);
        let h = sim.handle();
        let sem2 = sem.clone();
        sim.spawn(async move {
            let _p = sem2.acquire().await;
            h.sleep(SimDuration::from_micros(5)).await;
        });
        let sem3 = sem.clone();
        let h2 = sim.handle();
        sim.spawn(async move {
            let _p = sem3.acquire().await; // queued waiter
            h2.sleep(SimDuration::from_micros(5)).await;
        });
        sim.run_until(crate::time::SimTime::from_nanos(1));
        assert!(sem.try_acquire().is_none());
        sim.run();
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn cancelled_acquire_releases_slot() {
        let mut sim = Simulation::new(1);
        let sem = Semaphore::new(1);
        let sem2 = sem.clone();
        let h = sim.handle();
        let hmain = sim.handle();
        sim.spawn(async move {
            let _p = sem2.acquire().await;
            h.sleep(SimDuration::from_micros(10)).await;
        });
        let sem3 = sem.clone();
        let got = sim.block_on(async move {
            hmain.sleep(SimDuration::from_nanos(1)).await;
            {
                // Queue up, then abandon before grant.
                let acq = sem3.acquire();
                futures_select_drop(acq);
            }
            hmain.sleep(SimDuration::from_micros(20)).await;
            sem3.try_acquire().is_some()
        });
        assert!(got, "cancelled waiter leaked a queue slot");
    }

    fn futures_select_drop<F: Future>(f: F) {
        drop(f);
    }

    #[test]
    fn notify_wakes_all_parked() {
        let mut sim = Simulation::new(1);
        let n = Notify::new();
        let count = Rc::new(std::cell::Cell::new(0));
        for _ in 0..3 {
            let n = n.clone();
            let count = count.clone();
            sim.spawn(async move {
                n.notified().await;
                count.set(count.get() + 1);
            });
        }
        let n2 = n.clone();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_micros(1)).await;
            n2.notify_all();
        });
        sim.run();
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn permit_forget_consumes() {
        let sem = Semaphore::new(3);
        sem.try_acquire().unwrap().forget();
        assert_eq!(sem.available(), 2);
        sem.add_permits(1);
        assert_eq!(sem.available(), 3);
    }
}
