//! Data payloads that can be real or synthetic.
//!
//! Correctness tests move real bytes end to end and verify them.
//! Figure-scale runs move gigabytes of virtual data; carrying real
//! buffers would dominate memory and host time without changing any
//! simulated result, so they use `Synthetic` payloads: a length plus a
//! deterministic pattern seed. Every transport path handles both
//! uniformly via [`Payload::slice`]/[`Payload::concat`], and
//! [`Payload::materialize`] produces the actual bytes of a synthetic
//! payload on demand (tests use this to prove the two representations
//! agree).

use bytes::Bytes;

/// Seed of the all-zeros stream (uninitialized memory reads as zero).
pub const ZERO_SEED: u64 = 0;

/// The byte at `offset` of the synthetic stream with `seed`.
#[inline]
fn synth_byte(seed: u64, offset: u64) -> u8 {
    if seed == ZERO_SEED {
        return 0;
    }
    // Cheap mix; only needs to be deterministic and position-dependent.
    let x = seed
        .wrapping_add(offset.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (x >> 56) as u8
}

/// A chunk of data in flight: real bytes or a synthetic description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Actual bytes (zero-copy via `Bytes`).
    Real(Bytes),
    /// `len` bytes of the deterministic pattern stream `seed`, starting
    /// at stream offset `offset`.
    Synthetic {
        /// Pattern stream identifier ([`ZERO_SEED`] is all zeros).
        seed: u64,
        /// Starting offset within the stream.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
}

impl Payload {
    /// An empty payload.
    pub fn empty() -> Payload {
        Payload::Real(Bytes::new())
    }

    /// Wrap real bytes.
    pub fn real(data: impl Into<Bytes>) -> Payload {
        Payload::Real(data.into())
    }

    /// A synthetic payload of `len` bytes at the start of stream `seed`.
    pub fn synthetic(seed: u64, len: u64) -> Payload {
        Payload::Synthetic {
            seed,
            offset: 0,
            len,
        }
    }

    /// `len` zero bytes without allocating them.
    pub fn zeros(len: u64) -> Payload {
        Payload::Synthetic {
            seed: ZERO_SEED,
            offset: 0,
            len,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Real(b) => b.len() as u64,
            Payload::Synthetic { len, .. } => *len,
        }
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range `[start, start+len)`. Panics if out of bounds.
    pub fn slice(&self, start: u64, len: u64) -> Payload {
        assert!(
            start + len <= self.len(),
            "slice {start}+{len} out of bounds for payload of {}",
            self.len()
        );
        match self {
            Payload::Real(b) => Payload::Real(b.slice(start as usize..(start + len) as usize)),
            Payload::Synthetic { seed, offset, .. } => Payload::Synthetic {
                seed: *seed,
                offset: offset + start,
                len,
            },
        }
    }

    /// Concatenate a sequence of payloads. Adjacent synthetic pieces of
    /// the same stream are merged; anything else is materialized.
    pub fn concat(pieces: &[Payload]) -> Payload {
        match pieces {
            [] => Payload::empty(),
            [one] => one.clone(),
            _ => {
                // Merge if all pieces are contiguous synthetic ranges of
                // one stream.
                if let Payload::Synthetic { seed, offset, .. } = pieces[0] {
                    let mut expect = offset;
                    let mut total = 0u64;
                    let mut contiguous = true;
                    for p in pieces {
                        match p {
                            Payload::Synthetic {
                                seed: s,
                                offset: o,
                                len,
                            } if *s == seed && *o == expect => {
                                expect += len;
                                total += len;
                            }
                            _ => {
                                contiguous = false;
                                break;
                            }
                        }
                    }
                    if contiguous {
                        return Payload::Synthetic {
                            seed,
                            offset,
                            len: total,
                        };
                    }
                }
                let mut out = Vec::with_capacity(pieces.iter().map(|p| p.len() as usize).sum());
                for p in pieces {
                    out.extend_from_slice(&p.materialize());
                }
                Payload::Real(Bytes::from(out))
            }
        }
    }

    /// Produce the actual bytes (synthetic payloads are expanded).
    pub fn materialize(&self) -> Bytes {
        match self {
            Payload::Real(b) => b.clone(),
            Payload::Synthetic { seed, offset, len } => {
                let mut v = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    v.push(synth_byte(*seed, offset + i));
                }
                Bytes::from(v)
            }
        }
    }

    /// Compare contents without necessarily materializing both sides.
    pub fn content_eq(&self, other: &Payload) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match (self, other) {
            (
                Payload::Synthetic { seed, offset, .. },
                Payload::Synthetic {
                    seed: s2,
                    offset: o2,
                    ..
                },
            ) => {
                // Any two zero streams of equal length are equal.
                (*seed == ZERO_SEED && *s2 == ZERO_SEED) || (seed == s2 && offset == o2)
            }
            _ => self.materialize() == other.materialize(),
        }
    }
}

/// A scatter/gather list: an ordered sequence of [`Payload`] pieces
/// treated as one logical byte range.
///
/// This is the zero-copy spine of the server READ path: the page cache
/// hands out reference-counted page slices, the file system gathers
/// them into an `SgList`, and the transport posts them as the SG
/// entries of a vectored RDMA Write — no piece is ever flattened into a
/// contiguous buffer unless a legacy consumer calls [`SgList::to_payload`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SgList {
    pieces: Vec<Payload>,
    total: u64,
}

impl SgList {
    /// An empty list.
    pub fn new() -> SgList {
        SgList::default()
    }

    /// Build from pieces (empty pieces are dropped).
    pub fn from_pieces(pieces: Vec<Payload>) -> SgList {
        let mut sg = SgList::new();
        for p in pieces {
            sg.push(p);
        }
        sg
    }

    /// Append a piece (no copy; empty pieces are dropped).
    pub fn push(&mut self, piece: Payload) {
        if piece.is_empty() {
            return;
        }
        self.total += piece.len();
        self.pieces.push(piece);
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of scatter/gather entries.
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// The pieces, in order.
    pub fn pieces(&self) -> &[Payload] {
        &self.pieces
    }

    /// Consume the list, yielding the pieces.
    pub fn into_pieces(self) -> Vec<Payload> {
        self.pieces
    }

    /// The pieces paired with their byte offset within the list, in
    /// order. Scatter consumers (page-cache placement, log records)
    /// use this to land each piece at its own destination offset
    /// without flattening the list first.
    pub fn pieces_with_offsets(&self) -> impl Iterator<Item = (u64, &Payload)> {
        let mut off = 0u64;
        self.pieces.iter().map(move |p| {
            let at = off;
            off += p.len();
            (at, p)
        })
    }

    /// Append every piece of `other` (zero-copy).
    pub fn append(&mut self, other: SgList) {
        for p in other.pieces {
            self.push(p);
        }
    }

    /// Sub-range `[start, start+len)` as a new list, slicing pieces at
    /// the boundaries (zero-copy). Panics if out of bounds.
    pub fn slice(&self, start: u64, len: u64) -> SgList {
        assert!(
            start + len <= self.total,
            "slice {start}+{len} out of bounds for sg list of {}",
            self.total
        );
        let mut out = SgList::new();
        let mut pos = 0u64;
        let end = start + len;
        for p in &self.pieces {
            let p_end = pos + p.len();
            if p_end > start && pos < end {
                let lo = start.max(pos) - pos;
                let hi = end.min(p_end) - pos;
                out.push(p.slice(lo, hi - lo));
            }
            pos = p_end;
            if pos >= end {
                break;
            }
        }
        out
    }

    /// Flatten into a single [`Payload`]. Single-piece lists and
    /// contiguous synthetic runs stay zero-copy (see [`Payload::concat`]).
    pub fn to_payload(&self) -> Payload {
        Payload::concat(&self.pieces)
    }

    /// Produce the actual bytes (see [`Payload::materialize`]).
    pub fn materialize(&self) -> Bytes {
        self.to_payload().materialize()
    }
}

impl From<Payload> for SgList {
    fn from(p: Payload) -> SgList {
        let mut sg = SgList::new();
        sg.push(p);
        sg
    }
}

impl From<Vec<Payload>> for SgList {
    fn from(pieces: Vec<Payload>) -> SgList {
        SgList::from_pieces(pieces)
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload::Real(b)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::Real(Bytes::from(v))
    }
}

impl From<&'static [u8]> for Payload {
    fn from(v: &'static [u8]) -> Payload {
        Payload::Real(Bytes::from_static(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_roundtrip() {
        let p = Payload::real(vec![1, 2, 3, 4]);
        assert_eq!(p.len(), 4);
        assert_eq!(&p.materialize()[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_of_real() {
        let p = Payload::real(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(&p.slice(2, 3).materialize()[..], &[2, 3, 4]);
    }

    #[test]
    fn synthetic_slice_matches_materialized_slice() {
        let p = Payload::synthetic(77, 100);
        let full = p.materialize();
        let s = p.slice(10, 20);
        assert_eq!(&s.materialize()[..], &full[10..30]);
    }

    #[test]
    fn concat_merges_contiguous_synthetic() {
        let p = Payload::synthetic(5, 100);
        let a = p.slice(0, 40);
        let b = p.slice(40, 60);
        let joined = Payload::concat(&[a, b]);
        assert!(matches!(joined, Payload::Synthetic { len: 100, .. }));
        assert!(joined.content_eq(&p));
    }

    #[test]
    fn concat_mixed_materializes_correctly() {
        let a = Payload::real(vec![1, 2]);
        let b = Payload::synthetic(9, 3);
        let joined = Payload::concat(&[a.clone(), b.clone()]);
        let mut expect = vec![1, 2];
        expect.extend_from_slice(&b.materialize());
        assert_eq!(&joined.materialize()[..], &expect[..]);
    }

    #[test]
    fn concat_non_contiguous_synthetic_still_correct() {
        let p = Payload::synthetic(5, 100);
        let a = p.slice(0, 10);
        let b = p.slice(50, 10);
        let joined = Payload::concat(&[a, b]);
        let full = p.materialize();
        let mut expect = full[0..10].to_vec();
        expect.extend_from_slice(&full[50..60]);
        assert_eq!(&joined.materialize()[..], &expect[..]);
    }

    #[test]
    fn content_eq_synthetic_fast_path() {
        let a = Payload::synthetic(1, 1_000_000_000); // would be 1GB if materialized
        let b = Payload::synthetic(1, 1_000_000_000);
        assert!(a.content_eq(&b));
        let c = Payload::synthetic(2, 1_000_000_000);
        assert!(!a.content_eq(&c));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Payload::real(vec![0; 4]).slice(2, 3);
    }

    #[test]
    fn empty_behaviour() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::concat(&[]).len(), 0);
    }

    #[test]
    fn zeros_materialize_to_zero_bytes() {
        let z = Payload::zeros(16);
        assert_eq!(&z.materialize()[..], &[0u8; 16]);
        assert_eq!(&z.slice(4, 4).materialize()[..], &[0u8; 4]);
    }

    #[test]
    fn zero_streams_compare_equal_regardless_of_offset() {
        let a = Payload::zeros(100).slice(10, 20);
        let b = Payload::zeros(50).slice(0, 20);
        assert!(a.content_eq(&b));
    }

    #[test]
    fn sg_list_basics() {
        let mut sg = SgList::new();
        assert!(sg.is_empty());
        sg.push(Payload::real(vec![1, 2, 3]));
        sg.push(Payload::empty()); // dropped
        sg.push(Payload::synthetic(9, 5));
        assert_eq!(sg.len(), 8);
        assert_eq!(sg.piece_count(), 2);
        let mut expect = vec![1, 2, 3];
        expect.extend_from_slice(&Payload::synthetic(9, 5).materialize());
        assert_eq!(&sg.materialize()[..], &expect[..]);
    }

    #[test]
    fn sg_list_single_piece_to_payload_is_zero_copy() {
        let sg = SgList::from(Payload::synthetic(4, 64));
        // A single synthetic piece must survive flattening unchanged
        // (the stream transport relies on this to stay alloc-free).
        assert!(matches!(
            sg.to_payload(),
            Payload::Synthetic { len: 64, .. }
        ));
    }

    #[test]
    fn sg_list_pieces_with_offsets_and_append() {
        let mut sg =
            SgList::from_pieces(vec![Payload::real(vec![0, 1, 2]), Payload::synthetic(3, 5)]);
        let offs: Vec<u64> = sg.pieces_with_offsets().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0, 3]);
        sg.append(SgList::from(Payload::zeros(4)));
        assert_eq!(sg.len(), 12);
        assert_eq!(sg.piece_count(), 3);
        let offs: Vec<u64> = sg.pieces_with_offsets().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0, 3, 8]);
    }

    #[test]
    fn sg_list_slice_crosses_piece_boundaries() {
        let sg = SgList::from_pieces(vec![
            Payload::real(vec![0, 1, 2, 3]),
            Payload::real(vec![4, 5, 6, 7]),
            Payload::real(vec![8, 9]),
        ]);
        let s = sg.slice(2, 7);
        assert_eq!(s.len(), 7);
        assert_eq!(s.piece_count(), 3);
        assert_eq!(&s.materialize()[..], &[2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sg_list_slice_out_of_bounds_panics() {
        SgList::from(Payload::zeros(4)).slice(2, 3);
    }
}
