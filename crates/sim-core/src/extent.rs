//! Sparse extent map backing simulated host memory.
//!
//! Buffers in the simulation can be gigabytes of virtual data; an
//! [`ExtentMap`] stores only the [`Payload`] extents actually written,
//! reading unwritten ranges as zeros. Writes split/overwrite existing
//! extents; reads stitch extents (and zero gaps) back together.

use std::collections::BTreeMap;

use crate::payload::Payload;

/// Non-overlapping, offset-keyed payload extents over a fixed length.
#[derive(Clone, Debug, Default)]
pub struct ExtentMap {
    /// start offset -> payload (extents never overlap, never empty).
    extents: BTreeMap<u64, Payload>,
}

impl ExtentMap {
    /// Empty (all-zero) map.
    pub fn new() -> Self {
        ExtentMap::default()
    }

    /// Write `data` at `offset`, replacing anything it overlaps.
    pub fn write(&mut self, offset: u64, data: Payload) {
        let len = data.len();
        if len == 0 {
            return;
        }
        let end = offset + len;

        // Find every extent overlapping [offset, end).
        let overlapping: Vec<u64> = self
            .extents
            .range(..end)
            .rev()
            .take_while(|(start, p)| **start + p.len() > offset)
            .map(|(start, _)| *start)
            .collect();

        for start in overlapping {
            let existing = self.extents.remove(&start).expect("extent vanished");
            let e_end = start + existing.len();
            // Keep the prefix before our write.
            if start < offset {
                self.extents
                    .insert(start, existing.slice(0, offset - start));
            }
            // Keep the suffix after our write.
            if e_end > end {
                self.extents
                    .insert(end, existing.slice(end - start, e_end - end));
            }
        }
        self.extents.insert(offset, data);
    }

    /// Read `len` bytes at `offset`; unwritten gaps read as zeros.
    pub fn read(&self, offset: u64, len: u64) -> Payload {
        Payload::concat(&self.read_sg(offset, len))
    }

    /// Read `len` bytes at `offset` as a scatter list of extent slices
    /// (unwritten gaps appear as zero payloads). Each piece is a
    /// reference-counted slice of the stored extent — nothing is
    /// flattened or copied, which is what lets the server READ path
    /// gather straight out of the page cache.
    pub fn read_sg(&self, offset: u64, len: u64) -> Vec<Payload> {
        if len == 0 {
            return Vec::new();
        }
        let end = offset + len;
        let mut pieces: Vec<Payload> = Vec::new();
        let mut cursor = offset;

        // The extent that may start before `offset` but reach into it.
        let head = self
            .extents
            .range(..=offset)
            .next_back()
            .filter(|(start, p)| **start + p.len() > offset)
            .map(|(start, p)| (*start, p.clone()));
        if let Some((start, p)) = head {
            let take = (start + p.len()).min(end) - offset;
            pieces.push(p.slice(offset - start, take));
            cursor = offset + take;
        }

        // Walk extents whose start lies in [cursor, end), zero-filling
        // gaps between them.
        loop {
            let next = self
                .extents
                .range(cursor..end)
                .next()
                .map(|(s, p)| (*s, p.clone()));
            let Some((start, p)) = next else { break };
            if start > cursor {
                pieces.push(Payload::zeros(start - cursor));
            }
            let take = (start + p.len()).min(end) - start;
            pieces.push(p.slice(0, take));
            cursor = start + take;
        }
        if cursor < end {
            pieces.push(Payload::zeros(end - cursor));
        }
        pieces
    }

    /// Number of stored extents (diagnostic).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Bytes of stored (written) data.
    pub fn stored_bytes(&self) -> u64 {
        self.extents.values().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(v: &[u8]) -> Payload {
        Payload::real(v.to_vec())
    }

    #[test]
    fn read_unwritten_is_zero() {
        let m = ExtentMap::new();
        assert_eq!(&m.read(10, 4).materialize()[..], &[0, 0, 0, 0]);
    }

    #[test]
    fn write_then_read_back() {
        let mut m = ExtentMap::new();
        m.write(100, bytes(&[1, 2, 3, 4]));
        assert_eq!(&m.read(100, 4).materialize()[..], &[1, 2, 3, 4]);
        // Straddling read picks up zeros around it.
        assert_eq!(&m.read(98, 8).materialize()[..], &[0, 0, 1, 2, 3, 4, 0, 0]);
    }

    #[test]
    fn overwrite_middle_splits() {
        let mut m = ExtentMap::new();
        m.write(0, bytes(&[1; 10]));
        m.write(3, bytes(&[2; 4]));
        assert_eq!(
            &m.read(0, 10).materialize()[..],
            &[1, 1, 1, 2, 2, 2, 2, 1, 1, 1]
        );
        assert_eq!(m.extent_count(), 3);
    }

    #[test]
    fn overwrite_spanning_multiple_extents() {
        let mut m = ExtentMap::new();
        m.write(0, bytes(&[1; 4]));
        m.write(6, bytes(&[2; 4]));
        m.write(2, bytes(&[3; 6])); // covers tail of first, gap, head of second
        assert_eq!(
            &m.read(0, 10).materialize()[..],
            &[1, 1, 3, 3, 3, 3, 3, 3, 2, 2]
        );
    }

    #[test]
    fn exact_overwrite_replaces() {
        let mut m = ExtentMap::new();
        m.write(5, bytes(&[1; 8]));
        m.write(5, bytes(&[9; 8]));
        assert_eq!(m.extent_count(), 1);
        assert_eq!(&m.read(5, 8).materialize()[..], &[9; 8]);
    }

    #[test]
    fn adjacent_writes_do_not_interfere() {
        let mut m = ExtentMap::new();
        m.write(0, bytes(&[1; 4]));
        m.write(4, bytes(&[2; 4]));
        assert_eq!(&m.read(0, 8).materialize()[..], &[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn synthetic_writes_stay_compact() {
        let mut m = ExtentMap::new();
        m.write(0, Payload::synthetic(7, 1 << 30)); // 1 GiB, no allocation
        assert_eq!(m.stored_bytes(), 1 << 30);
        let s = m.read(12345, 64);
        assert!(s.content_eq(&Payload::synthetic(7, 1 << 30).slice(12345, 64)));
    }

    #[test]
    fn read_across_gap_between_synthetics() {
        let mut m = ExtentMap::new();
        m.write(0, Payload::synthetic(1, 8));
        m.write(16, Payload::synthetic(2, 8));
        let r = m.read(0, 24).materialize();
        let a = Payload::synthetic(1, 8).materialize();
        let b = Payload::synthetic(2, 8).materialize();
        assert_eq!(&r[0..8], &a[..]);
        assert_eq!(&r[8..16], &[0; 8]);
        assert_eq!(&r[16..24], &b[..]);
    }

    #[test]
    fn zero_len_ops_are_noops() {
        let mut m = ExtentMap::new();
        m.write(5, Payload::empty());
        assert_eq!(m.extent_count(), 0);
        assert!(m.read(5, 0).is_empty());
        assert!(m.read_sg(5, 0).is_empty());
    }

    #[test]
    fn read_sg_pieces_match_flat_read() {
        let mut m = ExtentMap::new();
        m.write(0, bytes(&[1; 8]));
        m.write(16, Payload::synthetic(3, 8));
        let pieces = m.read_sg(4, 24);
        assert!(pieces.len() >= 3, "head, gap, tail = {}", pieces.len());
        let total: u64 = pieces.iter().map(|p| p.len()).sum();
        assert_eq!(total, 24);
        assert!(Payload::concat(&pieces).content_eq(&m.read(4, 24)));
    }
}
