//! # net-stack — the TCP-style baseline transport
//!
//! The paper compares NFS/RDMA against regular NFS over TCP on two
//! physical networks: **IPoIB** (TCP over the InfiniBand link) and
//! **Gigabit Ethernet**. This crate models that stack: a reliable byte
//! stream whose *CPU* costs — per-byte copies and checksums, per-segment
//! protocol processing, interrupts — ride on the host CPU resource,
//! while segments ride the same cut-through fabric model as RDMA
//! traffic.
//!
//! The defining difference from the verbs path: every byte crosses each
//! host's CPU (copy + checksum), so TCP throughput is CPU-bound long
//! before the IB wire saturates (the ≈360 MB/s IPoIB ceiling of
//! Figure 10), while GigE is wire-bound at ≈118 MB/s.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod stream;
pub mod tcp;

pub use stream::TcpStream;
pub use tcp::{TcpConfig, TcpNet};
