//! The TCP network object: host attachment, connection setup, and the
//! per-segment cost model.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use ib_verbs::fabric::Fabric;
use ib_verbs::types::NodeId;
use sim_core::sync::{channel, Receiver, Sender};
use sim_core::{Cpu, Payload, Sim, SimDuration};

use crate::stream::{RxBuf, StreamId, TcpStream};

/// Cost/behaviour parameters of the TCP stack on one network type.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Link payload bandwidth, bytes/second.
    pub link_bandwidth: u64,
    /// One-way propagation latency.
    pub link_latency: SimDuration,
    /// Maximum segment payload, bytes.
    pub mtu: u64,
    /// Per-byte CPU cost on the transmit path (copy from user,
    /// checksum), nanoseconds.
    pub tx_ns_per_byte: f64,
    /// Per-byte CPU cost on the receive path (checksum, copy to user),
    /// nanoseconds.
    pub rx_ns_per_byte: f64,
    /// Fixed CPU cost per segment on each side (header processing,
    /// ACK generation, amortized interrupts), nanoseconds.
    pub per_segment_ns: u64,
    /// Protocol header bytes per segment on the wire (IP+TCP).
    pub wire_header_bytes: u64,
    /// Send window: bytes in flight before the sender stalls.
    pub window_bytes: u64,
}

impl TcpConfig {
    /// TCP over the InfiniBand SDR link (IPoIB). Wire is fast; the CPU
    /// per-byte path is the ceiling (~360 MB/s on the paper's Xeons).
    pub fn ipoib() -> Self {
        TcpConfig {
            link_bandwidth: 900_000_000,
            link_latency: SimDuration::from_micros(12),
            mtu: 65520 / 4, // IPoIB-UD effective segmentation
            tx_ns_per_byte: 2.6,
            rx_ns_per_byte: 2.9,
            per_segment_ns: 9_000,
            wire_header_bytes: 60,
            window_bytes: 1 << 20,
        }
    }

    /// TCP over Gigabit Ethernet: the 125 MB/s wire is the ceiling.
    pub fn gige() -> Self {
        TcpConfig {
            link_bandwidth: 118_000_000,
            link_latency: SimDuration::from_micros(30),
            mtu: 1448,
            tx_ns_per_byte: 2.6,
            rx_ns_per_byte: 2.9,
            per_segment_ns: 4_000,
            wire_header_bytes: 66,
            window_bytes: 512 * 1024,
        }
    }
}

/// A wire segment (or control message) between TCP hosts.
pub(crate) enum Segment {
    Data {
        stream: StreamId,
        data: Payload,
    },
    /// Connection request carrying the initiator-side stream state.
    Syn {
        stream: StreamId,
        from: NodeId,
        port: u16,
        /// Receive buffer at the *initiator* (the acceptor writes into
        /// it when sending back).
        initiator_rx: Rc<RxBuf>,
        /// Completion channel delivering the acceptor's rx buffer.
        accept_tx: sim_core::sync::OneshotSender<Rc<RxBuf>>,
    },
}

pub(crate) struct NodeState {
    pub(crate) cpu: Cpu,
    /// Transmit-path protocol processing: single NIC queue, as on
    /// 2007-era hardware (no multiqueue/RSS) — one core's worth of
    /// per-byte work caps TCP throughput regardless of core count.
    pub(crate) tx_softirq: sim_core::Resource,
    /// Receive-path protocol processing (softirq context), likewise
    /// serialized.
    pub(crate) rx_softirq: sim_core::Resource,
    pub(crate) listeners: RefCell<HashMap<u16, Sender<PendingConn>>>,
}

/// A connection waiting in a listener's accept queue.
pub(crate) struct PendingConn {
    pub(crate) stream: StreamId,
    pub(crate) peer: NodeId,
    pub(crate) initiator_rx: Rc<RxBuf>,
    pub(crate) accept_tx: sim_core::sync::OneshotSender<Rc<RxBuf>>,
}

pub(crate) struct TcpNetInner {
    pub(crate) sim: Sim,
    pub(crate) cfg: TcpConfig,
    pub(crate) fabric: Fabric<Segment>,
    pub(crate) nodes: RefCell<HashMap<NodeId, Rc<NodeState>>>,
    /// Stream-id -> receive buffer at that stream's *receiving* side.
    /// Keyed by (stream, direction-endpoint node).
    pub(crate) rx_bufs: RefCell<HashMap<(StreamId, NodeId), Rc<RxBuf>>>,
    next_stream: Cell<u64>,
}

/// A TCP/IP network over one physical medium.
#[derive(Clone)]
pub struct TcpNet {
    pub(crate) inner: Rc<TcpNetInner>,
}

impl TcpNet {
    /// Create a network with the given stack parameters.
    pub fn new(sim: &Sim, cfg: TcpConfig) -> TcpNet {
        TcpNet {
            inner: Rc::new(TcpNetInner {
                sim: sim.clone(),
                cfg,
                fabric: Fabric::new(sim),
                nodes: RefCell::new(HashMap::new()),
                rx_bufs: RefCell::new(HashMap::new()),
                next_stream: Cell::new(1),
            }),
        }
    }

    /// Attach a host; its TCP processing is charged to `cpu`.
    pub fn attach(&self, node: NodeId, cpu: Cpu) {
        let inbox = self.inner.fabric.attach(
            node,
            self.inner.cfg.link_bandwidth,
            self.inner.cfg.link_latency,
        );
        let state = Rc::new(NodeState {
            cpu,
            tx_softirq: sim_core::Resource::new(
                &self.inner.sim,
                format!("node{}.tcp-tx", node.0),
                1,
            ),
            rx_softirq: sim_core::Resource::new(
                &self.inner.sim,
                format!("node{}.tcp-rx", node.0),
                1,
            ),
            listeners: RefCell::new(HashMap::new()),
        });
        self.inner.nodes.borrow_mut().insert(node, state.clone());
        let net = self.clone();
        self.inner
            .sim
            .spawn(async move { dispatch_loop(net, node, state, inbox).await });
    }

    /// Start listening on `(node, port)`; returns the accept queue.
    pub fn listen(&self, node: NodeId, port: u16) -> Listener {
        let (tx, rx) = channel();
        let nodes = self.inner.nodes.borrow();
        let state = nodes.get(&node).expect("listen on unattached node");
        let prev = state.listeners.borrow_mut().insert(port, tx);
        assert!(prev.is_none(), "port {port} already bound on {node:?}");
        Listener {
            net: self.clone(),
            node,
            accept_rx: rx,
        }
    }

    /// Open a connection from `from` to `(to, port)`. Completes after
    /// one handshake round trip.
    pub async fn connect(&self, from: NodeId, to: NodeId, port: u16) -> TcpStream {
        let id = StreamId(self.inner.next_stream.get());
        self.inner.next_stream.set(id.0 + 1);
        let my_rx = Rc::new(RxBuf::default());
        self.inner
            .rx_bufs
            .borrow_mut()
            .insert((id, from), my_rx.clone());
        let (accept_tx, accept_rx) = sim_core::sync::oneshot();
        self.inner
            .fabric
            // TCP retransmits below the socket API; faults on a TCP
            // fabric never surface to the stream layer.
            .send_reliable(
                from,
                to,
                self.inner.cfg.wire_header_bytes,
                Segment::Syn {
                    stream: id,
                    from,
                    port,
                    initiator_rx: my_rx.clone(),
                    accept_tx,
                },
            )
            .await;
        let peer_rx = accept_rx.await.expect("connection refused");
        self.inner.rx_bufs.borrow_mut().insert((id, to), peer_rx);
        // SYN-ACK propagation back.
        self.inner.sim.sleep(self.inner.cfg.link_latency).await;
        TcpStream::new(self.clone(), id, from, to)
    }

    pub(crate) fn node(&self, id: NodeId) -> Rc<NodeState> {
        self.inner
            .nodes
            .borrow()
            .get(&id)
            .expect("unattached node")
            .clone()
    }

    pub(crate) fn rx_buf(&self, stream: StreamId, endpoint: NodeId) -> Rc<RxBuf> {
        self.inner
            .rx_bufs
            .borrow()
            .get(&(stream, endpoint))
            .expect("unknown stream endpoint")
            .clone()
    }

    /// The stack configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.inner.cfg
    }

    /// Receive-side wire utilization of a node (diagnostics).
    pub fn rx_utilization(&self, node: NodeId) -> f64 {
        self.inner.fabric.rx_utilization(node)
    }

    /// Bytes received on the wire by a node.
    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.inner.fabric.rx_bytes(node)
    }

    /// Reset wire accounting.
    pub fn reset_accounting(&self) {
        self.inner.fabric.reset_accounting();
    }
}

/// Accept side of [`TcpNet::listen`].
pub struct Listener {
    net: TcpNet,
    node: NodeId,
    accept_rx: Receiver<PendingConn>,
}

impl Listener {
    /// Accept the next incoming connection.
    pub async fn accept(&mut self) -> TcpStream {
        let pending = self.accept_rx.recv().await.expect("listener closed");
        let my_rx = Rc::new(RxBuf::default());
        self.net
            .inner
            .rx_bufs
            .borrow_mut()
            .insert((pending.stream, self.node), my_rx.clone());
        // Peer's buffer for the reverse direction was carried in the SYN.
        self.net
            .inner
            .rx_bufs
            .borrow_mut()
            .insert((pending.stream, pending.peer), pending.initiator_rx);
        pending.accept_tx.send(my_rx);
        TcpStream::new(self.net.clone(), pending.stream, self.node, pending.peer)
    }
}

async fn dispatch_loop(
    net: TcpNet,
    node: NodeId,
    state: Rc<NodeState>,
    mut inbox: Receiver<Segment>,
) {
    while let Ok(seg) = inbox.recv().await {
        match seg {
            Segment::Data { stream, data } => {
                // Receive-path CPU: checksum + copy to the socket
                // buffer, serialized in the (single-queue) softirq.
                let cfg = net.inner.cfg;
                let ns =
                    (data.len() as f64 * cfg.rx_ns_per_byte).round() as u64 + cfg.per_segment_ns;
                let d = SimDuration::from_nanos(ns);
                state.rx_softirq.use_for(d).await;
                state.cpu.charge(d);
                let rx = net.rx_buf(stream, node);
                rx.push(data);
            }
            Segment::Syn {
                stream,
                from,
                port,
                initiator_rx,
                accept_tx,
            } => {
                let listener = state.listeners.borrow().get(&port).cloned();
                match listener {
                    Some(q) => {
                        let _ = q.send(PendingConn {
                            stream,
                            peer: from,
                            initiator_rx,
                            accept_tx,
                        });
                    }
                    None => drop(accept_tx), // connection refused
                }
            }
        }
    }
}
