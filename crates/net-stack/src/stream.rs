//! Reliable byte streams over the TCP model.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::task::Waker;

use ib_verbs::types::NodeId;
use sim_core::sync::Semaphore;
use sim_core::{Payload, SimDuration};

use crate::tcp::{Segment, TcpNet};

/// Identifier of one TCP connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamId(pub u64);

/// Socket receive buffer: ordered payload pieces plus reader wakeups.
#[derive(Default)]
pub struct RxBuf {
    pieces: RefCell<VecDeque<Payload>>,
    avail: Cell<u64>,
    waker: RefCell<Option<Waker>>,
}

impl RxBuf {
    pub(crate) fn push(&self, data: Payload) {
        self.avail.set(self.avail.get() + data.len());
        self.pieces.borrow_mut().push_back(data);
        if let Some(w) = self.waker.borrow_mut().take() {
            w.wake();
        }
    }

    fn pop_exact(&self, n: u64) -> Payload {
        debug_assert!(self.avail.get() >= n);
        let mut out = Vec::new();
        let mut need = n;
        let mut pieces = self.pieces.borrow_mut();
        while need > 0 {
            let front = pieces.pop_front().expect("rxbuf accounting broken");
            if front.len() <= need {
                need -= front.len();
                out.push(front);
            } else {
                out.push(front.slice(0, need));
                let rest = front.slice(need, front.len() - need);
                pieces.push_front(rest);
                need = 0;
            }
        }
        self.avail.set(self.avail.get() - n);
        Payload::concat(&out)
    }

    /// Bytes currently buffered.
    pub fn available(&self) -> u64 {
        self.avail.get()
    }
}

/// One endpoint of an established TCP connection.
pub struct TcpStream {
    net: TcpNet,
    id: StreamId,
    local: NodeId,
    remote: NodeId,
    rx: Rc<RxBuf>,
    /// Send window in segments; permits return when a segment is
    /// delivered and its ACK has propagated back.
    window: Semaphore,
    tx_bytes: Cell<u64>,
    rx_bytes: Cell<u64>,
}

impl TcpStream {
    pub(crate) fn new(net: TcpNet, id: StreamId, local: NodeId, remote: NodeId) -> TcpStream {
        let rx = net.rx_buf(id, local);
        let cfg = *net.config();
        let window_segments = (cfg.window_bytes / cfg.mtu).max(1) as usize;
        TcpStream {
            net,
            id,
            local,
            remote,
            rx,
            window: Semaphore::new(window_segments),
            tx_bytes: Cell::new(0),
            rx_bytes: Cell::new(0),
        }
    }

    /// The connection id.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Local endpoint.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Remote endpoint.
    pub fn remote(&self) -> NodeId {
        self.remote
    }

    /// Send `data` down the stream. Segments the payload at the MTU,
    /// charges transmit-side CPU (copy + checksum + per-segment work),
    /// and respects the send window. Returns when the last byte has
    /// been handed to the NIC queue (socket-write semantics), not when
    /// it is delivered.
    pub async fn send(&self, data: Payload) {
        let cfg = *self.net.config();
        let node = self.net.node(self.local);
        let total = data.len();
        self.tx_bytes.set(self.tx_bytes.get() + total);
        let mut off = 0u64;
        while off < total {
            let chunk = cfg.mtu.min(total - off);
            let piece = data.slice(off, chunk);
            off += chunk;
            // Transmit-path CPU: copy from user + checksum + headers,
            // serialized in the single-queue transmit path.
            let ns = (chunk as f64 * cfg.tx_ns_per_byte).round() as u64 + cfg.per_segment_ns;
            let d = SimDuration::from_nanos(ns);
            node.tx_softirq.use_for(d).await;
            node.cpu.charge(d);
            let permit = self.window.acquire().await;
            // Hand off to the NIC asynchronously; FIFO spawn order keeps
            // segments in order on the wire.
            let net = self.net.clone();
            let (from, to) = (self.local, self.remote);
            let stream = self.id;
            let latency = cfg.link_latency;
            self.net.inner.sim.spawn(async move {
                net.inner
                    .fabric
                    .send_reliable(
                        from,
                        to,
                        cfg.wire_header_bytes + chunk,
                        Segment::Data {
                            stream,
                            data: piece,
                        },
                    )
                    .await;
                // ACK propagates back before the window slot frees.
                net.inner.sim.sleep(latency).await;
                drop(permit);
            });
        }
    }

    /// Receive exactly `n` bytes, waiting as needed.
    pub async fn recv_exact(&self, n: u64) -> Payload {
        if n == 0 {
            return Payload::empty();
        }
        let rx = self.rx.clone();
        std::future::poll_fn(move |cx| {
            if rx.avail.get() >= n {
                std::task::Poll::Ready(())
            } else {
                *rx.waker.borrow_mut() = Some(cx.waker().clone());
                std::task::Poll::Pending
            }
        })
        .await;
        self.rx_bytes.set(self.rx_bytes.get() + n);
        self.rx.pop_exact(n)
    }

    /// Bytes written into this stream so far.
    pub fn bytes_sent(&self) -> u64 {
        self.tx_bytes.get()
    }

    /// Bytes read from this stream so far.
    pub fn bytes_received(&self) -> u64 {
        self.rx_bytes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{TcpConfig, TcpNet};
    use sim_core::{Cpu, CpuCosts, Sim, SimTime, Simulation};

    fn setup(sim: &Sim, cfg: TcpConfig) -> (TcpNet, Cpu, Cpu) {
        let net = TcpNet::new(sim, cfg);
        let c0 = Cpu::new(sim, "cpu0", 2, CpuCosts::default());
        let c1 = Cpu::new(sim, "cpu1", 2, CpuCosts::default());
        net.attach(NodeId(0), c0.clone());
        net.attach(NodeId(1), c1.clone());
        (net, c0, c1)
    }

    #[test]
    fn connect_send_recv_roundtrip() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let (net, _c0, _c1) = setup(&h, TcpConfig::gige());
        let mut listener = net.listen(NodeId(1), 2049);
        let net2 = net.clone();
        let h2 = h.clone();
        sim.spawn(async move {
            let server = listener.accept().await;
            let req = server.recv_exact(4).await;
            assert_eq!(&req.materialize()[..], b"ping");
            server.send(Payload::real(b"pong!".to_vec())).await;
            let _ = h2;
        });
        let got = sim.block_on(async move {
            let client = net2.connect(NodeId(0), NodeId(1), 2049).await;
            client.send(Payload::real(b"ping".to_vec())).await;
            client.recv_exact(5).await
        });
        assert_eq!(&got.materialize()[..], b"pong!");
    }

    #[test]
    fn large_transfer_is_wire_bound_on_gige() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let (net, _c0, _c1) = setup(&h, TcpConfig::gige());
        let mut listener = net.listen(NodeId(1), 1);
        let total: u64 = 50_000_000; // 50 MB
        sim.spawn(async move {
            let server = listener.accept().await;
            let _ = server.recv_exact(total).await;
            server.send(Payload::real(vec![1])).await; // done marker
        });
        let net2 = net.clone();
        sim.block_on(async move {
            let client = net2.connect(NodeId(0), NodeId(1), 1).await;
            client.send(Payload::synthetic(1, total)).await;
            let _ = client.recv_exact(1).await;
        });
        let secs = sim.now().as_secs_f64();
        let mbps = total as f64 / 1e6 / secs;
        // GigE ceiling ≈ 110-118 MB/s.
        assert!(
            (95.0..=119.0).contains(&mbps),
            "GigE throughput {mbps:.1} MB/s out of range"
        );
    }

    #[test]
    fn ipoib_is_cpu_bound_below_wire_rate() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        // Single-core hosts: the per-byte CPU path is the ceiling.
        let net = TcpNet::new(&h, TcpConfig::ipoib());
        let c0 = Cpu::new(&h, "cpu0", 1, CpuCosts::default());
        let c1 = Cpu::new(&h, "cpu1", 1, CpuCosts::default());
        net.attach(NodeId(0), c0.clone());
        net.attach(NodeId(1), c1.clone());
        let mut listener = net.listen(NodeId(1), 1);
        let total: u64 = 100_000_000;
        sim.spawn(async move {
            let server = listener.accept().await;
            let _ = server.recv_exact(total).await;
            server.send(Payload::real(vec![1])).await;
        });
        let net2 = net.clone();
        sim.block_on(async move {
            let client = net2.connect(NodeId(0), NodeId(1), 1).await;
            client.send(Payload::synthetic(1, total)).await;
            let _ = client.recv_exact(1).await;
        });
        let secs = sim.now().as_secs_f64();
        let mbps = total as f64 / 1e6 / secs;
        assert!(
            (250.0..=450.0).contains(&mbps),
            "IPoIB throughput {mbps:.1} MB/s out of expected CPU-bound range"
        );
        // Receiver CPU should be essentially saturated.
        assert!(c1.utilization() > 0.8, "rx cpu util {}", c1.utilization());
    }

    #[test]
    fn extra_cores_do_not_lift_tcp_throughput() {
        // 2007-era NICs had one rx/tx queue: protocol processing is
        // serialized in softirq context, so doubling the cores must
        // not change TCP throughput (the IPoIB ceiling of Figure 10).
        let run = |cores: usize| {
            let mut sim = Simulation::new(1);
            let h = sim.handle();
            let net = TcpNet::new(&h, TcpConfig::ipoib());
            net.attach(NodeId(0), Cpu::new(&h, "c0", cores, CpuCosts::default()));
            net.attach(NodeId(1), Cpu::new(&h, "c1", cores, CpuCosts::default()));
            let mut listener = net.listen(NodeId(1), 1);
            let total: u64 = 50_000_000;
            sim.spawn(async move {
                let server = listener.accept().await;
                let _ = server.recv_exact(total).await;
                server.send(Payload::real(vec![1])).await;
            });
            let net2 = net.clone();
            sim.block_on(async move {
                let client = net2.connect(NodeId(0), NodeId(1), 1).await;
                client.send(Payload::synthetic(1, total)).await;
                let _ = client.recv_exact(1).await;
            });
            total as f64 / 1e6 / sim.now().as_secs_f64()
        };
        let two = run(2);
        let eight = run(8);
        assert!(
            (two - eight).abs() / two < 0.02,
            "TCP throughput changed with core count: {two:.0} vs {eight:.0} MB/s"
        );
    }

    #[test]
    fn interleaved_sends_preserve_order() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let (net, _c0, _c1) = setup(&h, TcpConfig::gige());
        let mut listener = net.listen(NodeId(1), 1);
        sim.spawn(async move {
            let server = listener.accept().await;
            let data = server.recv_exact(10_000).await.materialize();
            for (i, b) in data.iter().enumerate() {
                assert_eq!(*b as usize, (i / 1000) % 256, "byte {i} out of order");
            }
            server.send(Payload::real(vec![1])).await;
        });
        let net2 = net.clone();
        sim.block_on(async move {
            let client = net2.connect(NodeId(0), NodeId(1), 1).await;
            for i in 0..10u8 {
                client.send(Payload::real(vec![i; 1000])).await;
            }
            let _ = client.recv_exact(1).await;
        });
    }

    #[test]
    fn two_streams_share_the_wire() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let (net, _c0, _c1) = setup(&h, TcpConfig::gige());
        let mut listener = net.listen(NodeId(1), 1);
        let total: u64 = 10_000_000;
        let h2 = h.clone();
        sim.spawn(async move {
            for _ in 0..2 {
                let server = listener.accept().await;
                // Keep each stream alive and draining in its own task.
                h2.spawn(async move {
                    let _ = server.recv_exact(total).await;
                });
            }
        });
        let net2 = net.clone();
        sim.block_on(async move {
            let a = net2.connect(NodeId(0), NodeId(1), 1).await;
            let b = net2.connect(NodeId(0), NodeId(1), 1).await;
            a.send(Payload::synthetic(1, total)).await;
            b.send(Payload::synthetic(2, total)).await;
        });
        sim.run();
        // Both streams' bytes crossed the single server wire, which
        // serialized them: at GigE rates that is at least 2*total/118MBs.
        assert!(net.rx_bytes(NodeId(1)) >= 2 * total);
        assert!(sim.now() >= SimTime::from_nanos(2 * total * 1_000_000_000 / 120_000_000));
    }
}
