//! Property-based tests: every encodable value round-trips, and no
//! byte soup can make the decoder panic.

use bytes::Bytes;
use proptest::prelude::*;
use xdr::{Decoder, Encoder};

proptest! {
    #[test]
    fn u32_roundtrip(v in any::<u32>()) {
        let mut e = Encoder::new();
        e.put_u32(v);
        let mut d = Decoder::new(e.as_slice());
        prop_assert_eq!(d.get_u32().unwrap(), v);
        d.expect_end().unwrap();
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        let mut e = Encoder::new();
        e.put_i64(v);
        let mut d = Decoder::new(e.as_slice());
        prop_assert_eq!(d.get_i64().unwrap(), v);
    }

    #[test]
    fn opaque_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut e = Encoder::new();
        e.put_opaque(&data);
        prop_assert_eq!(e.len() % 4, 0);
        let mut d = Decoder::new(e.as_slice());
        prop_assert_eq!(d.get_opaque().unwrap(), &data[..]);
        d.expect_end().unwrap();
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,64}") {
        let mut e = Encoder::new();
        e.put_string(&s);
        let mut d = Decoder::new(e.as_slice());
        prop_assert_eq!(d.get_string().unwrap(), s);
    }

    #[test]
    fn mixed_sequence_roundtrip(
        a in any::<u32>(),
        b in proptest::collection::vec(any::<u8>(), 0..64),
        c in proptest::option::of(any::<u64>()),
        d_arr in proptest::collection::vec(any::<i32>(), 0..16),
    ) {
        let mut e = Encoder::new();
        e.put_u32(a);
        e.put_opaque(&b);
        e.put_option(c.as_ref(), |e, v| { e.put_u64(*v); });
        e.put_array(&d_arr, |e, v| { e.put_i32(*v); });
        let mut dec = Decoder::new(e.as_slice());
        prop_assert_eq!(dec.get_u32().unwrap(), a);
        prop_assert_eq!(dec.get_opaque().unwrap(), &b[..]);
        prop_assert_eq!(dec.get_option(|d| d.get_u64()).unwrap(), c);
        prop_assert_eq!(dec.get_array(|d| d.get_i32()).unwrap(), d_arr);
        dec.expect_end().unwrap();
    }

    /// Fuzz: arbitrary bytes never panic the decoder, whatever we ask of it.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let buf = Bytes::from(bytes);
        let mut d = Decoder::new(&buf);
        let _ = d.get_u32();
        let _ = d.get_opaque();
        let _ = d.get_string();
        let _ = d.get_array(|d| d.get_u64());
        let _ = d.get_option(|d| d.get_bool());
        let _ = d.get_opaque_fixed(13);
    }

    /// Truncating any valid encoding at any point yields an error, not
    /// garbage or a panic.
    #[test]
    fn truncation_always_detected(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        frac in 0.0f64..1.0,
    ) {
        let mut e = Encoder::new();
        e.put_opaque(&data);
        let full = e.finish();
        let cut = ((full.len() - 1) as f64 * frac) as usize;
        let cut_buf = full.slice(0..cut);
        let mut d = Decoder::new(&cut_buf);
        // Either the length prefix or the body is cut short.
        prop_assert!(d.get_opaque().is_err());
    }
}
