//! # xdr — External Data Representation (RFC 4506)
//!
//! The wire encoding under ONC RPC and NFSv3. Minimal but faithful:
//! big-endian 4-byte alignment, fixed/variable opaque, strings, arrays,
//! optional data. Both RPC headers and NFS arguments/results in this
//! workspace round-trip through these codecs, so protocol tests
//! exercise real marshalling, not struct copies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use bytes::Bytes;
use core::fmt;

/// Decoding errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XdrError {
    /// Input ended before the value was complete.
    Truncated,
    /// A length prefix exceeded the decoder's sanity limit.
    LengthOutOfRange(u32),
    /// A discriminant had no defined arm.
    BadDiscriminant(u32),
    /// Padding bytes were non-zero.
    BadPadding,
    /// A string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated => write!(f, "truncated XDR input"),
            XdrError::LengthOutOfRange(n) => write!(f, "XDR length {n} out of range"),
            XdrError::BadDiscriminant(d) => write!(f, "unknown XDR discriminant {d}"),
            XdrError::BadPadding => write!(f, "non-zero XDR padding"),
            XdrError::BadUtf8 => write!(f, "invalid UTF-8 in XDR string"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Result alias for decoding.
pub type Result<T> = std::result::Result<T, XdrError>;

/// Streaming XDR encoder.
///
/// ```
/// use xdr::{Encoder, Decoder};
/// let mut enc = Encoder::new();
/// enc.put_u32(7).put_string("hello").put_opaque(&[1, 2, 3]);
/// let mut dec = Decoder::new(enc.as_slice());
/// assert_eq!(dec.get_u32().unwrap(), 7);
/// assert_eq!(dec.get_string().unwrap(), "hello");
/// assert_eq!(&dec.get_opaque().unwrap()[..], &[1, 2, 3]);
/// dec.expect_end().unwrap();
/// ```
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Encoder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(n),
        }
    }

    /// Clear the encoder for reuse, keeping its capacity. A scratch
    /// encoder held per connection makes steady-state encoding
    /// allocation-free.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// The bytes encoded so far, borrowed. Pair with [`Encoder::reset`]
    /// to reuse one buffer across messages; use [`Encoder::finish`]
    /// only when an owned `Bytes` is genuinely needed.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Encode an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encode a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) -> &mut Self {
        self.put_u32(v as u32)
    }

    /// Encode an unsigned 64-bit integer (hyper).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encode a signed 64-bit integer.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.put_u64(v as u64)
    }

    /// Encode a boolean.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u32(v as u32)
    }

    /// Append raw bytes with no length prefix or padding. Not an XDR
    /// primitive: used to assemble wire messages (header + body) in one
    /// reusable buffer.
    pub fn put_raw(&mut self, data: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(data);
        self
    }

    /// Encode fixed-length opaque data (padded to 4 bytes).
    pub fn put_opaque_fixed(&mut self, data: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(data);
        self.pad(data.len());
        self
    }

    /// Encode variable-length opaque data (length prefix + padding).
    pub fn put_opaque(&mut self, data: &[u8]) -> &mut Self {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data)
    }

    /// Encode a string.
    pub fn put_string(&mut self, s: &str) -> &mut Self {
        self.put_opaque(s.as_bytes())
    }

    /// Encode an optional value (`*T` in XDR language).
    pub fn put_option<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) -> &mut Self {
        match v {
            Some(inner) => {
                self.put_bool(true);
                f(self, inner);
            }
            None => {
                self.put_bool(false);
            }
        }
        self
    }

    /// Encode a counted array.
    pub fn put_array<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
        self
    }

    fn pad(&mut self, len: usize) {
        for _ in 0..(4 - len % 4) % 4 {
            self.buf.push(0);
        }
    }
}

/// Streaming XDR decoder borrowing its input.
///
/// Borrowing (rather than owning a `Bytes`) keeps decoding
/// allocation- and refcount-free: `get_opaque` returns a subslice of
/// the input. A caller that must keep decoded payload bytes alive
/// beyond the input borrow re-anchors the subslice with
/// [`Bytes::slice_ref`], which is still zero-copy.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Sanity cap for length prefixes (default 64 MiB).
    max_len: u32,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`. Accepts `&Bytes` via deref coercion.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder {
            buf,
            pos: 0,
            max_len: 64 << 20,
        }
    }

    /// Override the length sanity cap.
    pub fn with_max_len(mut self, max: u32) -> Self {
        self.max_len = max;
        self
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(XdrError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decode an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decode a signed 32-bit integer.
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Decode an unsigned 64-bit integer.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Decode a signed 64-bit integer.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Decode a boolean (strict: only 0/1 accepted).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(XdrError::BadDiscriminant(d)),
        }
    }

    /// Decode fixed-length opaque data, borrowed from the input.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<&'a [u8]> {
        let out = self.take(len)?;
        let pad = (4 - len % 4) % 4;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(XdrError::BadPadding);
        }
        Ok(out)
    }

    /// Decode variable-length opaque data, borrowed from the input.
    pub fn get_opaque(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()?;
        if len > self.max_len {
            return Err(XdrError::LengthOutOfRange(len));
        }
        self.get_opaque_fixed(len as usize)
    }

    /// Decode a string.
    pub fn get_string(&mut self) -> Result<String> {
        let raw = self.get_opaque()?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(XdrError::BadUtf8),
        }
    }

    /// Decode an optional value.
    pub fn get_option<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<Option<T>> {
        if self.get_bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Decode a counted array.
    pub fn get_array<T>(&mut self, mut f: impl FnMut(&mut Self) -> Result<T>) -> Result<Vec<T>> {
        let n = self.get_u32()?;
        if n > self.max_len {
            return Err(XdrError::LengthOutOfRange(n));
        }
        // Each element is at least 4 bytes; cheap pre-check against
        // absurd counts on short input.
        if (n as usize).saturating_mul(4) > self.remaining() {
            return Err(XdrError::Truncated);
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Assert the input is fully consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(XdrError::LengthOutOfRange(self.remaining() as u32))
        }
    }
}

/// Types that marshal to/from XDR.
pub trait XdrCodec: Sized {
    /// Append this value to the encoder.
    fn encode(&self, enc: &mut Encoder);
    /// Parse a value from the decoder.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;

    /// Encode into a reusable scratch encoder: resets it (keeping
    /// capacity), then appends. Steady state performs zero heap
    /// allocations once the scratch has grown to the message size.
    fn encode_into(&self, enc: &mut Encoder) {
        enc.reset();
        self.encode(enc);
    }

    /// Convenience: encode to fresh bytes. Allocates; hot paths should
    /// prefer [`XdrCodec::encode_into`] with a per-connection scratch.
    fn to_bytes(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Convenience: decode from borrowed bytes, requiring full
    /// consumption. Accepts `&Bytes` via deref coercion.
    fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip() {
        let mut e = Encoder::new();
        e.put_u32(0xdead_beef)
            .put_i32(-7)
            .put_u64(0x0123_4567_89ab_cdef)
            .put_i64(-99)
            .put_bool(true)
            .put_bool(false);
        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_i32().unwrap(), -7);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(d.get_i64().unwrap(), -99);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        d.expect_end().unwrap();
    }

    #[test]
    fn opaque_padding_is_4_byte_aligned() {
        for len in 0..9usize {
            let data: Vec<u8> = (0..len as u8).collect();
            let mut e = Encoder::new();
            e.put_opaque(&data);
            assert_eq!(e.len() % 4, 0, "len {len} not aligned");
            let mut d = Decoder::new(e.as_slice());
            assert_eq!(d.get_opaque().unwrap(), &data[..]);
            d.expect_end().unwrap();
        }
    }

    #[test]
    fn nonzero_padding_rejected() {
        let mut e = Encoder::new();
        e.put_opaque(b"abc"); // 1 pad byte
        let mut raw = e.finish().to_vec();
        *raw.last_mut().unwrap() = 0xFF;
        let mut d = Decoder::new(&raw);
        assert_eq!(d.get_opaque().unwrap_err(), XdrError::BadPadding);
    }

    #[test]
    fn strings_roundtrip_and_reject_bad_utf8() {
        let mut e = Encoder::new();
        e.put_string("héllo wörld");
        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.get_string().unwrap(), "héllo wörld");

        let mut e = Encoder::new();
        e.put_opaque(&[0xff, 0xfe]);
        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.get_string().unwrap_err(), XdrError::BadUtf8);
    }

    #[test]
    fn options_roundtrip() {
        let mut e = Encoder::new();
        e.put_option(Some(&42u32), |e, v| {
            e.put_u32(*v);
        });
        e.put_option(None::<&u32>, |e, v| {
            e.put_u32(*v);
        });
        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.get_option(|d| d.get_u32()).unwrap(), Some(42));
        assert_eq!(d.get_option(|d| d.get_u32()).unwrap(), None);
    }

    #[test]
    fn arrays_roundtrip() {
        let items = vec![1u32, 2, 3, 4, 5];
        let mut e = Encoder::new();
        e.put_array(&items, |e, v| {
            e.put_u32(*v);
        });
        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.get_array(|d| d.get_u32()).unwrap(), items);
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let mut e = Encoder::new();
        e.put_u64(7);
        let full = e.finish();
        for cut in 0..full.len() {
            let mut d = Decoder::new(&full[..cut]);
            assert_eq!(d.get_u64().unwrap_err(), XdrError::Truncated);
        }
    }

    #[test]
    fn absurd_array_count_rejected_quickly() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX); // count
        let mut d = Decoder::new(e.as_slice());
        let r: Result<Vec<u32>> = d.get_array(|d| d.get_u32());
        assert!(r.is_err());
    }

    #[test]
    fn oversize_opaque_rejected() {
        let mut e = Encoder::new();
        e.put_u32(100 << 20);
        let mut d = Decoder::new(e.as_slice());
        assert!(matches!(
            d.get_opaque().unwrap_err(),
            XdrError::LengthOutOfRange(_)
        ));
    }

    #[test]
    fn bool_discriminant_strictness() {
        let mut e = Encoder::new();
        e.put_u32(2);
        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.get_bool().unwrap_err(), XdrError::BadDiscriminant(2));
    }

    #[test]
    fn position_tracking() {
        let mut e = Encoder::new();
        e.put_u32(1).put_u64(2);
        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.position(), 0);
        d.get_u32().unwrap();
        assert_eq!(d.position(), 4);
        assert_eq!(d.remaining(), 8);
    }
}
