//! Criterion microbenchmarks: real (host) cost of the hot codepaths —
//! header marshalling, extent-map I/O, executor throughput, and a full
//! end-to-end NFS READ through the simulated stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::future::Future;
use std::hint::black_box;

use ib_verbs::Rkey;
use rpcrdma::{Design, MsgType, RdmaHeader, ReadChunk, Segment, StrategyKind};
use sim_core::{yield_now, ExtentMap, Payload, SimDuration, Simulation};
use workloads::{build_rdma, solaris_sdr, Backend};
use xdr::XdrCodec;

fn bench_header_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpcrdma_header");
    let hdr = RdmaHeader {
        xid: 7,
        credits: 32,
        msg_type: MsgType::Msg,
        msgp: None,
        rfp_ad: None,
        read_chunks: vec![ReadChunk {
            position: 128,
            segment: Segment {
                rkey: Rkey(0xabcd),
                len: 131072,
                addr: 0x10_0000,
            },
        }],
        write_chunks: vec![vec![Segment {
            rkey: Rkey(0x1234),
            len: 131072,
            addr: 0x20_0000,
        }]],
        reply_chunk: None,
    };
    g.bench_function("encode", |b| {
        b.iter(|| black_box(hdr.to_bytes()));
    });
    // The hot-path variant: reuse one scratch encoder, zero allocations
    // per message in steady state.
    g.bench_function("encode_into", |b| {
        let mut enc = xdr::Encoder::with_capacity(256);
        b.iter(|| {
            hdr.encode_into(&mut enc);
            black_box(enc.len())
        });
    });
    let bytes = hdr.to_bytes();
    g.bench_function("decode", |b| {
        b.iter(|| black_box(RdmaHeader::from_bytes(&bytes).unwrap()));
    });
    g.finish();
}

fn bench_xdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("xdr");
    let data = vec![0xA5u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("opaque_roundtrip_4k", |b| {
        let mut enc = xdr::Encoder::with_capacity(4200);
        b.iter(|| {
            enc.reset();
            enc.put_opaque(&data);
            let mut dec = xdr::Decoder::new(enc.as_slice());
            black_box(dec.get_opaque().unwrap().len())
        });
    });
    g.finish();
}

fn bench_extent_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("extent_map");
    g.bench_function("sequential_write_read_128k_extents", |b| {
        b.iter(|| {
            let mut m = ExtentMap::new();
            for i in 0..64u64 {
                m.write(i * 131072, Payload::synthetic(i, 131072));
            }
            black_box(m.read(0, 64 * 131072))
        });
    });
    g.bench_function("overwrite_fragmentation", |b| {
        b.iter(|| {
            let mut m = ExtentMap::new();
            m.write(0, Payload::synthetic(1, 1 << 20));
            for i in 0..128u64 {
                m.write(i * 8192 + 123, Payload::synthetic(i, 4096));
            }
            black_box(m.extent_count())
        });
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_executor");
    g.bench_function("timer_churn_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let h = sim.handle();
            for i in 0..10_000u64 {
                let h2 = h.clone();
                h.spawn(async move {
                    h2.sleep(SimDuration::from_nanos(i % 997)).await;
                });
            }
            sim.run();
            black_box(sim.polls())
        });
    });
    // Pure ready-queue path: no timers, just wake/poll cycles.
    g.bench_function("poll_throughput_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            for _ in 0..10_000u64 {
                sim.spawn(async {
                    for _ in 0..8 {
                        yield_now().await;
                    }
                });
            }
            sim.run();
            black_box(sim.polls())
        });
    });
    // Timer register + cancel: each task arms a far-future sleep, polls
    // it once (registering the timer) and drops it (lazy cancellation).
    g.bench_function("timer_register_cancel_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let h = sim.handle();
            for _ in 0..10_000u64 {
                let h2 = h.clone();
                sim.spawn(async move {
                    let mut s = h2.sleep(SimDuration::from_millis(10));
                    std::future::poll_fn(|cx| {
                        let _ = std::pin::Pin::new(&mut s).poll(cx);
                        std::task::Poll::Ready(())
                    })
                    .await;
                    drop(s);
                });
            }
            sim.run();
            black_box(sim.polls())
        });
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for (label, strategy) in [
        ("read_128k_dynamic", StrategyKind::Dynamic),
        ("read_128k_cache", StrategyKind::Cache),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &strategy, |b, &s| {
            b.iter(|| {
                // Full stack: simulated fabric, RPC/RDMA, NFS, tmpfs —
                // 64 sequential 128 KiB READs.
                let mut sim = Simulation::new(5);
                let h = sim.handle();
                let profile = solaris_sdr();
                sim.block_on(async move {
                    let bed = build_rdma(&h, &profile, Design::ReadWrite, s, Backend::Tmpfs, 1);
                    let root = bed.server.root_handle();
                    let f = bed.clients[0].nfs.create(root, "bench").await.unwrap();
                    bed.fs
                        .write(
                            fs_backend::FileId(f.handle().0),
                            0,
                            Payload::synthetic(1, 8 << 20),
                        )
                        .await
                        .unwrap();
                    let buf = bed.clients[0].mem.alloc(131072);
                    for i in 0..64u64 {
                        let _ = bed.clients[0]
                            .nfs
                            .read(f.handle(), i * 131072, 131072, Some((&buf, 0)))
                            .await
                            .unwrap();
                    }
                });
                black_box(())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_header_codec,
    bench_xdr,
    bench_extent_map,
    bench_executor,
    bench_end_to_end
);
criterion_main!(benches);
