//! Runs every table/figure harness in sequence (same binaries, shared
//! process). Results land in `results/`.

fn main() {
    let bins = [
        "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation",
    ];
    for bin in bins {
        println!("==== {bin} ====");
        let status = std::process::Command::new(
            std::env::current_exe().unwrap().parent().unwrap().join(bin),
        )
        .status()
        .expect("spawn figure binary");
        assert!(status.success(), "{bin} failed");
    }
}
