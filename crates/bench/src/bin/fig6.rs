//! Figure 6: IOzone Write bandwidth on OpenSolaris — Read-Read vs
//! Read-Write — plus the client CPU utilization lines.

use bench::{emit, file_size_scaled, sweep_iozone, IozonePoint, THREADS};
use rpcrdma::{Design, StrategyKind};
use workloads::{mb, pct, solaris_sdr, IoMode, Table};

fn main() {
    let profile = solaris_sdr();
    let mut points = Vec::new();
    for (dlabel, design) in [("RR", Design::ReadRead), ("RW", Design::ReadWrite)] {
        for (rlabel, record) in [("128K", 128 * 1024u64), ("1M", 1 << 20)] {
            for threads in THREADS {
                points.push(IozonePoint {
                    label: format!("{dlabel}-{rlabel}"),
                    profile,
                    design,
                    strategy: StrategyKind::Dynamic,
                    mode: IoMode::Write,
                    threads,
                    record,
                    file_size: file_size_scaled(),
                });
            }
        }
    }
    // CPU lines come from the read path (as in the paper's Figure 6,
    // which plots the READ-procedure client CPU for both designs).
    let mut cpu_points = Vec::new();
    for (dlabel, design) in [("RR", Design::ReadRead), ("RW", Design::ReadWrite)] {
        for threads in THREADS {
            cpu_points.push(IozonePoint {
                label: format!("cpu-{dlabel}"),
                profile,
                design,
                strategy: StrategyKind::Dynamic,
                mode: IoMode::Read,
                threads,
                record: 128 * 1024,
                file_size: file_size_scaled(),
            });
        }
    }
    let results = sweep_iozone(points);
    let cpu_results = sweep_iozone(cpu_points);

    let mut t = Table::new(
        "Figure 6 — IOzone Write Bandwidth on Solaris (MB/s) + client CPU",
        &[
            "threads", "RR-128K", "RW-128K", "RR-1M", "RW-1M", "RR CPU", "RW CPU",
        ],
    );
    for threads in THREADS {
        let col = |series: &str| -> String {
            results
                .iter()
                .find(|(p, _)| p.label == series && p.threads == threads)
                .map(|(_, r)| mb(r.bandwidth_mb))
                .unwrap_or_default()
        };
        let cpu = |series: &str| -> String {
            cpu_results
                .iter()
                .find(|(p, _)| p.label == series && p.threads == threads)
                .map(|(_, r)| pct(r.client_cpu))
                .unwrap_or_default()
        };
        t.row(&[
            threads.to_string(),
            col("RR-128K"),
            col("RW-128K"),
            col("RR-1M"),
            col("RW-1M"),
            cpu("cpu-RR"),
            cpu("cpu-RW"),
        ]);
    }
    emit("fig6", &t);
    println!(
        "Paper headline: write bandwidths similar for RR/RW (RDMA Read path \
         is shared); client CPU ~4%→24% for RR vs flat 2–5% for RW."
    );
}
