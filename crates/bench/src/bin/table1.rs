//! Regenerates Table 1: communication-primitive properties.

use ib_verbs::ops::table1_rows;
use workloads::Table;

fn main() {
    let mut t = Table::new(
        "Table 1 — Communication Primitive Properties",
        &["Property", "Channel Primitives", "Memory Primitives"],
    );
    for (prop, channel, memory) in table1_rows() {
        let tick = |b: bool| if b { "X".to_string() } else { "".to_string() };
        t.row(&[prop.to_string(), tick(channel), tick(memory)]);
    }
    bench::emit("table1", &t);
    println!(
        "(Channel primitives pre-post receive buffers; memory primitives \
         expose a buffer via a steering tag exchanged in a rendezvous.)"
    );
}
