//! Adversary sweep: honest goodput and server hygiene under the full
//! hostile-client catalog.
//!
//! Full mode runs every (design x registration strategy) combination
//! twice — once attacker-free for the baseline, once with two
//! attackers cycling the catalog (garbage headers, hostile chunk
//! lists, credit overcommit, XID replays, withheld `RDMA_DONE`, stale
//! and guessed steering-tag probes, and the all-physical phys-scan) —
//! and reports the goodput ratio alongside what the defenses did.
//! Read-Read advertises server steering tags so its exposure TTL and
//! teardown revocations carry the security story; Read-Write never
//! puts a tag on the wire.
//!
//! Run with `--smoke` for the fixed-seed gate used by
//! `scripts/check.sh`: one combination per design, the <= 20% honest
//! goodput bound, zero corruption, and full violation/revocation
//! accounting between server stats, the metrics registry, and the TPT
//! ledger.

use rpcrdma::{Design, StrategyKind};
use workloads::{linux_sdr, run_adversary, AdversaryParams, AdversaryResult, Table};

const SEED: u64 = 0xAD5A11;

fn params(design: Design, strategy: StrategyKind) -> AdversaryParams {
    AdversaryParams {
        design,
        strategy,
        honest_clients: 2,
        attackers: 2,
        records_per_client: 24,
        attack_rounds: 6,
        ..AdversaryParams::default()
    }
}

/// Fail a gate: dump the node's flight-recorder ring (the always-on
/// last-N event log) to `results/` for postmortem, then exit nonzero.
fn fail(tag: &str, msg: &str, flight: &[sim_core::FlightRecord]) -> ! {
    if !flight.is_empty() {
        let name = format!(
            "flight_adversary_{}.txt",
            tag.to_ascii_lowercase().replace(['/', ' '], "_")
        );
        bench::emit_results_file(&name, &sim_core::format_flight(flight));
    }
    eprintln!("FAIL {tag}: {msg}");
    std::process::exit(1);
}

/// Invariants every point of the sweep must hold.
fn check(tag: &str, base: &AdversaryResult, atk: &AdversaryResult) {
    if atk.corrupt_records != 0 {
        fail(
            tag,
            &format!("{} corrupt honest records", atk.corrupt_records),
            &atk.flight,
        );
    }
    if base.violations != 0 || base.quarantines != 0 {
        fail(
            tag,
            "honest-only baseline charged with violations",
            &base.flight,
        );
    }
    if atk.violations == 0 || atk.quarantines == 0 {
        fail(
            tag,
            "attack catalog never tripped the defenses",
            &atk.flight,
        );
    }
    let metric_total = atk
        .metrics_snapshot
        .iter()
        .find(|(k, _)| k == "server.violations.total")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    if metric_total != atk.violations {
        fail(
            tag,
            &format!(
                "server stats count {} violations but the metrics registry says {}",
                atk.violations, metric_total
            ),
            &atk.flight,
        );
    }
    if atk.tpt_revocations != atk.exposures_revoked {
        fail(
            tag,
            &format!(
                "{} exposures revoked but the TPT ledger records {}",
                atk.exposures_revoked, atk.tpt_revocations
            ),
            &atk.flight,
        );
    }
    let ratio = atk.goodput_mb_s / base.goodput_mb_s;
    if ratio < 0.8 {
        fail(
            tag,
            &format!(
                "honest goodput degraded {:.1}% under attack (bound 20%)",
                (1.0 - ratio) * 100.0
            ),
            &atk.flight,
        );
    }
}

fn smoke() {
    let profile = linux_sdr();
    for design in [Design::ReadWrite, Design::ReadRead] {
        let mut p = params(design, StrategyKind::Dynamic);
        p.records_per_client = 16;
        p.attack_rounds = 4;
        let base = run_adversary(SEED, &profile, AdversaryParams { attackers: 0, ..p });
        let atk = run_adversary(SEED, &profile, p);
        check(&format!("{design:?}"), &base, &atk);
        if design == Design::ReadRead && atk.exposures_revoked == 0 {
            fail(
                "ReadRead",
                "TTL reaper never revoked a withheld exposure",
                &atk.flight,
            );
        }
        if atk.stale_reads_ok != 0 {
            fail(
                &format!("{design:?}"),
                &format!(
                    "{} stale steering-tag probes read server memory",
                    atk.stale_reads_ok
                ),
                &atk.flight,
            );
        }
        println!(
            "adversary smoke {design:?}: ok (goodput {:.0}%, {} violations, {} quarantines, \
             {} revocations, {} stale probes refused)",
            100.0 * atk.goodput_mb_s / base.goodput_mb_s,
            atk.violations,
            atk.quarantines,
            atk.exposures_revoked,
            atk.stale_reads_refused,
        );
    }
    // RFP leg: the reply-slot ring is one more piece of server memory a
    // session leaves behind. Attackers capture their ring advertisement
    // and fetch through it after their connection dies; teardown must
    // have revoked the ring (every probe NAKs, none lands), and the
    // same hygiene invariants hold with the fast path on.
    for design in [Design::ReadWrite, Design::ReadRead] {
        let mut p = params(design, StrategyKind::Dynamic);
        p.records_per_client = 16;
        p.attack_rounds = 4;
        p.rfp = true;
        let base = run_adversary(SEED, &profile, AdversaryParams { attackers: 0, ..p });
        let atk = run_adversary(SEED, &profile, p);
        check(&format!("{design:?}+rfp"), &base, &atk);
        if atk.rfp_stale_ok != 0 {
            fail(
                &format!("{design:?}+rfp"),
                &format!(
                    "{} dead-session reply-slot probes read server memory",
                    atk.rfp_stale_ok
                ),
                &atk.flight,
            );
        }
        if atk.rfp_stale_refused == 0 {
            fail(
                &format!("{design:?}+rfp"),
                "no reply-slot probe was ever fired and refused",
                &atk.flight,
            );
        }
        println!(
            "adversary smoke {design:?}+rfp: ok (goodput {:.0}%, {} ring probes refused, 0 landed)",
            100.0 * atk.goodput_mb_s / base.goodput_mb_s,
            atk.rfp_stale_refused,
        );
    }
    println!("adversary smoke: bounded damage, zero corruption, accounting consistent");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let profile = linux_sdr();
    let mut t = Table::new(
        "Adversary sweep — 2 honest clients + 2 attackers, full catalog, 200 us exposure TTL",
        &[
            "design",
            "strategy",
            "base MB/s",
            "atk MB/s",
            "ratio",
            "violations",
            "quarantines",
            "revoked",
            "stale ok",
            "stale nak",
            "scan ok",
            "rfp ok",
            "rfp nak",
            "pending",
            "corrupt",
        ],
    );
    // Every (design x strategy) point, plus an RFP row per design: the
    // Dynamic strategy with the reply-slot fast path on, where the
    // attackers also probe their dead session's ring advertisement.
    let mut points: Vec<(Design, StrategyKind, bool)> = Vec::new();
    for design in [Design::ReadWrite, Design::ReadRead] {
        for strategy in [
            StrategyKind::Dynamic,
            StrategyKind::Fmr,
            StrategyKind::Cache,
            StrategyKind::AllPhysical,
        ] {
            points.push((design, strategy, false));
        }
        points.push((design, StrategyKind::Dynamic, true));
    }
    for (design, strategy, rfp) in points {
        let mut p = params(design, strategy);
        p.rfp = rfp;
        let tag = if rfp {
            format!("{design:?}/{strategy:?}+rfp")
        } else {
            format!("{design:?}/{strategy:?}")
        };
        let base = run_adversary(SEED, &profile, AdversaryParams { attackers: 0, ..p });
        let atk = run_adversary(SEED, &profile, p);
        check(&tag, &base, &atk);
        if rfp && (atk.rfp_stale_ok != 0 || atk.rfp_stale_refused == 0) {
            fail(
                &tag,
                &format!(
                    "reply-slot probes: {} landed, {} refused (want 0 landed, > 0 refused)",
                    atk.rfp_stale_ok, atk.rfp_stale_refused
                ),
                &atk.flight,
            );
        }
        t.row(&[
            format!("{design:?}"),
            if rfp {
                format!("{strategy:?}+RFP")
            } else {
                format!("{strategy:?}")
            },
            format!("{:.1}", base.goodput_mb_s),
            format!("{:.1}", atk.goodput_mb_s),
            format!("{:.2}", atk.goodput_mb_s / base.goodput_mb_s),
            atk.violations.to_string(),
            atk.quarantines.to_string(),
            atk.exposures_revoked.to_string(),
            atk.stale_reads_ok.to_string(),
            atk.stale_reads_refused.to_string(),
            atk.scan_reads_ok.to_string(),
            atk.rfp_stale_ok.to_string(),
            atk.rfp_stale_refused.to_string(),
            atk.exposures_pending.to_string(),
            atk.corrupt_records.to_string(),
        ]);
    }
    bench::emit("adversary_sweep", &t);
    println!(
        "All points held the 20% goodput bound with zero corruption; \
         only all-physical Read-Read leaks via its global rkey (scan ok > 0), \
         and every dead-session reply-slot probe was refused."
    );
}
