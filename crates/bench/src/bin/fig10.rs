//! Figure 10: multi-client aggregate IOzone read bandwidth against the
//! RAID-backed server — RDMA vs IPoIB vs GigE, server RAM 4 GB (a) and
//! 8 GB (b), 1 GB file per client, 1 MB records.
//!
//! GigE points use a scaled file size (256 MB/client): at 1448-byte
//! segments a full-size GigE run is millions of simulation events for
//! an identical (wire-saturated) result. Noted in EXPERIMENTS.md.

use sim_core::sweep::parallel_sweep;
use workloads::{linux_ddr_raid, mb, pct, run_multiclient, McTransport, MultiClientParams, Table};

fn main() {
    let profile = linux_ddr_raid();
    let quick = std::env::var("QUICK").is_ok();
    let full_file: u64 = if quick { 256 << 20 } else { 1 << 30 };
    let gige_file: u64 = 256 << 20;
    let ram_a: u64 = if quick { 1 << 30 } else { 4 << 30 };
    let ram_b: u64 = if quick { 2 << 30 } else { 8 << 30 };
    let client_counts = [1usize, 2, 3, 4, 5, 6, 7, 8];

    for (ram, name, paper) in [
        (
            ram_a,
            "fig10a",
            "Paper (4 GB): RDMA peaks 883 MB/s at 3 clients then falls to \
             disk rates; IPoIB peaks ~326; GigE saturates ~107 immediately.",
        ),
        (
            ram_b,
            "fig10b",
            "Paper (8 GB): RDMA holds >900 MB/s through 7 clients; IPoIB \
             saturates ~360 MB/s.",
        ),
    ] {
        let mut points = Vec::new();
        for transport in [McTransport::Rdma, McTransport::IpoIb, McTransport::GigE] {
            for clients in client_counts {
                points.push((transport, clients));
            }
        }
        let results = parallel_sweep(points.clone(), |(transport, clients)| {
            let file_size = if transport == McTransport::GigE {
                gige_file
            } else {
                full_file
            };
            run_multiclient(
                0xCAFE,
                &profile,
                MultiClientParams {
                    transport,
                    clients,
                    server_ram: ram,
                    file_size,
                    record: 1 << 20,
                },
            )
        });
        let results: Vec<_> = points.into_iter().zip(results).collect();

        let mut t = Table::new(
            format!(
                "Figure 10 — multi-client IOzone read bandwidth, server RAM {} GB",
                ram >> 30
            ),
            &[
                "clients",
                "RDMA MB/s",
                "IPoIB MB/s",
                "GigE MB/s",
                "RDMA cache-hit",
            ],
        );
        for clients in client_counts {
            let get = |tr: McTransport| {
                results
                    .iter()
                    .find(|((t2, c), _)| *t2 == tr && *c == clients)
                    .map(|(_, r)| r)
            };
            let rdma = get(McTransport::Rdma).unwrap();
            let ipoib = get(McTransport::IpoIb).unwrap();
            let gige = get(McTransport::GigE).unwrap();
            t.row(&[
                clients.to_string(),
                mb(rdma.read_bandwidth_mb),
                mb(ipoib.read_bandwidth_mb),
                mb(gige.read_bandwidth_mb),
                pct(rdma.cache_hit_rate),
            ]);
        }
        bench::emit(name, &t);
        println!("{paper}\n");
    }
}
