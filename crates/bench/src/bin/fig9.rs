//! Figure 9: registration strategies on Linux — Register vs FMR vs
//! all-physical, IOzone read and write bandwidth plus client CPU.

use bench::{emit, file_size_scaled, sweep_iozone, IozonePoint, THREADS};
use rpcrdma::{Design, StrategyKind};
use workloads::{linux_sdr, mb, pct, IoMode, Table};

fn main() {
    let profile = linux_sdr();
    let strategies = [
        ("Register", StrategyKind::Dynamic),
        ("FMR", StrategyKind::Fmr),
        ("All-Physical", StrategyKind::AllPhysical),
    ];
    for (mode, name, paper) in [
        (
            IoMode::Read,
            "fig9a",
            "Paper: all-physical yields the best read throughput (~900 MB/s).",
        ),
        (
            IoMode::Write,
            "fig9b",
            "Paper: all-physical degrades writes vs FMR — no local \
             scatter/gather, so each write fans into multiple read chunks \
             and hits the RDMA Read limits.",
        ),
    ] {
        let mut points = Vec::new();
        for (label, strategy) in strategies {
            for threads in THREADS {
                points.push(IozonePoint {
                    label: label.to_string(),
                    profile,
                    design: Design::ReadWrite,
                    strategy,
                    mode,
                    threads,
                    record: 128 * 1024,
                    file_size: file_size_scaled(),
                });
            }
        }
        let results = sweep_iozone(points);
        let which = if mode == IoMode::Read {
            "Read"
        } else {
            "Write"
        };
        let mut t = Table::new(
            format!("Figure 9 ({which}) — registration strategies on Linux"),
            &[
                "threads",
                "Register MB/s",
                "FMR MB/s",
                "All-Phys MB/s",
                "Register CPU",
                "FMR CPU",
                "All-Phys CPU",
            ],
        );
        for threads in THREADS {
            let get = |series: &str| {
                results
                    .iter()
                    .find(|(p, _)| p.label == series && p.threads == threads)
                    .map(|(_, r)| (mb(r.bandwidth_mb), pct(r.client_cpu)))
                    .unwrap_or_default()
            };
            let (r_bw, r_cpu) = get("Register");
            let (f_bw, f_cpu) = get("FMR");
            let (a_bw, a_cpu) = get("All-Physical");
            t.row(&[threads.to_string(), r_bw, f_bw, a_bw, r_cpu, f_cpu, a_cpu]);
        }
        emit(name, &t);
        println!("{paper}\n");
    }
}
