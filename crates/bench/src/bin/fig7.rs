//! Figure 7: impact of registration strategies on OpenSolaris —
//! Register vs FMR vs buffer registration cache, IOzone read and
//! write bandwidth plus client CPU.

use bench::{emit, file_size_scaled, sweep_iozone, IozonePoint, THREADS};
use rpcrdma::{Design, StrategyKind};
use workloads::{mb, pct, solaris_sdr, IoMode, Table};

fn main() {
    let profile = solaris_sdr();
    let strategies = [
        ("Register", StrategyKind::Dynamic),
        ("FMR", StrategyKind::Fmr),
        ("Cache", StrategyKind::Cache),
    ];
    for (mode, name, paper) in [
        (
            IoMode::Read,
            "fig7a",
            "Paper: Register ~350, FMR ~400, Cache ~730 MB/s.",
        ),
        (
            IoMode::Write,
            "fig7b",
            "Paper: Cache reaches ~515 MB/s; FMR improvement modest (RDMA Read serialization).",
        ),
    ] {
        let mut points = Vec::new();
        for (label, strategy) in strategies {
            for threads in THREADS {
                points.push(IozonePoint {
                    label: label.to_string(),
                    profile,
                    design: Design::ReadWrite,
                    strategy,
                    mode,
                    threads,
                    record: 128 * 1024,
                    file_size: file_size_scaled(),
                });
            }
        }
        let results = sweep_iozone(points);
        let which = if mode == IoMode::Read {
            "Read"
        } else {
            "Write"
        };
        let mut t = Table::new(
            format!("Figure 7 ({which}) — registration strategies on Solaris"),
            &[
                "threads",
                "Register MB/s",
                "FMR MB/s",
                "Cache MB/s",
                "Register CPU",
                "FMR CPU",
                "Cache CPU",
            ],
        );
        for threads in THREADS {
            let get = |series: &str| {
                results
                    .iter()
                    .find(|(p, _)| p.label == series && p.threads == threads)
                    .map(|(_, r)| (mb(r.bandwidth_mb), pct(r.client_cpu)))
                    .unwrap_or_default()
            };
            let (r_bw, r_cpu) = get("Register");
            let (f_bw, f_cpu) = get("FMR");
            let (c_bw, c_cpu) = get("Cache");
            t.row(&[threads.to_string(), r_bw, f_bw, c_bw, r_cpu, f_cpu, c_cpu]);
        }
        emit(name, &t);
        println!("{paper}\n");
    }
}
