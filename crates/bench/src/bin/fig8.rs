//! Figure 8: FileBench OLTP throughput (ops/s, bars) and client CPU
//! per operation (lines) for each registration strategy, 50–200
//! readers, 128 KB mean I/O.

use rpcrdma::{Design, StrategyKind};
use sim_core::sweep::parallel_sweep;
use sim_core::{SimDuration, Simulation};
use workloads::{build_rdma, run_oltp, solaris_sdr, Backend, OltpParams, Table};

fn main() {
    let profile = solaris_sdr();
    let strategies = [
        ("Register", StrategyKind::Dynamic),
        ("FMR", StrategyKind::Fmr),
        ("Cache", StrategyKind::Cache),
    ];
    let readers = [50u32, 100, 150, 200];

    let mut points = Vec::new();
    for (label, strategy) in strategies {
        for r in readers {
            points.push((label.to_string(), strategy, r));
        }
    }
    let results = parallel_sweep(points.clone(), |(_, strategy, r)| {
        let mut sim = Simulation::new(0xB0B);
        let h = sim.handle();
        sim.block_on(async move {
            let bed = build_rdma(&h, &profile, Design::ReadWrite, strategy, Backend::Tmpfs, 1);
            run_oltp(
                &h,
                &bed,
                OltpParams {
                    readers: r,
                    writers: 10,
                    io_size: 128 * 1024,
                    db_size: 512 << 20,
                    duration: SimDuration::from_millis(400),
                    ..Default::default()
                },
            )
            .await
        })
    });
    let results: Vec<_> = points.into_iter().zip(results).collect();

    let mut t = Table::new(
        "Figure 8 — FileBench OLTP (ops/s and client CPU us/op)",
        &[
            "readers",
            "Register ops/s",
            "FMR ops/s",
            "Cache ops/s",
            "Register us/op",
            "FMR us/op",
            "Cache us/op",
        ],
    );
    for r in readers {
        let get = |series: &str| {
            results
                .iter()
                .find(|((l, _, rr), _)| l == series && *rr == r)
                .map(|(_, res)| {
                    (
                        format!("{:.0}", res.ops_per_sec),
                        format!("{:.0}", res.cpu_us_per_op),
                    )
                })
                .unwrap_or_default()
        };
        let (reg_t, reg_c) = get("Register");
        let (fmr_t, fmr_c) = get("FMR");
        let (cache_t, cache_c) = get("Cache");
        t.row(&[r.to_string(), reg_t, fmr_t, cache_t, reg_c, fmr_c, cache_c]);
    }
    bench::emit("fig8", &t);
    println!(
        "Paper headline: the registration cache improves throughput up to \
         ~50% over dynamic registration; FMR performs comparably to dynamic."
    );
}
