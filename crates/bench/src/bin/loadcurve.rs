//! Open-loop load sweep: the latency-throughput "hockey stick" and
//! what the overload controller does to it.
//!
//! A closed-loop probe first measures raw capacity with the same op
//! mix; the sweep then offers Poisson arrival rates from a fraction of
//! that capacity to 2x past it, once with the server's QoS stack
//! (per-tenant weighted fair queueing + bounded queue + sojourn-target
//! shedding) and once without. With shedding the served p99 stays
//! bounded past saturation and goodput plateaus at capacity; without
//! it the patient open queue collapses — p99 grows with the backlog
//! and never comes back. A second sweep pits one hog tenant offering
//! ~1.5x capacity against honest tenants and checks the honest p99
//! barely moves (hog isolation).
//!
//! Run with `--smoke` for the fixed-seed gate wired into
//! `scripts/check.sh`: three rates, both modes, the bounded-p99 and
//! goodput-plateau bounds, the 1-hog fairness bound, and a same-seed
//! byte-identical determinism check. Gate failures dump the server's
//! flight-recorder ring and the tail of the telemetry timeline to
//! `results/` for postmortem.

use sim_core::sweep::parallel_sweep;
use workloads::{
    linux_sdr, load_timeline_csv, run_openloop, Arrival, OpMix, OpenLoopParams, OpenLoopResult,
    Table,
};

const SEED: u64 = 0x10AD;

/// Served p99 the QoS stack must hold at 2x offered load, µs.
const P99_BOUND_US: u64 = 20_000;

/// Goodput at 2x must stay within this fraction of probed capacity.
const PLATEAU_FRACTION: f64 = 0.90;

/// Collapse evidence: unshedded p99 at 2x must exceed the shedded p99
/// by at least this factor.
const COLLAPSE_FACTOR: u64 = 3;

/// Honest p99 inflation allowed when the hog arrives, percent.
const FAIRNESS_INFLATION_PCT: f64 = 20.0;

fn base_params(duration_ms: u64) -> OpenLoopParams {
    OpenLoopParams {
        connections: 4,
        tenants: 2000,
        zipf_theta: 0.9,
        mix: OpMix::oltp(),
        duration: sim_core::SimDuration::from_millis(duration_ms),
        grace: sim_core::SimDuration::from_millis(duration_ms / 4 + 1),
        ..OpenLoopParams::default()
    }
}

/// Fail a gate: dump the flight ring and the timeline tail, then exit.
fn fail(tag: &str, msg: &str, r: &OpenLoopResult) -> ! {
    if !r.flight.is_empty() {
        bench::emit_results_file("flight_loadcurve.txt", &sim_core::format_flight(&r.flight));
    }
    if !r.timeline.is_empty() {
        bench::emit_results_file("loadcurve_timeline.csv", &load_timeline_csv(&r.timeline));
        let b = r.timeline.last().unwrap();
        eprintln!(
            "  last bucket: t={}us completions={} p99={}us in_flight={} \
             queue_depth={} server_sheds={} client_sheds={}",
            b.t_us,
            b.completions,
            b.p99_us,
            b.in_flight,
            b.queue_depth,
            b.server_sheds,
            b.client_sheds
        );
    }
    eprintln!("FAIL {tag}: {msg}");
    std::process::exit(1);
}

fn row(t: &mut Table, label: &str, frac: f64, r: &OpenLoopResult) {
    t.row(&[
        label.to_string(),
        format!("{frac:.2}"),
        r.offered.to_string(),
        format!("{:.0}", r.goodput_ops),
        r.p50_us.to_string(),
        r.p99_us.to_string(),
        r.server_sheds.to_string(),
        r.client_sheds.to_string(),
        r.overload_failures.to_string(),
        r.unfinished.to_string(),
        r.qos_peak_depth.to_string(),
    ]);
}

/// Serialize the result fields the determinism gate compares.
fn determinism_key(r: &OpenLoopResult) -> String {
    format!(
        "offered={} completed={} in_window={} client_sheds={} overload_failures={} \
         other_errors={} unfinished={} server_sheds={} deadline_sheds={} busy={} \
         peak={} clamps={} p50={} p99={} max={} honest_p99={} hog_p99={} metrics={:?}",
        r.offered,
        r.completed,
        r.completed_in_window,
        r.client_sheds,
        r.overload_failures,
        r.other_errors,
        r.unfinished,
        r.server_sheds,
        r.deadline_sheds,
        r.busy_replies,
        r.qos_peak_depth,
        r.credit_clamps,
        r.p50_us,
        r.p99_us,
        r.max_us,
        r.honest_p99_us,
        r.hog_p99_us,
        r.metrics_snapshot,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let profile = linux_sdr();
    let (duration_ms, fracs): (u64, &[f64]) = if smoke {
        (60, &[0.5, 1.0, 2.0])
    } else {
        (150, &[0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0])
    };

    // --- Capacity probe: closed loop, overload control off. ----------
    println!("loadcurve: probing capacity (closed loop)...");
    let cap_r = run_openloop(
        SEED,
        &profile,
        OpenLoopParams {
            arrival: Arrival::ClosedLoop { workers: 8 },
            qos: false,
            waiting_room: 0,
            ..base_params(duration_ms)
        },
    );
    let capacity = cap_r.goodput_ops;
    println!(
        "  capacity ~{capacity:.0} ops/s (p99 {} us, {} ops)",
        cap_r.p99_us, cap_r.completed_in_window
    );
    if capacity <= 0.0 {
        fail(
            "capacity",
            "closed-loop probe produced no completions",
            &cap_r,
        );
    }

    // --- The sweep: every (rate, shedding on/off) point. -------------
    let mut points: Vec<(f64, bool)> = Vec::new();
    for &f in fracs {
        points.push((f, true));
        points.push((f, false));
    }
    let results: Vec<OpenLoopResult> = parallel_sweep(points.clone(), |(frac, qos)| {
        run_openloop(
            SEED,
            &profile,
            OpenLoopParams {
                arrival: Arrival::Poisson {
                    rate: capacity * frac,
                },
                qos,
                // With shedding the client host also bounds its own
                // waiting room; the unprotected mode queues patiently
                // without limit — that is the collapse under test.
                waiting_room: if qos { 64 } else { 0 },
                timeline: true,
                ..base_params(duration_ms)
            },
        )
    });

    let mut t = Table::new(
        "Open-loop load sweep (Poisson arrivals, 2000 Zipf tenants on 4 connections)",
        &[
            "mode",
            "x_cap",
            "offered",
            "goodput",
            "p50_us",
            "p99_us",
            "srv_shed",
            "cli_shed",
            "overloaded",
            "unfinished",
            "peak_q",
        ],
    );
    let mut on_2x: Option<&OpenLoopResult> = None;
    let mut off_2x: Option<&OpenLoopResult> = None;
    for ((frac, qos), r) in points.iter().zip(&results) {
        row(&mut t, if *qos { "shed-on" } else { "shed-off" }, *frac, r);
        if (*frac - 2.0).abs() < 1e-9 {
            if *qos {
                on_2x = Some(r);
            } else {
                off_2x = Some(r);
            }
        }
    }
    let on_2x = on_2x.expect("2x point present");
    let off_2x = off_2x.expect("2x point present");
    bench::emit("loadcurve", &t);
    bench::emit_results_file(
        "loadcurve_timeline.csv",
        &load_timeline_csv(&on_2x.timeline),
    );

    // --- Hockey-stick gates. -----------------------------------------
    if on_2x.p99_us > P99_BOUND_US {
        fail(
            "bounded-p99",
            &format!(
                "shedding on: p99 {} us at 2x capacity exceeds the {} us bound",
                on_2x.p99_us, P99_BOUND_US
            ),
            on_2x,
        );
    }
    if on_2x.goodput_ops < PLATEAU_FRACTION * capacity {
        fail(
            "goodput-plateau",
            &format!(
                "shedding on: goodput {:.0} ops/s at 2x fell below {:.0}% of capacity {:.0}",
                on_2x.goodput_ops,
                PLATEAU_FRACTION * 100.0,
                capacity
            ),
            on_2x,
        );
    }
    if on_2x.server_sheds == 0 {
        fail(
            "shed-active",
            "shedding on: 2x overload never tripped the controller",
            on_2x,
        );
    }
    if off_2x.server_sheds != 0 {
        fail(
            "shed-disabled",
            "shedding off: the controller shed work while disabled",
            off_2x,
        );
    }
    if off_2x.p99_us < COLLAPSE_FACTOR * on_2x.p99_us.max(1) {
        fail(
            "collapse-shown",
            &format!(
                "shedding off: p99 {} us at 2x does not demonstrate collapse \
                 (>= {}x the shedded {} us)",
                off_2x.p99_us, COLLAPSE_FACTOR, on_2x.p99_us
            ),
            off_2x,
        );
    }

    // --- Fairness sweep: 3 honest connections vs 1 hog. --------------
    println!("loadcurve: fairness sweep (1 hog vs honest tenants)...");
    let fair_base = OpenLoopParams {
        arrival: Arrival::Poisson {
            rate: capacity * 0.5,
        },
        qos: true,
        waiting_room: 64,
        timeline: true,
        // Reserve connection 0 for the hog in both runs so the honest
        // population is identical; rate 0 keeps it silent. Honest
        // tenants are provisioned 4x the hog's weight — the knob an
        // operator actually has.
        hog_rate: 0.0,
        hog_weight: 1,
        honest_weight: 4,
        ..base_params(duration_ms)
    };
    let baseline = run_openloop(
        SEED,
        &profile,
        OpenLoopParams {
            hog_rate: 1e-9, // reserve conn 0, effectively no arrivals
            ..fair_base
        },
    );
    let hogged = run_openloop(
        SEED,
        &profile,
        OpenLoopParams {
            hog_rate: capacity * 1.5,
            ..fair_base
        },
    );
    let mut ft = Table::new(
        "Fairness under a hog (QoS on, honest load 0.5x capacity)",
        &[
            "scenario",
            "honest_ops",
            "honest_p99_us",
            "hog_ops",
            "hog_p99_us",
            "srv_shed",
            "clamps",
        ],
    );
    for (label, r) in [("honest-only", &baseline), ("with-hog", &hogged)] {
        ft.row(&[
            label.to_string(),
            r.honest_completed.to_string(),
            r.honest_p99_us.to_string(),
            r.hog_completed.to_string(),
            r.hog_p99_us.to_string(),
            r.server_sheds.to_string(),
            r.credit_clamps.to_string(),
        ]);
    }
    bench::emit("loadcurve_fairness", &ft);

    let inflation_pct = if baseline.honest_p99_us == 0 {
        0.0
    } else {
        (hogged.honest_p99_us as f64 / baseline.honest_p99_us as f64 - 1.0) * 100.0
    };
    if inflation_pct > FAIRNESS_INFLATION_PCT {
        fail(
            "fairness",
            &format!(
                "hog inflated honest p99 {} -> {} us ({inflation_pct:.1}% > {}%)",
                baseline.honest_p99_us, hogged.honest_p99_us, FAIRNESS_INFLATION_PCT
            ),
            &hogged,
        );
    }
    if hogged.honest_completed == 0 || hogged.hog_completed == 0 {
        fail(
            "fairness-liveness",
            "a tenant class finished zero ops under the hog scenario",
            &hogged,
        );
    }

    // --- Determinism: the 2x shedding-on point, same seed, again. ----
    let rerun = run_openloop(
        SEED,
        &profile,
        OpenLoopParams {
            arrival: Arrival::Poisson {
                rate: capacity * 2.0,
            },
            qos: true,
            waiting_room: 64,
            timeline: true,
            ..base_params(duration_ms)
        },
    );
    if determinism_key(&rerun) != determinism_key(on_2x) {
        fail(
            "determinism",
            "same-seed rerun of the 2x shedding-on point diverged",
            &rerun,
        );
    }

    // --- Artifact. ----------------------------------------------------
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"loadcurve\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"capacity_ops\": {cap:.0},\n",
            "  \"shed_on_2x\": {{\n",
            "    \"offered\": {on_off}, \"goodput_ops\": {on_gp:.0},\n",
            "    \"p50_us\": {on_p50}, \"p99_us\": {on_p99},\n",
            "    \"server_sheds\": {on_shed}, \"client_sheds\": {on_cs},\n",
            "    \"overload_failures\": {on_of}, \"qos_peak_depth\": {on_pk}\n",
            "  }},\n",
            "  \"shed_off_2x\": {{\n",
            "    \"offered\": {off_off}, \"goodput_ops\": {off_gp:.0},\n",
            "    \"p50_us\": {off_p50}, \"p99_us\": {off_p99},\n",
            "    \"unfinished\": {off_un}\n",
            "  }},\n",
            "  \"fairness\": {{\n",
            "    \"honest_p99_base_us\": {fb}, \"honest_p99_hog_us\": {fh},\n",
            "    \"inflation_pct\": {fi:.1}, \"hog_completed\": {hc},\n",
            "    \"credit_clamps\": {cc}\n",
            "  }},\n",
            "  \"gates\": {{\n",
            "    \"p99_bound_us\": {gb}, \"plateau_fraction\": {gp},\n",
            "    \"collapse_factor\": {gc}, \"fairness_inflation_pct\": {gf}\n",
            "  }}\n",
            "}}\n"
        ),
        mode = if smoke { "smoke" } else { "full" },
        cap = capacity,
        on_off = on_2x.offered,
        on_gp = on_2x.goodput_ops,
        on_p50 = on_2x.p50_us,
        on_p99 = on_2x.p99_us,
        on_shed = on_2x.server_sheds,
        on_cs = on_2x.client_sheds,
        on_of = on_2x.overload_failures,
        on_pk = on_2x.qos_peak_depth,
        off_off = off_2x.offered,
        off_gp = off_2x.goodput_ops,
        off_p50 = off_2x.p50_us,
        off_p99 = off_2x.p99_us,
        off_un = off_2x.unfinished,
        fb = baseline.honest_p99_us,
        fh = hogged.honest_p99_us,
        fi = inflation_pct,
        hc = hogged.hog_completed,
        cc = hogged.credit_clamps,
        gb = P99_BOUND_US,
        gp = PLATEAU_FRACTION,
        gc = COLLAPSE_FACTOR,
        gf = FAIRNESS_INFLATION_PCT,
    );
    bench::emit_bench_json("loadcurve", &json);
    println!(
        "loadcurve: OK — capacity {capacity:.0} ops/s, shedded p99 {} us at 2x \
         (unshedded {} us), honest p99 inflation {inflation_pct:.1}%",
        on_2x.p99_us, off_2x.p99_us
    );
}
