//! Ablation studies for the design choices DESIGN.md calls out — these
//! go beyond the paper's figures and probe *why* the Read-Write design
//! wins and where its knobs sit.
//!
//! 1. **Zero-copy decomposition**: how much of the RW design's client
//!    CPU win is the zero-copy direct-I/O path vs the protocol change
//!    itself (DONE elimination, server push)?
//! 2. **ORD sensitivity**: the paper blames the IRD/ORD ≤ 8 limit for
//!    WRITE-path throttling; sweep the window and find where it
//!    actually binds given in-order responder execution.
//! 3. **Inline threshold**: when do small RPCs stop fitting inline and
//!    start paying long-call RDMA Reads?
//! 4. **Credit window**: the paper's stated future work — how deep must
//!    the flow-control window be to keep the pipe full per thread
//!    count?

use rpcrdma::{Design, StrategyKind};
use sim_core::sweep::parallel_sweep;
use sim_core::Simulation;
use workloads::{
    build_rdma, mb, pct, run_iozone, solaris_sdr, Backend, IoMode, IozoneParams, Profile, Table,
};

const FILE: u64 = 32 << 20;

fn iozone(
    profile: Profile,
    design: Design,
    strategy: StrategyKind,
    mode: IoMode,
    threads: u32,
    record: u64,
) -> workloads::IozoneResult {
    let mut sim = Simulation::new(0xAB1A);
    let h = sim.handle();
    sim.block_on(async move {
        let bed = build_rdma(&h, &profile, design, strategy, Backend::Tmpfs, 1);
        run_iozone(
            &h,
            &bed,
            IozoneParams {
                threads_per_client: threads,
                file_size: FILE,
                record,
                mode,
            },
        )
        .await
    })
}

fn zero_copy_decomposition() {
    let base = solaris_sdr();
    let mut no_zc = base;
    no_zc.rpc.zero_copy_read = false;

    let rows: Vec<(&str, Profile, Design)> = vec![
        ("Read-Read (baseline)", base, Design::ReadRead),
        ("Read-Write, copy-out", no_zc, Design::ReadWrite),
        ("Read-Write, zero-copy", base, Design::ReadWrite),
    ];
    let results = parallel_sweep(rows.clone(), |(_, p, d)| {
        (
            iozone(p, d, StrategyKind::Dynamic, IoMode::Read, 1, 128 * 1024),
            iozone(p, d, StrategyKind::Dynamic, IoMode::Read, 8, 128 * 1024),
        )
    });
    let mut t = Table::new(
        "Ablation 1 — where the Read-Write win comes from (READ, 128K)",
        &["variant", "1-thr MB/s", "8-thr MB/s", "8-thr client CPU"],
    );
    for ((label, _, _), (one, eight)) in rows.iter().zip(results) {
        t.row(&[
            label.to_string(),
            mb(one.bandwidth_mb),
            mb(eight.bandwidth_mb),
            pct(eight.client_cpu),
        ]);
    }
    bench::emit("ablation_zerocopy", &t);
    println!(
        "Takeaway: the protocol change (no RDMA_DONE, server push) buys the \
         bandwidth; the zero-copy path buys the flat client CPU curve.\n"
    );
}

fn ord_sensitivity() {
    let orders = [1usize, 2, 4, 8, 16, 32];
    let results = parallel_sweep(orders.to_vec(), |ord| {
        let mut p = solaris_sdr();
        p.hca.max_ord = ord;
        p.hca.max_ird = ord;
        iozone(
            p,
            Design::ReadWrite,
            StrategyKind::Cache,
            IoMode::Write,
            8,
            128 * 1024,
        )
    });
    let mut t = Table::new(
        "Ablation 2 — ORD/IRD window vs NFS WRITE bandwidth (8 threads, cache)",
        &["ord/ird", "write MB/s"],
    );
    for (ord, r) in orders.iter().zip(results) {
        t.row(&[ord.to_string(), mb(r.bandwidth_mb)]);
    }
    bench::emit("ablation_ord", &t);
    println!(
        "Takeaway: because an RC responder executes reads in order, the \
         window stops mattering once request latency is covered — the \
         serialized read engine, not the depth-8 limit, is the real WRITE \
         ceiling.\n"
    );
}

fn inline_threshold_sweep() {
    // The inline threshold decides when an RPC reply still fits in the
    // Send and when it must become a long reply (reply-chunk RDMA
    // Write + registration). READDIR of a populated directory is the
    // canonical boundary case (paper §3.1).
    let thresholds = [256u64, 1024, 4096, 16384];
    let results = parallel_sweep(thresholds.to_vec(), |inline| {
        let mut p = solaris_sdr();
        p.rpc.inline_threshold = inline;
        let mut sim = Simulation::new(0x1712);
        let h = sim.handle();
        sim.block_on(async move {
            let bed = build_rdma(
                &h,
                &p,
                Design::ReadWrite,
                StrategyKind::Dynamic,
                Backend::Tmpfs,
                1,
            );
            let root = bed.server.root_handle();
            let c = &bed.clients[0];
            let dir = c.nfs.mkdir(root, "crowd").await.unwrap();
            // ~60 bytes of XDR per entry: 50 entries ≈ 3 KiB reply.
            for i in 0..50 {
                c.nfs
                    .create(dir.handle(), &format!("entry-{i:04}"))
                    .await
                    .unwrap();
            }
            let t0 = h.now();
            let rounds = 200;
            for _ in 0..rounds {
                let entries = c.nfs.readdir(dir.handle()).await.unwrap();
                assert_eq!(entries.len(), 50);
            }
            let secs = h.now().saturating_since(t0).as_secs_f64();
            rounds as f64 / secs
        })
    });
    let mut t = Table::new(
        "Ablation 3 — inline threshold vs READDIR throughput (50 entries, ~3 KiB reply)",
        &["inline bytes", "readdir ops/s", "path taken"],
    );
    for (inline, ops) in thresholds.iter().zip(results) {
        let path = if *inline >= 4096 {
            "inline reply"
        } else {
            "long reply (reply chunk)"
        };
        t.row(&[inline.to_string(), format!("{ops:.0}"), path.to_string()]);
    }
    bench::emit("ablation_inline", &t);
    println!(
        "Takeaway: crossing the threshold adds a registration + RDMA Write \
         to every READDIR; generous inline space is cheap insurance for \
         metadata-heavy workloads.\n"
    );
}

fn credit_window_sweep() {
    let credits = [1u32, 2, 4, 8, 16, 32, 64];
    let results = parallel_sweep(credits.to_vec(), |cr| {
        let mut p = solaris_sdr();
        p.rpc.credits = cr;
        iozone(
            p,
            Design::ReadWrite,
            StrategyKind::Cache,
            IoMode::Read,
            8,
            128 * 1024,
        )
    });
    let mut t = Table::new(
        "Ablation 4 — credit window vs READ bandwidth (8 threads, cache)",
        &["credits", "read MB/s"],
    );
    for (cr, r) in credits.iter().zip(results) {
        t.row(&[cr.to_string(), mb(r.bandwidth_mb)]);
    }
    bench::emit("ablation_credits", &t);
    println!(
        "Takeaway (the paper's future work): the window must cover the \
         pipeline depth of the bottleneck stage (~4 ops here); beyond \
         that, extra credits only cost receive buffers.\n"
    );
}

fn msgp_small_write_fast_path() {
    // RDMA_MSGP (the paper's Figure-2 message type 2, implemented as an
    // extension): small writes ride inline instead of paying a
    // registration plus a server-side RDMA Read.
    let sizes = [512u64, 1024, 4096, 16384];
    let results = parallel_sweep(
        sizes
            .iter()
            .flat_map(|&s| [(s, false), (s, true)])
            .collect::<Vec<_>>(),
        |(record, msgp)| {
            // Linux profile: the lean task queue leaves registration as
            // the binding constraint, which is what MSGP removes.
            let mut p = workloads::linux_sdr();
            p.rpc.msgp_small_writes = msgp;
            // MSGP only helps below the inline threshold; lift it so
            // every swept size qualifies when enabled.
            p.rpc.inline_threshold = 16 * 1024;
            p.rpc.recv_buffer_size = 64 * 1024;
            iozone(
                p,
                Design::ReadWrite,
                StrategyKind::Dynamic,
                IoMode::Write,
                8,
                record,
            )
        },
    );
    let mut t = Table::new(
        "Ablation 5 — RDMA_MSGP padded-inline small writes (8 threads)",
        &["record", "chunked MB/s", "MSGP MB/s", "speedup"],
    );
    for (i, record) in sizes.iter().enumerate() {
        let base = &results[i * 2];
        let msgp = &results[i * 2 + 1];
        t.row(&[
            record.to_string(),
            mb(base.bandwidth_mb),
            mb(msgp.bandwidth_mb),
            format!("{:.2}x", msgp.bandwidth_mb / base.bandwidth_mb),
        ]);
    }
    bench::emit("ablation_msgp", &t);
    println!(
        "Takeaway: below the inline threshold, MSGP removes both per-op \
         registrations and the serialized RDMA Read — the small-write \
         path the chunked protocol penalizes most.\n"
    );
}

fn main() {
    zero_copy_decomposition();
    ord_sensitivity();
    inline_threshold_sweep();
    credit_window_sweep();
    msgp_small_write_fast_path();
}
