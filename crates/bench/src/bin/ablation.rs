//! Ablation studies for the design choices DESIGN.md calls out — these
//! go beyond the paper's figures and probe *why* the Read-Write design
//! wins and where its knobs sit.
//!
//! 1. **Zero-copy decomposition**: how much of the RW design's client
//!    CPU win is the zero-copy direct-I/O path vs the protocol change
//!    itself (DONE elimination, server push)?
//! 2. **ORD sensitivity**: the paper blames the IRD/ORD ≤ 8 limit for
//!    WRITE-path throttling; sweep the window and find where it
//!    actually binds given in-order responder execution.
//! 3. **Inline threshold**: when do small RPCs stop fitting inline and
//!    start paying long-call RDMA Reads?
//! 4. **Credit window**: the paper's stated future work — how deep must
//!    the flow-control window be to keep the pipe full per thread
//!    count?

use rpcrdma::{Design, StrategyKind};
use sim_core::sweep::parallel_sweep;
use sim_core::{SimDuration, Simulation};
use workloads::{
    build_rdma, build_rdma_custom, linux_sdr, mb, pct, run_iozone, run_openloop, solaris_sdr,
    Arrival, Backend, IoMode, IozoneParams, OpMix, OpenLoopParams, OpenLoopResult, Profile,
    RdmaOpts, Table,
};

const FILE: u64 = 32 << 20;

fn iozone(
    profile: Profile,
    design: Design,
    strategy: StrategyKind,
    mode: IoMode,
    threads: u32,
    record: u64,
) -> workloads::IozoneResult {
    let mut sim = Simulation::new(0xAB1A);
    let h = sim.handle();
    sim.block_on(async move {
        let bed = build_rdma(&h, &profile, design, strategy, Backend::Tmpfs, 1);
        run_iozone(
            &h,
            &bed,
            IozoneParams {
                threads_per_client: threads,
                file_size: FILE,
                record,
                mode,
                ..Default::default()
            },
        )
        .await
    })
}

fn zero_copy_decomposition() {
    let base = solaris_sdr();
    let mut no_zc = base;
    no_zc.rpc.zero_copy_read = false;

    let rows: Vec<(&str, Profile, Design)> = vec![
        ("Read-Read (baseline)", base, Design::ReadRead),
        ("Read-Write, copy-out", no_zc, Design::ReadWrite),
        ("Read-Write, zero-copy", base, Design::ReadWrite),
    ];
    let results = parallel_sweep(rows.clone(), |(_, p, d)| {
        (
            iozone(p, d, StrategyKind::Dynamic, IoMode::Read, 1, 128 * 1024),
            iozone(p, d, StrategyKind::Dynamic, IoMode::Read, 8, 128 * 1024),
        )
    });
    let mut t = Table::new(
        "Ablation 1 — where the Read-Write win comes from (READ, 128K)",
        &["variant", "1-thr MB/s", "8-thr MB/s", "8-thr client CPU"],
    );
    for ((label, _, _), (one, eight)) in rows.iter().zip(results) {
        t.row(&[
            label.to_string(),
            mb(one.bandwidth_mb),
            mb(eight.bandwidth_mb),
            pct(eight.client_cpu),
        ]);
    }
    bench::emit("ablation_zerocopy", &t);
    println!(
        "Takeaway: the protocol change (no RDMA_DONE, server push) buys the \
         bandwidth; the zero-copy path buys the flat client CPU curve.\n"
    );
}

fn ord_sensitivity() {
    let orders = [1usize, 2, 4, 8, 16, 32];
    let results = parallel_sweep(orders.to_vec(), |ord| {
        let mut p = solaris_sdr();
        p.hca.max_ord = ord;
        p.hca.max_ird = ord;
        iozone(
            p,
            Design::ReadWrite,
            StrategyKind::Cache,
            IoMode::Write,
            8,
            128 * 1024,
        )
    });
    let mut t = Table::new(
        "Ablation 2 — ORD/IRD window vs NFS WRITE bandwidth (8 threads, cache)",
        &["ord/ird", "write MB/s"],
    );
    for (ord, r) in orders.iter().zip(results) {
        t.row(&[ord.to_string(), mb(r.bandwidth_mb)]);
    }
    bench::emit("ablation_ord", &t);
    println!(
        "Takeaway: because an RC responder executes reads in order, the \
         window stops mattering once request latency is covered — the \
         serialized read engine, not the depth-8 limit, is the real WRITE \
         ceiling.\n"
    );
}

fn inline_threshold_sweep() {
    // The inline threshold decides when an RPC reply still fits in the
    // Send and when it must become a long reply (reply-chunk RDMA
    // Write + registration). READDIR of a populated directory is the
    // canonical boundary case (paper §3.1).
    let thresholds = [256u64, 1024, 4096, 16384];
    let results = parallel_sweep(thresholds.to_vec(), |inline| {
        let mut p = solaris_sdr();
        p.rpc.inline_threshold = inline;
        let mut sim = Simulation::new(0x1712);
        let h = sim.handle();
        sim.block_on(async move {
            let bed = build_rdma(
                &h,
                &p,
                Design::ReadWrite,
                StrategyKind::Dynamic,
                Backend::Tmpfs,
                1,
            );
            let root = bed.server.root_handle();
            let c = &bed.clients[0];
            let dir = c.nfs.mkdir(root, "crowd").await.unwrap();
            // ~60 bytes of XDR per entry: 50 entries ≈ 3 KiB reply.
            for i in 0..50 {
                c.nfs
                    .create(dir.handle(), &format!("entry-{i:04}"))
                    .await
                    .unwrap();
            }
            let t0 = h.now();
            let rounds = 200;
            for _ in 0..rounds {
                let entries = c.nfs.readdir(dir.handle()).await.unwrap();
                assert_eq!(entries.len(), 50);
            }
            let secs = h.now().saturating_since(t0).as_secs_f64();
            rounds as f64 / secs
        })
    });
    let mut t = Table::new(
        "Ablation 3 — inline threshold vs READDIR throughput (50 entries, ~3 KiB reply)",
        &["inline bytes", "readdir ops/s", "path taken"],
    );
    for (inline, ops) in thresholds.iter().zip(results) {
        let path = if *inline >= 4096 {
            "inline reply"
        } else {
            "long reply (reply chunk)"
        };
        t.row(&[inline.to_string(), format!("{ops:.0}"), path.to_string()]);
    }
    bench::emit("ablation_inline", &t);
    println!(
        "Takeaway: crossing the threshold adds a registration + RDMA Write \
         to every READDIR; generous inline space is cheap insurance for \
         metadata-heavy workloads.\n"
    );
}

fn credit_window_sweep() {
    let credits = [1u32, 2, 4, 8, 16, 32, 64];
    let results = parallel_sweep(credits.to_vec(), |cr| {
        let mut p = solaris_sdr();
        p.rpc.credits = cr;
        iozone(
            p,
            Design::ReadWrite,
            StrategyKind::Cache,
            IoMode::Read,
            8,
            128 * 1024,
        )
    });
    let mut t = Table::new(
        "Ablation 4 — credit window vs READ bandwidth (8 threads, cache)",
        &["credits", "read MB/s"],
    );
    for (cr, r) in credits.iter().zip(results) {
        t.row(&[cr.to_string(), mb(r.bandwidth_mb)]);
    }
    bench::emit("ablation_credits", &t);
    println!(
        "Takeaway (the paper's future work): the window must cover the \
         pipeline depth of the bottleneck stage (~4 ops here); beyond \
         that, extra credits only cost receive buffers.\n"
    );
}

fn msgp_small_write_fast_path() {
    // RDMA_MSGP (the paper's Figure-2 message type 2, implemented as an
    // extension): small writes ride inline instead of paying a
    // registration plus a server-side RDMA Read.
    let sizes = [512u64, 1024, 4096, 16384];
    let results = parallel_sweep(
        sizes
            .iter()
            .flat_map(|&s| [(s, false), (s, true)])
            .collect::<Vec<_>>(),
        |(record, msgp)| {
            // Linux profile: the lean task queue leaves registration as
            // the binding constraint, which is what MSGP removes.
            let mut p = workloads::linux_sdr();
            p.rpc.msgp_small_writes = msgp;
            // MSGP only helps below the inline threshold; lift it so
            // every swept size qualifies when enabled.
            p.rpc.inline_threshold = 16 * 1024;
            p.rpc.recv_buffer_size = 64 * 1024;
            iozone(
                p,
                Design::ReadWrite,
                StrategyKind::Dynamic,
                IoMode::Write,
                8,
                record,
            )
        },
    );
    let mut t = Table::new(
        "Ablation 5 — RDMA_MSGP padded-inline small writes (8 threads)",
        &["record", "chunked MB/s", "MSGP MB/s", "speedup"],
    );
    for (i, record) in sizes.iter().enumerate() {
        let base = &results[i * 2];
        let msgp = &results[i * 2 + 1];
        t.row(&[
            record.to_string(),
            mb(base.bandwidth_mb),
            mb(msgp.bandwidth_mb),
            format!("{:.2}x", msgp.bandwidth_mb / base.bandwidth_mb),
        ]);
    }
    bench::emit("ablation_msgp", &t);
    println!(
        "Takeaway: below the inline threshold, MSGP removes both per-op \
         registrations and the serialized RDMA Read — the small-write \
         path the chunked protocol penalizes most.\n"
    );
}

/// One measured point of the batching ablation.
#[derive(Clone, Copy)]
struct BatchPoint {
    /// Server doorbell batch depth (and CQ coalesce count when > 1).
    depth: usize,
    /// Client threads.
    threads: u32,
    /// Server-side zero-copy gather on/off (off = staged copy path).
    zero_copy: bool,
    /// Server registration strategy.
    server_strategy: StrategyKind,
    /// Client registration strategy (Dynamic for the bandwidth rows;
    /// the cache for the 4K IOPS rows, per the paper's small-I/O
    /// recommendation).
    client_strategy: StrategyKind,
    /// Record size (1M streams bandwidth; 4K stresses per-op rates).
    record: u64,
    /// File size per thread.
    file_size: u64,
    /// Linux profile (lean task queue) instead of Solaris.
    linux: bool,
}

/// Measured outcome: bandwidth plus per-RPC doorbell/interrupt rates
/// read off the server HCA after the run.
struct BatchOutcome {
    bandwidth_mb: f64,
    doorbells_per_op: f64,
    interrupts_per_op: f64,
    coalesced_per_op: f64,
    zero_copy_mb: f64,
}

fn batching_point(p: BatchPoint) -> BatchOutcome {
    let profile = if p.linux {
        workloads::linux_sdr()
    } else {
        solaris_sdr()
    };
    let mut sim = Simulation::new(0xAB1A);
    let h = sim.handle();
    sim.block_on(async move {
        let mut cfg = profile.rpc.with_design(Design::ReadWrite);
        cfg.server_zero_copy = p.zero_copy;
        cfg.server_doorbell_batch = p.depth;
        cfg.server_doorbell_flush = SimDuration::from_micros(32);
        let mut server_hca = profile.hca;
        if p.depth > 1 {
            // Interrupt moderation scales with the doorbell batch: the
            // completion side coalesces as deeply as the posting side.
            server_hca.cq_coalesce_count = p.depth;
            server_hca.cq_coalesce_delay = SimDuration::from_micros(64);
        }
        let bed = build_rdma_custom(
            &h,
            &profile,
            RdmaOpts {
                cfg,
                client_strategy: p.client_strategy,
                server_strategy: p.server_strategy,
                server_hca: Some(server_hca),
            },
            Backend::Tmpfs,
            1,
        );
        let r = run_iozone(
            &h,
            &bed,
            IozoneParams {
                threads_per_client: p.threads,
                file_size: p.file_size,
                record: p.record,
                mode: IoMode::Read,
                ..Default::default()
            },
        )
        .await;
        let hca = bed.server_hca.as_ref().expect("rdma testbed");
        let rpc = bed.rpc_server.as_ref().expect("rdma testbed");
        // Per-RPC rates over every op the server served (the READ pass
        // plus one CREATE per thread; the counters span the whole run).
        let ops = rpc.stats.ops.get().max(1) as f64;
        BatchOutcome {
            bandwidth_mb: r.bandwidth_mb,
            doorbells_per_op: hca.doorbells() as f64 / ops,
            interrupts_per_op: hca.cq_interrupts() as f64 / ops,
            coalesced_per_op: hca.cq_coalesced() as f64 / ops,
            zero_copy_mb: rpc.stats.zero_copy_bytes.get() as f64 / 1e6,
        }
    })
}

/// Fast subset of the batching sweep for `check.sh`: one baseline and
/// one batched point per section, with the PR's acceptance gates
/// asserted in-process (exit code carries the verdict).
fn batching_smoke() {
    let points = [
        BatchPoint {
            depth: 1,
            threads: 1,
            zero_copy: false,
            server_strategy: StrategyKind::Dynamic,
            client_strategy: StrategyKind::Dynamic,
            record: 1 << 20,
            file_size: 64 << 20,
            linux: false,
        },
        BatchPoint {
            depth: 1,
            threads: 1,
            zero_copy: true,
            server_strategy: StrategyKind::AllPhysical,
            client_strategy: StrategyKind::Dynamic,
            record: 1 << 20,
            file_size: 64 << 20,
            linux: false,
        },
        BatchPoint {
            depth: 4,
            threads: 8,
            zero_copy: true,
            server_strategy: StrategyKind::AllPhysical,
            client_strategy: StrategyKind::Cache,
            record: 4 << 10,
            file_size: 16 << 20,
            linux: true,
        },
    ];
    let r = parallel_sweep(points.to_vec(), batching_point);
    let speedup = r[1].bandwidth_mb / r[0].bandwidth_mb;
    println!(
        "batching smoke: zero-copy 1M speedup {:.2}x ({:.0} vs {:.0} MB/s); \
         depth-4 doorbells/op {:.3}, interrupts/op {:.3}",
        speedup,
        r[1].bandwidth_mb,
        r[0].bandwidth_mb,
        r[2].doorbells_per_op,
        r[2].interrupts_per_op
    );
    assert!(
        speedup >= 1.3,
        "zero-copy READ speedup {speedup:.2}x below the 1.3x acceptance floor"
    );
    assert!(
        r[2].doorbells_per_op < 1.0,
        "doorbells/op {:.3} not < 1 at batch depth 4",
        r[2].doorbells_per_op
    );
    assert!(
        r[2].interrupts_per_op < 1.0,
        "interrupts/op {:.3} not < 1 at batch depth 4",
        r[2].interrupts_per_op
    );
    bench::emit_bench_json(
        "read",
        &format!(
            concat!(
                "{{\n",
                "  \"bench\": \"read\",\n",
                "  \"mode\": \"smoke\",\n",
                "  \"baseline_mb_s\": {:.3},\n",
                "  \"zero_copy_mb_s\": {:.3},\n",
                "  \"speedup\": {:.3},\n",
                "  \"batched\": {{\n",
                "    \"doorbells_per_op\": {:.4},\n",
                "    \"interrupts_per_op\": {:.4},\n",
                "    \"coalesced_per_op\": {:.4}\n",
                "  }}\n",
                "}}\n"
            ),
            r[0].bandwidth_mb,
            r[1].bandwidth_mb,
            speedup,
            r[2].doorbells_per_op,
            r[2].interrupts_per_op,
            r[2].coalesced_per_op,
        ),
    );
    println!("batching smoke OK");
}

fn batching_sweep() {
    // Baseline: the pre-batching server (staged copy, per-WQE
    // doorbells, symmetric Dynamic registration) — the configuration
    // behind the shipped fig5 Read-Write 1M numbers. Tentpole: the
    // zero-copy pipeline on an all-physical server (no per-op TPT work
    // on the READ critical path) under increasing doorbell batch
    // depths, clients unchanged on Dynamic.
    // Section 1 (Solaris, 1M records): the bandwidth story — fig5's
    // Read-Write single-thread config, measured against the shipped
    // 171 MB/s. Section 2 (Linux, 4K records): the per-op rate story —
    // ops arrive every ~25us, so the depth-4+ batches actually fill
    // and the doorbell/interrupt rates drop below one per RPC.
    let sol = |depth, threads, zero_copy, server_strategy| BatchPoint {
        depth,
        threads,
        zero_copy,
        server_strategy,
        client_strategy: StrategyKind::Dynamic,
        record: 1 << 20,
        file_size: 64 << 20,
        linux: false,
    };
    let lin = |depth, threads, zero_copy, server_strategy| BatchPoint {
        depth,
        threads,
        zero_copy,
        server_strategy,
        client_strategy: StrategyKind::Cache,
        record: 4 << 10,
        file_size: 16 << 20,
        linux: true,
    };
    let mut points = vec![
        ("staged baseline", sol(1, 1, false, StrategyKind::Dynamic)),
        ("staged baseline", sol(1, 8, false, StrategyKind::Dynamic)),
    ];
    for depth in [1usize, 2, 4, 8, 16] {
        for threads in [1u32, 8] {
            points.push((
                "zero-copy all-phys",
                sol(depth, threads, true, StrategyKind::AllPhysical),
            ));
        }
    }
    let lin_start = points.len();
    points.push((
        "staged baseline 4K",
        lin(1, 8, false, StrategyKind::Dynamic),
    ));
    for depth in [1usize, 2, 4, 8, 16] {
        points.push((
            "zero-copy all-phys 4K",
            lin(depth, 8, true, StrategyKind::AllPhysical),
        ));
    }
    let results = parallel_sweep(points.clone(), |(_, p)| batching_point(p));
    let base_1t = results[0].bandwidth_mb;
    let base_8t = results[1].bandwidth_mb;
    let base_4k = results[lin_start].bandwidth_mb;
    let mut t = Table::new(
        "Ablation 6 — zero-copy READ pipeline + doorbell/completion batching \
         (RW design; clients Dynamic at 1M, Cache at 4K)",
        &[
            "variant",
            "record",
            "depth",
            "threads",
            "MB/s",
            "speedup",
            "doorbells/op",
            "interrupts/op",
            "coalesced/op",
            "zero-copy MB",
        ],
    );
    for (i, ((label, p), r)) in points.iter().zip(&results).enumerate() {
        let base = if i >= lin_start {
            base_4k
        } else if p.threads == 1 {
            base_1t
        } else {
            base_8t
        };
        t.row(&[
            label.to_string(),
            if p.record >= (1 << 20) { "1M" } else { "4K" }.to_string(),
            p.depth.to_string(),
            p.threads.to_string(),
            mb(r.bandwidth_mb),
            format!("{:.2}x", r.bandwidth_mb / base),
            format!("{:.3}", r.doorbells_per_op),
            format!("{:.3}", r.interrupts_per_op),
            format!("{:.3}", r.coalesced_per_op),
            format!("{:.1}", r.zero_copy_mb),
        ]);
    }
    bench::emit("ablation_batching", &t);
    println!(
        "Takeaway: removing server-side TPT work from the READ critical \
         path (zero-copy gather from an all-physical window) buys the \
         bandwidth; doorbell batching plus interrupt moderation then push \
         the per-RPC doorbell and interrupt rates below one at depth >= 4 \
         under concurrency.\n"
    );
}

/// One measured point of the WRITE-path ablation.
#[derive(Clone, Copy)]
struct WritePoint {
    /// Server-side zero-copy scatter on/off (off = staged copy of
    /// every pulled read chunk before the VFS write).
    zero_copy: bool,
    /// Server registration strategy.
    server_strategy: StrategyKind,
    /// Client threads.
    threads: u32,
    /// Record size.
    record: u64,
    /// Batch UNSTABLE writes and COMMIT once per file at close.
    commit_on_close: bool,
}

/// Measured outcome: bandwidth plus the server's data-movement and
/// UNSTABLE/COMMIT accounting after the run.
struct WriteOutcome {
    bandwidth_mb: f64,
    copied_mb: f64,
    write_zero_copy_mb: f64,
    unstable_writes: u64,
    commits: u64,
}

fn write_point(p: WritePoint) -> WriteOutcome {
    let profile = solaris_sdr();
    let mut sim = Simulation::new(0xAB1A);
    let h = sim.handle();
    sim.block_on(async move {
        let mut cfg = profile.rpc.with_design(Design::ReadWrite);
        cfg.server_zero_copy = p.zero_copy;
        let bed = build_rdma_custom(
            &h,
            &profile,
            RdmaOpts {
                cfg,
                client_strategy: StrategyKind::Dynamic,
                server_strategy: p.server_strategy,
                server_hca: None,
            },
            Backend::Tmpfs,
            1,
        );
        let r = run_iozone(
            &h,
            &bed,
            IozoneParams {
                threads_per_client: p.threads,
                file_size: 64 << 20,
                record: p.record,
                mode: IoMode::Write,
                commit_on_close: p.commit_on_close,
            },
        )
        .await;
        let rpc = bed.rpc_server.as_ref().expect("rdma testbed");
        WriteOutcome {
            bandwidth_mb: r.bandwidth_mb,
            copied_mb: rpc.stats.copied_bytes.get() as f64 / 1e6,
            write_zero_copy_mb: rpc.stats.write_zero_copy_bytes.get() as f64 / 1e6,
            unstable_writes: bed.server.stats.unstable_writes.get(),
            commits: bed.server.stats.commits.get(),
        }
    })
}

/// The WRITE-path acceptance gates for `check.sh`: zero-copy scatter
/// on an all-physical server must beat the staged Dynamic baseline by
/// at least 1.3x at 1M records, with zero staged bytes at steady state
/// and every WRITE byte accounted by the zero-copy counter.
fn write_path_smoke() {
    let baseline = WritePoint {
        zero_copy: false,
        server_strategy: StrategyKind::Dynamic,
        threads: 1,
        record: 1 << 20,
        commit_on_close: false,
    };
    let zc = WritePoint {
        server_strategy: StrategyKind::AllPhysical,
        zero_copy: true,
        ..baseline
    };
    // The Cache strategy's pre-registered slabs are the one path that
    // must still bounce, even with the zero-copy knob on.
    let cache = WritePoint {
        server_strategy: StrategyKind::Cache,
        zero_copy: true,
        ..baseline
    };
    let r = parallel_sweep(vec![baseline, zc, cache], write_point);
    let speedup = r[1].bandwidth_mb / r[0].bandwidth_mb;
    println!(
        "write-path smoke: zero-copy 1M speedup {:.2}x ({:.0} vs {:.0} MB/s); \
         staged {:.1} MB copied, zero-copy counter {:.1} MB",
        speedup, r[1].bandwidth_mb, r[0].bandwidth_mb, r[1].copied_mb, r[1].write_zero_copy_mb
    );
    assert!(
        speedup >= 1.3,
        "zero-copy WRITE speedup {speedup:.2}x below the 1.3x acceptance floor"
    );
    assert!(
        r[1].copied_mb == 0.0,
        "zero-copy WRITE path staged {:.1} MB (must be 0)",
        r[1].copied_mb
    );
    let expect_mb = (64u64 << 20) as f64 / 1e6;
    assert!(
        (r[1].write_zero_copy_mb - expect_mb).abs() < 0.01,
        "write.zero_copy_bytes {:.1} MB != {expect_mb:.1} MB transferred",
        r[1].write_zero_copy_mb
    );
    assert!(
        r[0].write_zero_copy_mb == 0.0,
        "staged baseline must not touch the zero-copy counter, got {:.1} MB",
        r[0].write_zero_copy_mb
    );
    assert!(
        r[2].copied_mb >= expect_mb,
        "Cache slabs must remain the one bouncing strategy: copied {:.1} MB, \
         expected >= {expect_mb:.1} MB",
        r[2].copied_mb
    );
    bench::emit_bench_json(
        "write",
        &format!(
            concat!(
                "{{\n",
                "  \"bench\": \"write\",\n",
                "  \"mode\": \"smoke\",\n",
                "  \"baseline_mb_s\": {:.3},\n",
                "  \"zero_copy_mb_s\": {:.3},\n",
                "  \"speedup\": {:.3},\n",
                "  \"zero_copy\": {{\n",
                "    \"staged_mb\": {:.3},\n",
                "    \"zero_copy_mb\": {:.3},\n",
                "    \"unstable_writes\": {},\n",
                "    \"commits\": {}\n",
                "  }}\n",
                "}}\n"
            ),
            r[0].bandwidth_mb,
            r[1].bandwidth_mb,
            speedup,
            r[1].copied_mb,
            r[1].write_zero_copy_mb,
            r[1].unstable_writes,
            r[1].commits,
        ),
    );
    println!("write-path smoke OK");
}

fn write_path_sweep() {
    // Baseline: the pre-PR server (every pulled read chunk staged
    // through a bounce buffer, symmetric Dynamic registration).
    // Tentpole: receive-side scatter straight into page-cache pages on
    // an all-physical server, with and without close-to-commit
    // UNSTABLE batching.
    let point = |zero_copy, server_strategy, threads, commit_on_close| WritePoint {
        zero_copy,
        server_strategy,
        threads,
        record: 1 << 20,
        commit_on_close,
    };
    let points = vec![
        (
            "staged baseline",
            point(false, StrategyKind::Dynamic, 1, false),
        ),
        (
            "staged baseline",
            point(false, StrategyKind::Dynamic, 8, false),
        ),
        (
            "zero-copy all-phys",
            point(true, StrategyKind::AllPhysical, 1, false),
        ),
        (
            "zero-copy all-phys",
            point(true, StrategyKind::AllPhysical, 8, false),
        ),
        (
            "zero-copy + commit-on-close",
            point(true, StrategyKind::AllPhysical, 1, true),
        ),
        (
            "zero-copy + commit-on-close",
            point(true, StrategyKind::AllPhysical, 8, true),
        ),
    ];
    let results = parallel_sweep(points.clone(), |(_, p)| write_point(p));
    let base_1t = results[0].bandwidth_mb;
    let base_8t = results[1].bandwidth_mb;
    let mut t = Table::new(
        "Ablation 7 — zero-copy WRITE pipeline: receive-side scatter + \
         UNSTABLE/COMMIT batching (RW design, 1M records, clients Dynamic)",
        &[
            "variant",
            "threads",
            "MB/s",
            "speedup",
            "staged MB",
            "zero-copy MB",
            "unstable writes",
            "commits",
        ],
    );
    for ((label, p), r) in points.iter().zip(&results) {
        let base = if p.threads == 1 { base_1t } else { base_8t };
        t.row(&[
            label.to_string(),
            p.threads.to_string(),
            mb(r.bandwidth_mb),
            format!("{:.2}x", r.bandwidth_mb / base),
            format!("{:.1}", r.copied_mb),
            format!("{:.1}", r.write_zero_copy_mb),
            r.unstable_writes.to_string(),
            r.commits.to_string(),
        ]);
    }
    bench::emit("ablation_write", &t);
    println!(
        "Takeaway: scattering pulled read chunks straight into page-cache \
         pages removes the server bounce copy and, with an all-physical \
         window, the per-op TPT work — the WRITE mirror of the READ \
         pipeline win. COMMIT-on-close adds one cheap group commit per \
         file on top of the UNSTABLE burst.\n"
    );
}

/// One closed-loop metadata run for the RFP ablation: same seed, same
/// personality, only the reply path differs. At saturation the
/// serialized server stage pins closed-loop p50 (queue wait absorbs
/// any reply-leg difference), so the latency gate runs a single
/// stream — one connection, one worker — where the reply path shows
/// up directly in every op, the way the remote-fetching papers
/// measure small-RPC latency. The sweep adds saturated points for
/// throughput and per-op server-cost rates.
///
/// Both modes run on an RFP-era read engine: the paper's 2005 SDR HCA
/// charges 107 us of responder turnaround per RDMA Read, which buries
/// any fetch-based reply path; the remote-fetching literature targets
/// the later generation where a small read costs ~2 us. The override
/// applies to baseline and RFP alike, so the comparison stays fair.
fn rfp_point(
    mix: OpMix,
    rfp: bool,
    duration_ms: u64,
    connections: usize,
    workers: u32,
) -> OpenLoopResult {
    let mut profile = linux_sdr();
    profile.hca.read_turnaround = SimDuration::from_micros(2);
    profile.rpc.rfp_poll_initial = SimDuration::from_micros(2);
    run_openloop(
        0xAB1A,
        &profile,
        OpenLoopParams {
            design: Design::ReadWrite,
            strategy: StrategyKind::AllPhysical,
            connections,
            arrival: Arrival::ClosedLoop { workers },
            mix,
            duration: SimDuration::from_millis(duration_ms),
            grace: SimDuration::from_millis(5),
            qos: false,
            waiting_room: 0,
            rfp,
            ..OpenLoopParams::default()
        },
    )
}

/// Derived per-op rates for one RFP ablation point. Server counters
/// span prepopulation too, so rates use the server's own op count.
struct RfpRates {
    sends_per_op: f64,
    deposits_per_op: f64,
    doorbells_per_op: f64,
    interrupts_per_op: f64,
}

fn rfp_rates(r: &OpenLoopResult) -> RfpRates {
    let ops = r.server_ops.max(1) as f64;
    RfpRates {
        sends_per_op: (r.server_ops - r.rfp_deposits) as f64 / ops,
        deposits_per_op: r.rfp_deposits as f64 / ops,
        doorbells_per_op: r.server_doorbells as f64 / ops,
        interrupts_per_op: r.server_interrupts as f64 / ops,
    }
}

/// RFP acceptance gates for `check.sh`: on a pure metadata storm the
/// reply-slot path must all but eliminate server Sends (and with them
/// doorbells), beat the RPC baseline's small-op p50, and replay
/// byte-identically under the same seed.
fn rfp_smoke() {
    let runs = parallel_sweep(vec![false, true, true], |rfp| {
        rfp_point(OpMix::stat_storm(), rfp, 20, 1, 1)
    });
    let (rpc, rfp, rfp2) = (&runs[0], &runs[1], &runs[2]);
    let (rr, fr) = (rfp_rates(rpc), rfp_rates(rfp));
    println!(
        "rfp smoke: p50 {} -> {} us, p99 {} -> {} us; deposits/op {:.3}, \
         sends/op {:.3} -> {:.4}, doorbells/op {:.3} -> {:.3}",
        rpc.p50_us,
        rfp.p50_us,
        rpc.p99_us,
        rfp.p99_us,
        fr.deposits_per_op,
        rr.sends_per_op,
        fr.sends_per_op,
        rr.doorbells_per_op,
        fr.doorbells_per_op,
    );
    assert!(
        rpc.rfp_deposits == 0,
        "baseline deposited {} replies with rfp off",
        rpc.rfp_deposits
    );
    assert!(
        fr.deposits_per_op > 0.9,
        "deposits/op {:.3} not > 0.9 — the metadata storm should ride the slots",
        fr.deposits_per_op
    );
    assert!(
        fr.sends_per_op < 0.05,
        "server Sends/op {:.4} not < 0.05 in RFP mode",
        fr.sends_per_op
    );
    assert!(
        fr.doorbells_per_op < rr.doorbells_per_op,
        "RFP doorbells/op {:.3} not below RPC baseline {:.3}",
        fr.doorbells_per_op,
        rr.doorbells_per_op
    );
    assert!(
        rfp.p50_us <= rpc.p50_us,
        "RFP small-op p50 {} us above RPC baseline {} us",
        rfp.p50_us,
        rpc.p50_us
    );
    assert!(
        rfp.p50_us == rfp2.p50_us
            && rfp.p99_us == rfp2.p99_us
            && rfp.completed == rfp2.completed
            && rfp.metrics_snapshot == rfp2.metrics_snapshot,
        "same-seed RFP runs diverged"
    );
    bench::emit_bench_json(
        "rfp",
        &format!(
            concat!(
                "{{\n",
                "  \"bench\": \"rfp\",\n",
                "  \"mode\": \"smoke\",\n",
                "  \"rpc\": {{ \"p50_us\": {}, \"p99_us\": {}, \"goodput_ops\": {:.0}, ",
                "\"sends_per_op\": {:.4}, \"doorbells_per_op\": {:.4} }},\n",
                "  \"rfp\": {{ \"p50_us\": {}, \"p99_us\": {}, \"goodput_ops\": {:.0}, ",
                "\"sends_per_op\": {:.4}, \"doorbells_per_op\": {:.4}, ",
                "\"deposits_per_op\": {:.4} }}\n",
                "}}\n"
            ),
            rpc.p50_us,
            rpc.p99_us,
            rpc.goodput_ops,
            rr.sends_per_op,
            rr.doorbells_per_op,
            rfp.p50_us,
            rfp.p99_us,
            rfp.goodput_ops,
            fr.sends_per_op,
            fr.doorbells_per_op,
            fr.deposits_per_op,
        ),
    );
    println!("rfp smoke OK");
}

fn rfp_sweep() {
    let mixes: Vec<(&str, OpMix)> = vec![
        ("varmail", OpMix::varmail()),
        ("webserver", OpMix::webserver()),
        ("stat-storm", OpMix::stat_storm()),
        ("oltp", OpMix::oltp()),
    ];
    let points: Vec<(&str, OpMix, bool)> = mixes
        .iter()
        .flat_map(|&(name, mix)| [(name, mix, false), (name, mix, true)])
        .collect();
    let results = parallel_sweep(points.clone(), |(_, mix, rfp)| {
        rfp_point(mix, rfp, 60, 2, 4)
    });
    let mut t = Table::new(
        "Ablation 8 — RFP reply slots vs Send replies (RW design, closed loop, \
         2 conns x 4 workers)",
        &[
            "mix",
            "replies",
            "ops/s",
            "p50 us",
            "p99 us",
            "deposits/op",
            "sends/op",
            "doorbells/op",
            "interrupts/op",
        ],
    );
    for ((name, _, rfp), r) in points.iter().zip(&results) {
        let rates = rfp_rates(r);
        t.row(&[
            name.to_string(),
            if *rfp { "RFP slots" } else { "Send" }.to_string(),
            format!("{:.0}", r.goodput_ops),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            format!("{:.3}", rates.deposits_per_op),
            format!("{:.3}", rates.sends_per_op),
            format!("{:.3}", rates.doorbells_per_op),
            format!("{:.3}", rates.interrupts_per_op),
        ]);
    }
    bench::emit("ablation_rfp", &t);
    println!(
        "Takeaway: letting the client fetch small replies out of registered \
         slots removes the server's Send (doorbell + completion) from every \
         metadata op; bulk READ/WRITE replies keep their chunks and fall \
         back, so mixed personalities land between the extremes.\n"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--batching") {
        if args.iter().any(|a| a == "--smoke") {
            batching_smoke();
        } else {
            batching_sweep();
        }
        return;
    }
    if args.iter().any(|a| a == "--write-path") {
        if args.iter().any(|a| a == "--smoke") {
            write_path_smoke();
        } else {
            write_path_sweep();
        }
        return;
    }
    if args.iter().any(|a| a == "--rfp") {
        if args.iter().any(|a| a == "--smoke") {
            rfp_smoke();
        } else {
            rfp_sweep();
        }
        return;
    }
    zero_copy_decomposition();
    ord_sensitivity();
    inline_threshold_sweep();
    credit_window_sweep();
    msgp_small_write_fast_path();
    batching_sweep();
    write_path_sweep();
    rfp_sweep();
}
