//! Figure 5: IOzone Read bandwidth on OpenSolaris — Read-Read vs
//! Read-Write, 128 KB and 1 MB records, 1–8 threads, tmpfs, direct I/O.

use bench::{emit, file_size_scaled, sweep_iozone, IozonePoint, THREADS};
use rpcrdma::{Design, StrategyKind};
use workloads::{mb, solaris_sdr, IoMode, Table};

fn main() {
    let profile = solaris_sdr();
    let mut points = Vec::new();
    for (dlabel, design) in [("RR", Design::ReadRead), ("RW", Design::ReadWrite)] {
        for (rlabel, record) in [("128K", 128 * 1024u64), ("1M", 1 << 20)] {
            for threads in THREADS {
                points.push(IozonePoint {
                    label: format!("{dlabel}-{rlabel}"),
                    profile,
                    design,
                    strategy: StrategyKind::Dynamic,
                    mode: IoMode::Read,
                    threads,
                    record,
                    file_size: file_size_scaled(),
                });
            }
        }
    }
    let results = sweep_iozone(points);

    let mut t = Table::new(
        "Figure 5 — IOzone Read Bandwidth on Solaris (MB/s)",
        &["threads", "RR-128K", "RW-128K", "RR-1M", "RW-1M"],
    );
    for (i, threads) in THREADS.iter().enumerate() {
        let col = |series: &str| -> String {
            results
                .iter()
                .find(|(p, _)| p.label == series && p.threads == *threads)
                .map(|(_, r)| mb(r.bandwidth_mb))
                .unwrap_or_default()
        };
        let _ = i;
        t.row(&[
            threads.to_string(),
            col("RR-128K"),
            col("RW-128K"),
            col("RR-1M"),
            col("RW-1M"),
        ]);
    }
    emit("fig5", &t);
    println!(
        "Paper headline: RR saturates ~375 MB/s; RW ~400 MB/s; RW ~47% faster at 1 thread (128K)."
    );
}
