//! Figure 5: IOzone Read bandwidth on OpenSolaris — Read-Read vs
//! Read-Write, 128 KB and 1 MB records, 1–8 threads, tmpfs, direct I/O.
//!
//! `--anatomy` instead runs a short traced workload per design and
//! registration strategy and emits the RPC latency anatomy: per-phase
//! p50/p99 (client marshal → registration → Send → server dispatch →
//! backend I/O → RDMA data movement → reply) plus Perfetto-loadable
//! Chrome traces in `results/trace_fig5_{rr,rw}.json`.

use bench::{emit, file_size_scaled, sweep_iozone, IozonePoint, THREADS};
use nfs::proto::NfsProc;
use rpcrdma::{Design, StrategyKind};
use sim_core::{aggregate_phases, chrome_trace_json, validate_json, Simulation, SpanRecord};
use workloads::{build_rdma, mb, run_iozone, solaris_sdr, Backend, IoMode, IozoneParams, Table};

/// Run one short traced pass and return its spans.
fn traced_pass(design: Design, strategy: StrategyKind, mode: IoMode) -> Vec<SpanRecord> {
    let profile = solaris_sdr();
    let mut sim = Simulation::new(0xF00D);
    sim.enable_span_tracing();
    let h = sim.handle();
    sim.block_on(async move {
        let bed = build_rdma(&h, &profile, design, strategy, Backend::Tmpfs, 1);
        run_iozone(
            &h,
            &bed,
            IozoneParams {
                threads_per_client: 2,
                file_size: 8 * 128 * 1024,
                record: 128 * 1024,
                mode,
                ..Default::default()
            },
        )
        .await
    });
    sim.take_spans()
}

fn proc_label(proc_num: Option<u32>) -> String {
    match proc_num {
        Some(p) => NfsProc::name_of(p)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("proc{p}")),
        None => "-".into(),
    }
}

fn anatomy() {
    let mut t = Table::new(
        "Figure 5 anatomy — per-phase RPC latency (us)",
        &[
            "design",
            "strategy",
            "proc",
            "component",
            "phase",
            "count",
            "p50_us",
            "p99_us",
        ],
    );
    for (dlabel, design) in [("RR", Design::ReadRead), ("RW", Design::ReadWrite)] {
        for (slabel, strategy) in [
            ("dynamic", StrategyKind::Dynamic),
            ("cache", StrategyKind::Cache),
        ] {
            let read_spans = traced_pass(design, strategy, IoMode::Read);
            // Dynamic runs double as the Perfetto trace export (the
            // READ pass: one complete NFS READ lifecycle per design).
            if strategy == StrategyKind::Dynamic {
                let json = chrome_trace_json(&read_spans);
                validate_json(&json).expect("trace JSON must parse");
                let path = format!("results/trace_fig5_{}.json", dlabel.to_lowercase());
                let _ = std::fs::create_dir_all("results");
                std::fs::write(&path, &json).expect("writing trace");
                println!("wrote {path} ({} spans)", read_spans.len());
            }
            let write_spans = traced_pass(design, strategy, IoMode::Write);
            // Span ids are per-simulation, so aggregate each pass on
            // its own and merge histograms by phase key.
            let mut phases = aggregate_phases(&read_spans);
            for wp in aggregate_phases(&write_spans) {
                match phases.iter_mut().find(|p| {
                    p.proc_num == wp.proc_num && p.component == wp.component && p.name == wp.name
                }) {
                    Some(p) => p.hist.merge(&wp.hist),
                    None => phases.push(wp),
                }
            }
            phases.sort_by(|a, b| {
                (a.proc_num, a.component, a.name).cmp(&(b.proc_num, b.component, b.name))
            });
            for phase in phases {
                t.row(&[
                    dlabel.to_string(),
                    slabel.to_string(),
                    proc_label(phase.proc_num),
                    phase.component.to_string(),
                    phase.name.to_string(),
                    phase.hist.count().to_string(),
                    phase.hist.quantile(0.5).as_micros().to_string(),
                    phase.hist.quantile(0.99).as_micros().to_string(),
                ]);
            }
        }
    }
    emit("fig5_anatomy", &t);
}

fn main() {
    if std::env::args().any(|a| a == "--anatomy") {
        anatomy();
        return;
    }
    let profile = solaris_sdr();
    let mut points = Vec::new();
    for (dlabel, design) in [("RR", Design::ReadRead), ("RW", Design::ReadWrite)] {
        for (rlabel, record) in [("128K", 128 * 1024u64), ("1M", 1 << 20)] {
            for threads in THREADS {
                points.push(IozonePoint {
                    label: format!("{dlabel}-{rlabel}"),
                    profile,
                    design,
                    strategy: StrategyKind::Dynamic,
                    mode: IoMode::Read,
                    threads,
                    record,
                    file_size: file_size_scaled(),
                });
            }
        }
    }
    let results = sweep_iozone(points);

    let mut t = Table::new(
        "Figure 5 — IOzone Read Bandwidth on Solaris (MB/s)",
        &["threads", "RR-128K", "RW-128K", "RR-1M", "RW-1M"],
    );
    for (i, threads) in THREADS.iter().enumerate() {
        let col = |series: &str| -> String {
            results
                .iter()
                .find(|(p, _)| p.label == series && p.threads == *threads)
                .map(|(_, r)| mb(r.bandwidth_mb))
                .unwrap_or_default()
        };
        let _ = i;
        t.row(&[
            threads.to_string(),
            col("RR-128K"),
            col("RW-128K"),
            col("RR-1M"),
            col("RW-1M"),
        ]);
    }
    emit("fig5", &t);
    println!(
        "Paper headline: RR saturates ~375 MB/s; RW ~400 MB/s; RW ~47% faster at 1 thread (128K)."
    );
}
