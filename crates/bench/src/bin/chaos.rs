//! Chaos sweep: NFS/RDMA survival under injected fabric faults.
//!
//! Full mode sweeps drop probabilities over both bulk-transfer designs
//! and reports what the recovery machinery did (drops, link and RPC
//! retransmissions, DRC replays, QP recoveries) alongside the two
//! invariants that must hold at every point: zero corrupt records and
//! exactly-once WRITE application.
//!
//! Run with `--smoke` for the fixed-seed gate used by
//! `scripts/check.sh`: both designs at 1% drop with a forced QP error,
//! plus a same-seed double run that must produce identical traces.

use rpcrdma::Design;
use sim_core::SimDuration;
use workloads::{
    linux_sdr, run_chaos, run_failover, Backend, ChaosParams, ChaosResult, FailoverParams,
    FailoverResult, Table,
};

fn params(design: Design, drop: f64, qp_errors: u32) -> ChaosParams {
    ChaosParams {
        design,
        drop_probability: drop,
        delay_jitter: SimDuration::from_micros(5),
        qp_errors,
        clients: 3,
        records_per_client: 16,
        ..ChaosParams::default()
    }
}

/// A crash-matrix point: fabric faults stay on, and on top the server's
/// storage power-fails mid-run (WAL replay + verifier bump + re-drive).
fn crash_params(design: Design, drop: f64, crash_us: u64) -> ChaosParams {
    ChaosParams {
        records_per_client: 48,
        backend: Backend::WalRaid { ram_bytes: 1 << 30 },
        server_crash_at: Some(SimDuration::from_micros(crash_us)),
        ..params(design, drop, 0)
    }
}

fn expected_writes(p: &ChaosParams) -> u64 {
    p.clients as u64 * p.records_per_client
}

fn check(tag: &str, p: &ChaosParams, r: &ChaosResult) {
    if r.corrupt_records != 0 {
        eprintln!("FAIL {tag}: {} corrupt records", r.corrupt_records);
        std::process::exit(1);
    }
    if r.fs_writes != expected_writes(p) {
        eprintln!(
            "FAIL {tag}: {} WRITEs applied, expected {} (lost or double-applied)",
            r.fs_writes,
            expected_writes(p)
        );
        std::process::exit(1);
    }
}

fn smoke() {
    let profile = linux_sdr();
    for design in [Design::ReadWrite, Design::ReadRead] {
        let p = params(design, 0.01, 1);
        let a = run_chaos(0xC0FFEE, &profile, p);
        check(&format!("{design:?}"), &p, &a);
        if a.reconnects == 0 {
            eprintln!("FAIL {design:?}: forced QP error was not recovered");
            std::process::exit(1);
        }
        let b = run_chaos(0xC0FFEE, &profile, p);
        if a.fingerprint != b.fingerprint {
            eprintln!(
                "FAIL {design:?}: same seed, different traces ({:#x} vs {:#x})",
                a.fingerprint, b.fingerprint
            );
            std::process::exit(1);
        }
        println!(
            "chaos smoke {design:?}: ok ({} drops, {} rpc retransmits, {} drc replays, {} reconnects, trace {:#018x})",
            a.drops, a.rpc_retransmits, a.drc_replays, a.reconnects, a.fingerprint
        );
    }
    // Crash-matrix gate: server storage power-fails mid-UNSTABLE-burst
    // under 1% drop. Clients must observe the verifier change at
    // COMMIT, re-drive, and read back with zero corruption — twice,
    // with identical traces.
    let p = crash_params(Design::ReadWrite, 0.01, 400);
    let a = run_chaos(0xC0FFEE, &profile, p);
    if a.corrupt_records != 0 {
        eprintln!("FAIL crash: {} corrupt records", a.corrupt_records);
        std::process::exit(1);
    }
    if a.verf_mismatches == 0 || a.redriven_writes == 0 {
        eprintln!(
            "FAIL crash: crash landed outside the burst ({} mismatches, {} re-driven)",
            a.verf_mismatches, a.redriven_writes
        );
        std::process::exit(1);
    }
    if a.wal_committed_records == 0 {
        eprintln!("FAIL crash: final COMMIT landed no WAL commit marker");
        std::process::exit(1);
    }
    let b = run_chaos(0xC0FFEE, &profile, p);
    if a.fingerprint != b.fingerprint {
        eprintln!(
            "FAIL crash: same seed, different traces ({:#x} vs {:#x})",
            a.fingerprint, b.fingerprint
        );
        std::process::exit(1);
    }
    println!(
        "chaos smoke crash: ok ({} re-driven, {} mismatches, {} WAL-committed, trace {:#018x})",
        a.redriven_writes, a.verf_mismatches, a.wal_committed_records, a.fingerprint
    );
    println!("chaos smoke: all invariants held");
}

// ---------------------------------------------------------------------
// Failover matrix: the two-node replicated cluster under seeded
// primary kills. Kill offsets are phase-anchored against the
// deterministic 8 KiB/commit-every-8 workload: ≤ ~1.79 ms lands in an
// UNSTABLE burst, ~1.8-2.0 ms lands between a client's local group
// commit and the backup's marker ack (`interrupted_markers` proves
// it), and the rejoin row brings the killed node back while the
// promoted primary is still mid-workload.
// ---------------------------------------------------------------------

const FAILOVER_SEED: u64 = 0xFA11;
/// Kill inside the UNSTABLE burst, clear of any commit marker.
const KILL_MID_BURST_US: u64 = 1500;
/// Kill between the local group commit and the backup's marker ack.
const KILL_FLUSH_MARKER_US: u64 = 1860;
/// Client stalls across a failover stay bounded by the retransmission
/// backoff plus detection; anything past this is a hang, not a stall.
const STALL_BOUND_US: u64 = 300_000;

fn failover_fail(tag: &str, msg: &str) -> ! {
    eprintln!("FAIL failover {tag}: {msg}");
    std::process::exit(1);
}

fn failover_check(tag: &str, r: &FailoverResult, expect_kill: bool) {
    if r.corrupt_records != 0 {
        failover_fail(tag, &format!("{} corrupt records", r.corrupt_records));
    }
    if expect_kill {
        if !r.promoted {
            failover_fail(tag, "backup never promoted after the kill");
        }
        if r.stall_p99_us > STALL_BOUND_US {
            failover_fail(
                tag,
                &format!(
                    "p99 client stall {}us exceeds bound {STALL_BOUND_US}us",
                    r.stall_p99_us
                ),
            );
        }
    } else if r.promoted {
        failover_fail(tag, "spurious promotion without a kill");
    }
}

fn failover_row(t: &mut Table, tag: &str, kill_us: Option<u64>, r: &FailoverResult) {
    t.row(&[
        tag.to_string(),
        kill_us.map_or_else(|| "-".into(), |k| format!("{k}us")),
        if r.promoted {
            format!("{:.2}ms", r.failover_us as f64 / 1000.0)
        } else {
            "-".into()
        },
        format!("{:.2}ms", r.stall_p99_us as f64 / 1000.0),
        r.interrupted_markers.to_string(),
        r.redriven_writes.to_string(),
        r.cross_epoch_replays.to_string(),
        format!("{}", r.resync_bytes / 1024),
        r.shipped_records.to_string(),
        format!("{:.1}", r.write_mbps),
        r.corrupt_records.to_string(),
    ]);
}

/// The determinism gate the CI satellite requires: same seed, same
/// scenario — byte-identical trace fingerprint *and* metrics snapshot.
fn failover_determinism(tag: &str, p: FailoverParams, a: &FailoverResult) {
    let b = run_failover(FAILOVER_SEED, &linux_sdr(), p);
    if a.fingerprint != b.fingerprint {
        failover_fail(
            tag,
            &format!(
                "same seed, different traces ({:#x} vs {:#x})",
                a.fingerprint, b.fingerprint
            ),
        );
    }
    if a.metrics_snapshot != b.metrics_snapshot {
        failover_fail(tag, "same seed, different metrics snapshots");
    }
}

/// Replication overhead gate: with no kill, the replicated cluster's
/// WRITE throughput must stay within 15% of the same workload with
/// replication disabled.
fn failover_overhead(t: &mut Table) -> (f64, f64) {
    let on = run_failover(FAILOVER_SEED, &linux_sdr(), FailoverParams::default());
    failover_check("steady", &on, false);
    if on.shipped_records == 0 || on.backup_applied != on.log_len {
        failover_fail(
            "steady",
            "replication idle or backup lagging in steady state",
        );
    }
    let mut p = FailoverParams::default();
    p.cluster.replicate = false;
    let off = run_failover(FAILOVER_SEED, &linux_sdr(), p);
    failover_check("repl-off", &off, false);
    failover_row(t, "steady (repl on)", None, &on);
    failover_row(t, "ablation (repl off)", None, &off);
    let ratio = on.write_mbps / off.write_mbps;
    if ratio < 0.85 {
        failover_fail(
            "overhead",
            &format!(
                "replication costs {:.1}% of WRITE throughput (> 15% budget)",
                (1.0 - ratio) * 100.0
            ),
        );
    }
    (on.write_mbps, off.write_mbps)
}

fn failover_matrix(smoke: bool) {
    let profile = linux_sdr();
    let mut t = Table::new(
        "Failover matrix — 2-node replicated cluster, 3 clients, 8 KiB UNSTABLE records, COMMIT every 8",
        &[
            "scenario",
            "kill at",
            "failover",
            "p99 stall",
            "intr markers",
            "re-driven",
            "xepoch replays",
            "resync KiB",
            "shipped",
            "MB/s",
            "corrupt",
        ],
    );

    let (on_mbps, off_mbps) = failover_overhead(&mut t);

    // Kill point 1: mid-UNSTABLE-burst, with the same-seed determinism
    // double-run (the replication CI gate).
    let p = FailoverParams {
        kill_at: Some(SimDuration::from_micros(KILL_MID_BURST_US)),
        ..FailoverParams::default()
    };
    let r = run_failover(FAILOVER_SEED, &profile, p);
    failover_check("mid-burst", &r, true);
    if r.redriven_writes == 0 {
        failover_fail("mid-burst", "kill landed outside the UNSTABLE burst");
    }
    failover_determinism("mid-burst", p, &r);
    failover_row(&mut t, "kill mid-burst", Some(KILL_MID_BURST_US), &r);

    // Kill point 2: between a client's local group commit (WAL flush +
    // marker) and the backup's commit-marker acknowledgement.
    let p = FailoverParams {
        kill_at: Some(SimDuration::from_micros(KILL_FLUSH_MARKER_US)),
        ..FailoverParams::default()
    };
    let r = run_failover(FAILOVER_SEED, &profile, p);
    failover_check("flush-marker", &r, true);
    if r.interrupted_markers == 0 {
        failover_fail(
            "flush-marker",
            "kill missed the flush-to-marker window (no interrupted markers)",
        );
    }
    failover_row(
        &mut t,
        "kill flush-to-marker",
        Some(KILL_FLUSH_MARKER_US),
        &r,
    );

    if !smoke {
        // Kill point 3: a lossy fabric around the kill, so replies the
        // failed primary already executed are retransmitted into the
        // promoted backup's replicated DRC window (cross-epoch replays).
        let p = FailoverParams {
            drop_probability: 0.05,
            kill_at: Some(SimDuration::from_micros(2000)),
            ..FailoverParams::default()
        };
        let r = run_failover(3, &profile, p);
        failover_check("drop-storm", &r, true);
        if r.cross_epoch_replays == 0 {
            failover_fail(
                "drop-storm",
                "no retransmission hit the replicated DRC window",
            );
        }
        failover_row(&mut t, "kill + 5% drops", Some(2000), &r);

        // Kill point 4: the killed node rejoins as a backup while the
        // promoted primary is still serving — promotion, resync and
        // live traffic overlap.
        let p = FailoverParams {
            records_per_client: 48,
            kill_at: Some(SimDuration::from_micros(KILL_MID_BURST_US)),
            rejoin_after: Some(SimDuration::from_millis(1)),
            ..FailoverParams::default()
        };
        let r = run_failover(FAILOVER_SEED, &profile, p);
        failover_check("rejoin", &r, true);
        if r.resync_bytes == 0 {
            failover_fail("rejoin", "rejoined node never re-synced the log tail");
        }
        failover_row(&mut t, "kill + rejoin/resync", Some(KILL_MID_BURST_US), &r);

        bench::emit("failover_matrix", &t);
    } else {
        println!("{}", t.render());
    }
    println!(
        "failover matrix: all kill points recovered with zero corruption \
         (replication overhead {:.1}% of {off_mbps:.1} MB/s)",
        (1.0 - on_mbps / off_mbps) * 100.0
    );
}

fn main() {
    let failover = std::env::args().any(|a| a == "--failover");
    let is_smoke = std::env::args().any(|a| a == "--smoke");
    if failover {
        failover_matrix(is_smoke);
        return;
    }
    if is_smoke {
        smoke();
        return;
    }
    let profile = linux_sdr();
    let drops = [0.0, 0.001, 0.005, 0.01, 0.02, 0.05];
    let mut t = Table::new(
        "Chaos sweep — 3 clients, 16 x 1 KiB records each, 1 forced QP error",
        &[
            "design",
            "drop",
            "dropped",
            "link rtx",
            "rpc rtx",
            "timeouts",
            "drc replays",
            "reconnects",
            "writes",
            "corrupt",
        ],
    );
    for design in [Design::ReadWrite, Design::ReadRead] {
        for drop in drops {
            let p = params(design, drop, 1);
            let r = run_chaos(0xC0FFEE, &profile, p);
            check(&format!("{design:?}@{drop}"), &p, &r);
            t.row(&[
                format!("{design:?}"),
                format!("{:.1}%", drop * 100.0),
                r.drops.to_string(),
                r.link_retransmits.to_string(),
                r.rpc_retransmits.to_string(),
                r.timeouts.to_string(),
                r.drc_replays.to_string(),
                r.reconnects.to_string(),
                r.fs_writes.to_string(),
                r.corrupt_records.to_string(),
            ]);
        }
    }
    bench::emit("chaos_sweep", &t);
    println!("All points completed with zero corruption and exactly-once WRITE application.");

    // Crash matrix: storage power failure at different points of the
    // UNSTABLE burst, with fabric faults on top. Re-driven records are
    // re-applied, so `writes` may legitimately exceed the logical
    // record count — corruption and determinism are the invariants.
    let mut ct = Table::new(
        "Crash matrix — server power failure mid-run (WAL backend, 3 clients, 48 x 1 KiB records each)",
        &[
            "design",
            "drop",
            "crash at",
            "rpc rtx",
            "verf mismatches",
            "re-driven",
            "wal committed",
            "writes",
            "corrupt",
        ],
    );
    for design in [Design::ReadWrite, Design::ReadRead] {
        for (drop, crash_us) in [(0.0, 200u64), (0.0, 400), (0.01, 400), (0.01, 800)] {
            let p = crash_params(design, drop, crash_us);
            let r = run_chaos(0xC0FFEE, &profile, p);
            if r.corrupt_records != 0 {
                eprintln!(
                    "FAIL crash {design:?}@{drop}/{crash_us}us: {} corrupt records",
                    r.corrupt_records
                );
                std::process::exit(1);
            }
            if r.fs_writes < expected_writes(&p) {
                eprintln!(
                    "FAIL crash {design:?}@{drop}/{crash_us}us: {} WRITEs applied, \
                     expected at least {}",
                    r.fs_writes,
                    expected_writes(&p)
                );
                std::process::exit(1);
            }
            ct.row(&[
                format!("{design:?}"),
                format!("{:.1}%", drop * 100.0),
                format!("{crash_us}us"),
                r.rpc_retransmits.to_string(),
                r.verf_mismatches.to_string(),
                r.redriven_writes.to_string(),
                r.wal_committed_records.to_string(),
                r.fs_writes.to_string(),
                r.corrupt_records.to_string(),
            ]);
        }
    }
    bench::emit("crash_matrix", &ct);
    println!("All crash points recovered with zero corruption.");
}
