//! Chaos sweep: NFS/RDMA survival under injected fabric faults.
//!
//! Full mode sweeps drop probabilities over both bulk-transfer designs
//! and reports what the recovery machinery did (drops, link and RPC
//! retransmissions, DRC replays, QP recoveries) alongside the two
//! invariants that must hold at every point: zero corrupt records and
//! exactly-once WRITE application.
//!
//! Run with `--smoke` for the fixed-seed gate used by
//! `scripts/check.sh`: both designs at 1% drop with a forced QP error,
//! plus a same-seed double run that must produce identical traces.

use rpcrdma::Design;
use sim_core::SimDuration;
use workloads::{linux_sdr, run_chaos, Backend, ChaosParams, ChaosResult, Table};

fn params(design: Design, drop: f64, qp_errors: u32) -> ChaosParams {
    ChaosParams {
        design,
        drop_probability: drop,
        delay_jitter: SimDuration::from_micros(5),
        qp_errors,
        clients: 3,
        records_per_client: 16,
        ..ChaosParams::default()
    }
}

/// A crash-matrix point: fabric faults stay on, and on top the server's
/// storage power-fails mid-run (WAL replay + verifier bump + re-drive).
fn crash_params(design: Design, drop: f64, crash_us: u64) -> ChaosParams {
    ChaosParams {
        records_per_client: 48,
        backend: Backend::WalRaid { ram_bytes: 1 << 30 },
        server_crash_at: Some(SimDuration::from_micros(crash_us)),
        ..params(design, drop, 0)
    }
}

fn expected_writes(p: &ChaosParams) -> u64 {
    p.clients as u64 * p.records_per_client
}

fn check(tag: &str, p: &ChaosParams, r: &ChaosResult) {
    if r.corrupt_records != 0 {
        eprintln!("FAIL {tag}: {} corrupt records", r.corrupt_records);
        std::process::exit(1);
    }
    if r.fs_writes != expected_writes(p) {
        eprintln!(
            "FAIL {tag}: {} WRITEs applied, expected {} (lost or double-applied)",
            r.fs_writes,
            expected_writes(p)
        );
        std::process::exit(1);
    }
}

fn smoke() {
    let profile = linux_sdr();
    for design in [Design::ReadWrite, Design::ReadRead] {
        let p = params(design, 0.01, 1);
        let a = run_chaos(0xC0FFEE, &profile, p);
        check(&format!("{design:?}"), &p, &a);
        if a.reconnects == 0 {
            eprintln!("FAIL {design:?}: forced QP error was not recovered");
            std::process::exit(1);
        }
        let b = run_chaos(0xC0FFEE, &profile, p);
        if a.fingerprint != b.fingerprint {
            eprintln!(
                "FAIL {design:?}: same seed, different traces ({:#x} vs {:#x})",
                a.fingerprint, b.fingerprint
            );
            std::process::exit(1);
        }
        println!(
            "chaos smoke {design:?}: ok ({} drops, {} rpc retransmits, {} drc replays, {} reconnects, trace {:#018x})",
            a.drops, a.rpc_retransmits, a.drc_replays, a.reconnects, a.fingerprint
        );
    }
    // Crash-matrix gate: server storage power-fails mid-UNSTABLE-burst
    // under 1% drop. Clients must observe the verifier change at
    // COMMIT, re-drive, and read back with zero corruption — twice,
    // with identical traces.
    let p = crash_params(Design::ReadWrite, 0.01, 400);
    let a = run_chaos(0xC0FFEE, &profile, p);
    if a.corrupt_records != 0 {
        eprintln!("FAIL crash: {} corrupt records", a.corrupt_records);
        std::process::exit(1);
    }
    if a.verf_mismatches == 0 || a.redriven_writes == 0 {
        eprintln!(
            "FAIL crash: crash landed outside the burst ({} mismatches, {} re-driven)",
            a.verf_mismatches, a.redriven_writes
        );
        std::process::exit(1);
    }
    if a.wal_committed_records == 0 {
        eprintln!("FAIL crash: final COMMIT landed no WAL commit marker");
        std::process::exit(1);
    }
    let b = run_chaos(0xC0FFEE, &profile, p);
    if a.fingerprint != b.fingerprint {
        eprintln!(
            "FAIL crash: same seed, different traces ({:#x} vs {:#x})",
            a.fingerprint, b.fingerprint
        );
        std::process::exit(1);
    }
    println!(
        "chaos smoke crash: ok ({} re-driven, {} mismatches, {} WAL-committed, trace {:#018x})",
        a.redriven_writes, a.verf_mismatches, a.wal_committed_records, a.fingerprint
    );
    println!("chaos smoke: all invariants held");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let profile = linux_sdr();
    let drops = [0.0, 0.001, 0.005, 0.01, 0.02, 0.05];
    let mut t = Table::new(
        "Chaos sweep — 3 clients, 16 x 1 KiB records each, 1 forced QP error",
        &[
            "design",
            "drop",
            "dropped",
            "link rtx",
            "rpc rtx",
            "timeouts",
            "drc replays",
            "reconnects",
            "writes",
            "corrupt",
        ],
    );
    for design in [Design::ReadWrite, Design::ReadRead] {
        for drop in drops {
            let p = params(design, drop, 1);
            let r = run_chaos(0xC0FFEE, &profile, p);
            check(&format!("{design:?}@{drop}"), &p, &r);
            t.row(&[
                format!("{design:?}"),
                format!("{:.1}%", drop * 100.0),
                r.drops.to_string(),
                r.link_retransmits.to_string(),
                r.rpc_retransmits.to_string(),
                r.timeouts.to_string(),
                r.drc_replays.to_string(),
                r.reconnects.to_string(),
                r.fs_writes.to_string(),
                r.corrupt_records.to_string(),
            ]);
        }
    }
    bench::emit("chaos_sweep", &t);
    println!("All points completed with zero corruption and exactly-once WRITE application.");

    // Crash matrix: storage power failure at different points of the
    // UNSTABLE burst, with fabric faults on top. Re-driven records are
    // re-applied, so `writes` may legitimately exceed the logical
    // record count — corruption and determinism are the invariants.
    let mut ct = Table::new(
        "Crash matrix — server power failure mid-run (WAL backend, 3 clients, 48 x 1 KiB records each)",
        &[
            "design",
            "drop",
            "crash at",
            "rpc rtx",
            "verf mismatches",
            "re-driven",
            "wal committed",
            "writes",
            "corrupt",
        ],
    );
    for design in [Design::ReadWrite, Design::ReadRead] {
        for (drop, crash_us) in [(0.0, 200u64), (0.0, 400), (0.01, 400), (0.01, 800)] {
            let p = crash_params(design, drop, crash_us);
            let r = run_chaos(0xC0FFEE, &profile, p);
            if r.corrupt_records != 0 {
                eprintln!(
                    "FAIL crash {design:?}@{drop}/{crash_us}us: {} corrupt records",
                    r.corrupt_records
                );
                std::process::exit(1);
            }
            if r.fs_writes < expected_writes(&p) {
                eprintln!(
                    "FAIL crash {design:?}@{drop}/{crash_us}us: {} WRITEs applied, \
                     expected at least {}",
                    r.fs_writes,
                    expected_writes(&p)
                );
                std::process::exit(1);
            }
            ct.row(&[
                format!("{design:?}"),
                format!("{:.1}%", drop * 100.0),
                format!("{crash_us}us"),
                r.rpc_retransmits.to_string(),
                r.verf_mismatches.to_string(),
                r.redriven_writes.to_string(),
                r.wal_committed_records.to_string(),
                r.fs_writes.to_string(),
                r.corrupt_records.to_string(),
            ]);
        }
    }
    bench::emit("crash_matrix", &ct);
    println!("All crash points recovered with zero corruption.");
}
