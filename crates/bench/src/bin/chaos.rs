//! Chaos sweep: NFS/RDMA survival under injected fabric faults.
//!
//! Full mode sweeps drop probabilities over both bulk-transfer designs
//! and reports what the recovery machinery did (drops, link and RPC
//! retransmissions, DRC replays, QP recoveries) alongside the two
//! invariants that must hold at every point: zero corrupt records and
//! exactly-once WRITE application.
//!
//! Run with `--smoke` for the fixed-seed gate used by
//! `scripts/check.sh`: both designs at 1% drop with a forced QP error,
//! plus a same-seed double run that must produce identical traces.

use rpcrdma::Design;
use sim_core::SimDuration;
use workloads::{
    linux_sdr, run_chaos, run_failover, Backend, ChaosParams, ChaosResult, FailoverParams,
    FailoverResult, Table,
};

fn params(design: Design, drop: f64, qp_errors: u32) -> ChaosParams {
    ChaosParams {
        design,
        drop_probability: drop,
        delay_jitter: SimDuration::from_micros(5),
        qp_errors,
        clients: 3,
        records_per_client: 16,
        ..ChaosParams::default()
    }
}

/// A crash-matrix point: fabric faults stay on, and on top the server's
/// storage power-fails mid-run (WAL replay + verifier bump + re-drive).
fn crash_params(design: Design, drop: f64, crash_us: u64) -> ChaosParams {
    ChaosParams {
        records_per_client: 48,
        backend: Backend::WalRaid { ram_bytes: 1 << 30 },
        server_crash_at: Some(SimDuration::from_micros(crash_us)),
        ..params(design, drop, 0)
    }
}

fn expected_writes(p: &ChaosParams) -> u64 {
    p.clients as u64 * p.records_per_client
}

/// Dump the run's flight-recorder ring next to the failure message and
/// exit: the last [`sim_core::FLIGHT_CAPACITY`] records of what the
/// protocol machinery did, sim-time stamped, always captured.
fn fail_with_flight(tag: &str, msg: &str, flight: &[sim_core::FlightRecord]) -> ! {
    if !flight.is_empty() {
        let name = format!(
            "flight_{}.txt",
            tag.replace([' ', '/', '@', '%'], "_").replace('.', "_")
        );
        bench::emit_results_file(&name, &sim_core::format_flight(flight));
    }
    eprintln!("FAIL {tag}: {msg}");
    std::process::exit(1);
}

fn check(tag: &str, p: &ChaosParams, r: &ChaosResult) {
    if r.corrupt_records != 0 {
        fail_with_flight(
            tag,
            &format!("{} corrupt records", r.corrupt_records),
            &r.flight,
        );
    }
    if r.fs_writes != expected_writes(p) {
        fail_with_flight(
            tag,
            &format!(
                "{} WRITEs applied, expected {} (lost or double-applied)",
                r.fs_writes,
                expected_writes(p)
            ),
            &r.flight,
        );
    }
}

fn smoke() {
    let profile = linux_sdr();
    for design in [Design::ReadWrite, Design::ReadRead] {
        let p = params(design, 0.01, 1);
        let a = run_chaos(0xC0FFEE, &profile, p);
        check(&format!("{design:?}"), &p, &a);
        if a.reconnects == 0 {
            fail_with_flight(
                &format!("{design:?}"),
                "forced QP error was not recovered",
                &a.flight,
            );
        }
        let b = run_chaos(0xC0FFEE, &profile, p);
        if a.fingerprint != b.fingerprint {
            fail_with_flight(
                &format!("{design:?}"),
                &format!(
                    "same seed, different traces ({:#x} vs {:#x})",
                    a.fingerprint, b.fingerprint
                ),
                &b.flight,
            );
        }
        println!(
            "chaos smoke {design:?}: ok ({} drops, {} rpc retransmits, {} drc replays, {} reconnects, trace {:#018x})",
            a.drops, a.rpc_retransmits, a.drc_replays, a.reconnects, a.fingerprint
        );
    }
    // Crash-matrix gate: server storage power-fails mid-UNSTABLE-burst
    // under 1% drop. Clients must observe the verifier change at
    // COMMIT, re-drive, and read back with zero corruption — twice,
    // with identical traces.
    let p = crash_params(Design::ReadWrite, 0.01, 400);
    let a = run_chaos(0xC0FFEE, &profile, p);
    if a.corrupt_records != 0 {
        fail_with_flight(
            "crash",
            &format!("{} corrupt records", a.corrupt_records),
            &a.flight,
        );
    }
    if a.verf_mismatches == 0 || a.redriven_writes == 0 {
        fail_with_flight(
            "crash",
            &format!(
                "crash landed outside the burst ({} mismatches, {} re-driven)",
                a.verf_mismatches, a.redriven_writes
            ),
            &a.flight,
        );
    }
    if a.wal_committed_records == 0 {
        fail_with_flight(
            "crash",
            "final COMMIT landed no WAL commit marker",
            &a.flight,
        );
    }
    let b = run_chaos(0xC0FFEE, &profile, p);
    if a.fingerprint != b.fingerprint {
        fail_with_flight(
            "crash",
            &format!(
                "same seed, different traces ({:#x} vs {:#x})",
                a.fingerprint, b.fingerprint
            ),
            &b.flight,
        );
    }
    println!(
        "chaos smoke crash: ok ({} re-driven, {} mismatches, {} WAL-committed, trace {:#018x})",
        a.redriven_writes, a.verf_mismatches, a.wal_committed_records, a.fingerprint
    );
    println!("chaos smoke: all invariants held");
}

// ---------------------------------------------------------------------
// Failover matrix: the two-node replicated cluster under seeded
// primary kills. Kill offsets are phase-anchored against the
// deterministic 8 KiB/commit-every-8 workload: ≤ ~1.79 ms lands in an
// UNSTABLE burst, ~1.8-2.0 ms lands between a client's local group
// commit and the backup's marker ack (`interrupted_markers` proves
// it), and the rejoin row brings the killed node back while the
// promoted primary is still mid-workload.
// ---------------------------------------------------------------------

const FAILOVER_SEED: u64 = 0xFA11;
/// Kill inside the UNSTABLE burst, clear of any commit marker.
const KILL_MID_BURST_US: u64 = 1500;
/// Kill between the local group commit and the backup's marker ack.
const KILL_FLUSH_MARKER_US: u64 = 1860;
/// Client stalls across a failover stay bounded by the retransmission
/// backoff plus detection; anything past this is a hang, not a stall.
const STALL_BOUND_US: u64 = 300_000;

fn failover_fail(tag: &str, msg: &str, flight: &[sim_core::FlightRecord]) -> ! {
    fail_with_flight(&format!("failover_{tag}"), msg, flight);
}

fn failover_check(tag: &str, r: &FailoverResult, expect_kill: bool) {
    if r.corrupt_records != 0 {
        failover_fail(
            tag,
            &format!("{} corrupt records", r.corrupt_records),
            &r.flight,
        );
    }
    if expect_kill {
        if !r.promoted {
            failover_fail(tag, "backup never promoted after the kill", &r.flight);
        }
        if r.stall_p99_us > STALL_BOUND_US {
            failover_fail(
                tag,
                &format!(
                    "p99 client stall {}us exceeds bound {STALL_BOUND_US}us",
                    r.stall_p99_us
                ),
                &r.flight,
            );
        }
    } else if r.promoted {
        failover_fail(tag, "spurious promotion without a kill", &r.flight);
    }
}

fn failover_row(t: &mut Table, tag: &str, kill_us: Option<u64>, r: &FailoverResult) {
    t.row(&[
        tag.to_string(),
        kill_us.map_or_else(|| "-".into(), |k| format!("{k}us")),
        if r.promoted {
            format!("{:.2}ms", r.failover_us as f64 / 1000.0)
        } else {
            "-".into()
        },
        format!("{:.2}ms", r.stall_p99_us as f64 / 1000.0),
        r.interrupted_markers.to_string(),
        r.redriven_writes.to_string(),
        r.cross_epoch_replays.to_string(),
        format!("{}", r.resync_bytes / 1024),
        r.shipped_records.to_string(),
        format!("{:.1}", r.write_mbps),
        r.corrupt_records.to_string(),
    ]);
}

/// The determinism gate the CI satellite requires: same seed, same
/// scenario — byte-identical trace fingerprint *and* metrics snapshot.
fn failover_determinism(tag: &str, p: FailoverParams, a: &FailoverResult) {
    let b = run_failover(FAILOVER_SEED, &linux_sdr(), p);
    if a.fingerprint != b.fingerprint {
        failover_fail(
            tag,
            &format!(
                "same seed, different traces ({:#x} vs {:#x})",
                a.fingerprint, b.fingerprint
            ),
            &b.flight,
        );
    }
    if a.metrics_snapshot != b.metrics_snapshot {
        failover_fail(tag, "same seed, different metrics snapshots", &b.flight);
    }
}

/// Replication overhead gate: with no kill, the replicated cluster's
/// WRITE throughput must stay within 15% of the same workload with
/// replication disabled.
fn failover_overhead(t: &mut Table) -> (f64, f64) {
    let on = run_failover(FAILOVER_SEED, &linux_sdr(), FailoverParams::default());
    failover_check("steady", &on, false);
    if on.shipped_records == 0 || on.backup_applied != on.log_len {
        failover_fail(
            "steady",
            "replication idle or backup lagging in steady state",
            &on.flight,
        );
    }
    let mut p = FailoverParams::default();
    p.cluster.replicate = false;
    let off = run_failover(FAILOVER_SEED, &linux_sdr(), p);
    failover_check("repl-off", &off, false);
    failover_row(t, "steady (repl on)", None, &on);
    failover_row(t, "ablation (repl off)", None, &off);
    let ratio = on.write_mbps / off.write_mbps;
    if ratio < 0.85 {
        failover_fail(
            "overhead",
            &format!(
                "replication costs {:.1}% of WRITE throughput (> 15% budget)",
                (1.0 - ratio) * 100.0
            ),
            &on.flight,
        );
    }
    (on.write_mbps, off.write_mbps)
}

/// Phase of a timeline bucket relative to the kill/promotion window.
fn timeline_phase(t_us: u64, r: &FailoverResult) -> &'static str {
    if r.killed_at_us == 0 {
        "steady"
    } else if t_us < r.killed_at_us {
        "pre"
    } else if t_us < r.promoted_at_us {
        "stall"
    } else {
        "post"
    }
}

/// Export the streaming telemetry timeline as
/// `results/timeline_failover.{csv,md}` with the promotion stall
/// window phase-annotated.
fn emit_timeline(r: &FailoverResult) {
    let mut csv = String::from(
        "t_us,phase,ops,goodput_mbps,p99_us,in_flight,ring_occupancy,wal_lag,credit_grants\n",
    );
    for b in &r.timeline {
        csv.push_str(&format!(
            "{},{},{},{:.3},{},{},{},{},{}\n",
            b.t_us,
            timeline_phase(b.t_us, r),
            b.ops,
            b.goodput_mbps,
            b.p99_us,
            b.in_flight,
            b.ring_occupancy,
            b.wal_lag,
            b.credit_grants
        ));
    }
    bench::emit_results_file("timeline_failover.csv", &csv);

    let mut md = String::from("# Failover telemetry timeline\n\n");
    md.push_str(&format!(
        "Primary killed at {} µs; promotion complete at {} µs — \
         the `stall` rows are the promotion window ({} µs).\n\n",
        r.killed_at_us,
        r.promoted_at_us,
        r.promoted_at_us.saturating_sub(r.killed_at_us)
    ));
    md.push_str(
        "| t (µs) | phase | ops | goodput MB/s | p99 (µs) | in-flight | ring occ | WAL lag | credits |\n\
         |---:|---|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    for b in &r.timeline {
        md.push_str(&format!(
            "| {} | {} | {} | {:.1} | {} | {} | {} | {} | {} |\n",
            b.t_us,
            timeline_phase(b.t_us, r),
            b.ops,
            b.goodput_mbps,
            b.p99_us,
            b.in_flight,
            b.ring_occupancy,
            b.wal_lag,
            b.credit_grants
        ));
    }
    bench::emit_results_file("timeline_failover.md", &md);
}

/// The observability acceptance run: the mid-burst kill with span
/// tracing and the telemetry timeline enabled. Exports the
/// Perfetto-loadable cluster trace and the stall timeline, asserts the
/// cross-node causal tree, and double-runs for byte-identical
/// tracing-enabled determinism. Returns the result for the benchmark
/// JSON.
fn failover_observability(profile: &workloads::Profile) -> FailoverResult {
    let p = FailoverParams {
        kill_at: Some(SimDuration::from_micros(KILL_MID_BURST_US)),
        span_trace: true,
        timeline: true,
        ..FailoverParams::default()
    };
    let r = run_failover(FAILOVER_SEED, profile, p);
    failover_check("observability", &r, true);
    let json = sim_core::chrome_trace_json(&r.spans);
    if let Err(e) = sim_core::validate_json(&json) {
        failover_fail(
            "observability",
            &format!("cluster trace JSON invalid: {e}"),
            &r.flight,
        );
    }
    if !json.contains("\"ph\":\"s\"") || !json.contains("\"ph\":\"f\",\"bp\":\"e\"") {
        failover_fail(
            "observability",
            "cluster trace carries no flow events",
            &r.flight,
        );
    }
    // One client op's causal tree must span client → primary → backup,
    // across the epoch bump.
    {
        use std::collections::{HashMap, HashSet};
        let mut roles: HashMap<u64, HashSet<&str>> = HashMap::new();
        for s in &r.spans {
            if s.trace_id != 0 {
                roles.entry(s.trace_id).or_default().insert(s.component);
            }
        }
        if !roles
            .values()
            .any(|c| c.contains("client") && c.contains("server") && c.contains("backup"))
        {
            failover_fail(
                "observability",
                "no trace id links client, primary and backup spans",
                &r.flight,
            );
        }
    }
    if r.timeline.is_empty()
        || r.promoted_at_us <= r.killed_at_us
        || !r
            .timeline
            .iter()
            .any(|b| timeline_phase(b.t_us, &r) == "stall")
    {
        failover_fail(
            "observability",
            "timeline missed the promotion stall window",
            &r.flight,
        );
    }
    // Tracing-enabled determinism: every export byte-identical on a
    // same-seed rerun.
    let b = run_failover(FAILOVER_SEED, profile, p);
    if sim_core::chrome_trace_json(&b.spans) != json
        || format!("{:?}", b.timeline) != format!("{:?}", r.timeline)
        || sim_core::format_flight(&b.flight) != sim_core::format_flight(&r.flight)
    {
        failover_fail(
            "observability",
            "tracing-enabled same-seed runs diverged",
            &b.flight,
        );
    }
    bench::emit_results_file("trace_failover_cluster.json", &json);
    emit_timeline(&r);
    println!(
        "failover observability: {} spans, {} timeline buckets, stall window {} µs",
        r.spans.len(),
        r.timeline.len(),
        r.promoted_at_us - r.killed_at_us
    );
    r
}

fn failover_matrix(smoke: bool) {
    let profile = linux_sdr();
    let mut t = Table::new(
        "Failover matrix — 2-node replicated cluster, 3 clients, 8 KiB UNSTABLE records, COMMIT every 8",
        &[
            "scenario",
            "kill at",
            "failover",
            "p99 stall",
            "intr markers",
            "re-driven",
            "xepoch replays",
            "resync KiB",
            "shipped",
            "MB/s",
            "corrupt",
        ],
    );

    let (on_mbps, off_mbps) = failover_overhead(&mut t);

    // Kill point 1: mid-UNSTABLE-burst, with the same-seed determinism
    // double-run (the replication CI gate).
    let p = FailoverParams {
        kill_at: Some(SimDuration::from_micros(KILL_MID_BURST_US)),
        ..FailoverParams::default()
    };
    let mid = run_failover(FAILOVER_SEED, &profile, p);
    failover_check("mid-burst", &mid, true);
    if mid.redriven_writes == 0 {
        failover_fail(
            "mid-burst",
            "kill landed outside the UNSTABLE burst",
            &mid.flight,
        );
    }
    failover_determinism("mid-burst", p, &mid);
    failover_row(&mut t, "kill mid-burst", Some(KILL_MID_BURST_US), &mid);

    // Kill point 2: between a client's local group commit (WAL flush +
    // marker) and the backup's commit-marker acknowledgement.
    let p = FailoverParams {
        kill_at: Some(SimDuration::from_micros(KILL_FLUSH_MARKER_US)),
        ..FailoverParams::default()
    };
    let flush = run_failover(FAILOVER_SEED, &profile, p);
    failover_check("flush-marker", &flush, true);
    if flush.interrupted_markers == 0 {
        failover_fail(
            "flush-marker",
            "kill missed the flush-to-marker window (no interrupted markers)",
            &flush.flight,
        );
    }
    failover_row(
        &mut t,
        "kill flush-to-marker",
        Some(KILL_FLUSH_MARKER_US),
        &flush,
    );

    if !smoke {
        // Kill point 3: a lossy fabric around the kill, so replies the
        // failed primary already executed are retransmitted into the
        // promoted backup's replicated DRC window (cross-epoch replays).
        let p = FailoverParams {
            drop_probability: 0.05,
            kill_at: Some(SimDuration::from_micros(2000)),
            ..FailoverParams::default()
        };
        let r = run_failover(3, &profile, p);
        failover_check("drop-storm", &r, true);
        if r.cross_epoch_replays == 0 {
            failover_fail(
                "drop-storm",
                "no retransmission hit the replicated DRC window",
                &r.flight,
            );
        }
        failover_row(&mut t, "kill + 5% drops", Some(2000), &r);

        // Kill point 4: the killed node rejoins as a backup while the
        // promoted primary is still serving — promotion, resync and
        // live traffic overlap.
        let p = FailoverParams {
            records_per_client: 48,
            kill_at: Some(SimDuration::from_micros(KILL_MID_BURST_US)),
            rejoin_after: Some(SimDuration::from_millis(1)),
            ..FailoverParams::default()
        };
        let r = run_failover(FAILOVER_SEED, &profile, p);
        failover_check("rejoin", &r, true);
        if r.resync_bytes == 0 {
            failover_fail(
                "rejoin",
                "rejoined node never re-synced the log tail",
                &r.flight,
            );
        }
        failover_row(&mut t, "kill + rejoin/resync", Some(KILL_MID_BURST_US), &r);

        bench::emit("failover_matrix", &t);
    } else {
        println!("{}", t.render());
    }

    // The observability acceptance run: Perfetto trace + telemetry
    // timeline exports, cross-node causal-tree and tracing-enabled
    // determinism gates.
    let obs = failover_observability(&profile);

    bench::emit_bench_json(
        "failover",
        &format!(
            concat!(
                "{{\n",
                "  \"bench\": \"failover\",\n",
                "  \"mode\": \"{}\",\n",
                "  \"steady\": {{\n",
                "    \"write_mbps_repl_on\": {:.3},\n",
                "    \"write_mbps_repl_off\": {:.3},\n",
                "    \"overhead_pct\": {:.2}\n",
                "  }},\n",
                "  \"mid_burst\": {{\n",
                "    \"failover_us\": {},\n",
                "    \"stall_p99_us\": {},\n",
                "    \"redriven_writes\": {},\n",
                "    \"cross_epoch_replays\": {}\n",
                "  }},\n",
                "  \"flush_marker\": {{\n",
                "    \"failover_us\": {},\n",
                "    \"stall_p99_us\": {},\n",
                "    \"interrupted_markers\": {}\n",
                "  }},\n",
                "  \"observability\": {{\n",
                "    \"spans\": {},\n",
                "    \"timeline_buckets\": {},\n",
                "    \"stall_window_us\": {},\n",
                "    \"flight_records\": {}\n",
                "  }}\n",
                "}}\n"
            ),
            if smoke { "smoke" } else { "full" },
            on_mbps,
            off_mbps,
            (1.0 - on_mbps / off_mbps) * 100.0,
            mid.failover_us,
            mid.stall_p99_us,
            mid.redriven_writes,
            mid.cross_epoch_replays,
            flush.failover_us,
            flush.stall_p99_us,
            flush.interrupted_markers,
            obs.spans.len(),
            obs.timeline.len(),
            obs.promoted_at_us - obs.killed_at_us,
            obs.flight.len(),
        ),
    );

    println!(
        "failover matrix: all kill points recovered with zero corruption \
         (replication overhead {:.1}% of {off_mbps:.1} MB/s)",
        (1.0 - on_mbps / off_mbps) * 100.0
    );
}

fn main() {
    let failover = std::env::args().any(|a| a == "--failover");
    let is_smoke = std::env::args().any(|a| a == "--smoke");
    if failover {
        failover_matrix(is_smoke);
        return;
    }
    if is_smoke {
        smoke();
        return;
    }
    let profile = linux_sdr();
    let drops = [0.0, 0.001, 0.005, 0.01, 0.02, 0.05];
    let mut t = Table::new(
        "Chaos sweep — 3 clients, 16 x 1 KiB records each, 1 forced QP error",
        &[
            "design",
            "drop",
            "dropped",
            "link rtx",
            "rpc rtx",
            "timeouts",
            "drc replays",
            "reconnects",
            "writes",
            "corrupt",
        ],
    );
    for design in [Design::ReadWrite, Design::ReadRead] {
        for drop in drops {
            let p = params(design, drop, 1);
            let r = run_chaos(0xC0FFEE, &profile, p);
            check(&format!("{design:?}@{drop}"), &p, &r);
            t.row(&[
                format!("{design:?}"),
                format!("{:.1}%", drop * 100.0),
                r.drops.to_string(),
                r.link_retransmits.to_string(),
                r.rpc_retransmits.to_string(),
                r.timeouts.to_string(),
                r.drc_replays.to_string(),
                r.reconnects.to_string(),
                r.fs_writes.to_string(),
                r.corrupt_records.to_string(),
            ]);
        }
    }
    bench::emit("chaos_sweep", &t);
    println!("All points completed with zero corruption and exactly-once WRITE application.");

    // Crash matrix: storage power failure at different points of the
    // UNSTABLE burst, with fabric faults on top. Re-driven records are
    // re-applied, so `writes` may legitimately exceed the logical
    // record count — corruption and determinism are the invariants.
    let mut ct = Table::new(
        "Crash matrix — server power failure mid-run (WAL backend, 3 clients, 48 x 1 KiB records each)",
        &[
            "design",
            "drop",
            "crash at",
            "rpc rtx",
            "verf mismatches",
            "re-driven",
            "wal committed",
            "writes",
            "corrupt",
        ],
    );
    for design in [Design::ReadWrite, Design::ReadRead] {
        for (drop, crash_us) in [(0.0, 200u64), (0.0, 400), (0.01, 400), (0.01, 800)] {
            let p = crash_params(design, drop, crash_us);
            let r = run_chaos(0xC0FFEE, &profile, p);
            if r.corrupt_records != 0 {
                eprintln!(
                    "FAIL crash {design:?}@{drop}/{crash_us}us: {} corrupt records",
                    r.corrupt_records
                );
                std::process::exit(1);
            }
            if r.fs_writes < expected_writes(&p) {
                eprintln!(
                    "FAIL crash {design:?}@{drop}/{crash_us}us: {} WRITEs applied, \
                     expected at least {}",
                    r.fs_writes,
                    expected_writes(&p)
                );
                std::process::exit(1);
            }
            ct.row(&[
                format!("{design:?}"),
                format!("{:.1}%", drop * 100.0),
                format!("{crash_us}us"),
                r.rpc_retransmits.to_string(),
                r.verf_mismatches.to_string(),
                r.redriven_writes.to_string(),
                r.wal_committed_records.to_string(),
                r.fs_writes.to_string(),
                r.corrupt_records.to_string(),
            ]);
        }
    }
    bench::emit("crash_matrix", &ct);
    println!("All crash points recovered with zero corruption.");
}
