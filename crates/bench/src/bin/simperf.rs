//! `simperf` — simulator hot-path throughput benchmark.
//!
//! Measures the two rates the executor/marshalling overhaul targets:
//!
//! - **events/sec**: task polls retired per wall-clock second while a
//!   pool of tasks churns timers and yields (exercises the ready queue,
//!   waker path and timer structure).
//! - **RPC ops/sec**: full-stack NFS READs per wall-clock second through
//!   the simulated RPC/RDMA transport (exercises header encode/decode
//!   and the per-connection send path).
//!
//! Full mode writes `results/BENCH_hotpath.json` and prints a summary.
//! Run with `--smoke` for a seconds-scale sanity pass (used by
//! scripts/check.sh) that only prints — it never overwrites the
//! published full-mode numbers.

use std::time::Instant;

use sim_core::{yield_now, Payload, SimDuration, Simulation};
use workloads::{build_rdma, solaris_sdr, Backend};

struct Config {
    /// Tasks in the executor churn pool.
    tasks: u64,
    /// Timer-sleep iterations per task.
    iters: u64,
    /// Sequential 128 KiB NFS READs.
    rpc_ops: u64,
    smoke: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        Config {
            tasks: 1_000,
            iters: 20,
            rpc_ops: 64,
            smoke,
        }
    } else {
        // 1000 tasks keep the pool cache-resident so the measurement
        // tracks executor overhead, not DRAM latency. Override via env
        // (SIMPERF_TASKS / SIMPERF_ITERS) to probe other regimes.
        Config {
            tasks: env_u64("SIMPERF_TASKS", 1_000),
            iters: env_u64("SIMPERF_ITERS", 1_000),
            rpc_ops: 4_096,
            smoke,
        }
    };

    let (polls, events_per_sec, exec_ms) = executor_throughput(&cfg);
    let (rpc_ops_per_sec, rpc_ms) = rpc_throughput(cfg.rpc_ops, false);
    let (traced_ops_per_sec, traced_overhead_pct) = trace_overhead();

    println!(
        "simperf ({} mode)",
        if cfg.smoke { "smoke" } else { "full" }
    );
    println!("  executor: {polls} polls in {exec_ms:.1} ms  ->  {events_per_sec:.0} events/sec");
    println!(
        "  rpc:      {} READs in {rpc_ms:.1} ms  ->  {rpc_ops_per_sec:.0} ops/sec",
        cfg.rpc_ops
    );
    println!(
        "  traced:   {traced_ops_per_sec:.0} ops/sec with span tracing on \
         ({traced_overhead_pct:.1}% overhead vs disabled)"
    );

    if cfg.smoke {
        // Regression gate: the disabled-tracing hot path must stay in
        // the same league as the published full-mode numbers. Smoke
        // runs are short and noisy, so the bar is a fraction of the
        // recorded rate (override with SIMPERF_GATE_RATIO; 0 disables).
        gate_against_recorded(events_per_sec);
        // Observability gate: span tracing enabled may cost at most
        // SIMPERF_TRACE_GATE_PCT percent of RPC throughput (default
        // 10; 0 disables).
        gate_trace_overhead(traced_overhead_pct);
        return; // don't clobber the full-mode results file
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"hotpath\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"executor\": {{\n",
            "    \"tasks\": {},\n",
            "    \"iters_per_task\": {},\n",
            "    \"polls\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"events_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"rpc\": {{\n",
            "    \"ops\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"ops_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"traced\": {{\n",
            "    \"ops_per_sec\": {:.0},\n",
            "    \"overhead_pct\": {:.1}\n",
            "  }}\n",
            "}}\n"
        ),
        if cfg.smoke { "smoke" } else { "full" },
        cfg.tasks,
        cfg.iters,
        polls,
        exec_ms,
        events_per_sec,
        cfg.rpc_ops,
        rpc_ms,
        rpc_ops_per_sec,
        traced_ops_per_sec,
        traced_overhead_pct,
    );
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_hotpath.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

/// Compare a smoke-mode events/sec measurement against the recorded
/// full-mode `results/BENCH_hotpath.json`, exiting nonzero when it
/// falls below `SIMPERF_GATE_RATIO` (default 0.1) of the published
/// rate. Missing file or field means there is nothing to gate against.
fn gate_against_recorded(events_per_sec: f64) {
    let ratio = std::env::var("SIMPERF_GATE_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.1);
    if ratio <= 0.0 {
        return;
    }
    let Ok(json) = std::fs::read_to_string("results/BENCH_hotpath.json") else {
        println!("  gate:     no recorded results/BENCH_hotpath.json; skipping");
        return;
    };
    let Some(recorded) = json_field_f64(&json, "events_per_sec") else {
        println!("  gate:     events_per_sec not found in recorded file; skipping");
        return;
    };
    let floor = recorded * ratio;
    if events_per_sec < floor {
        eprintln!(
            "  gate:     FAIL — {events_per_sec:.0} events/sec < {floor:.0} \
             ({ratio} x recorded {recorded:.0})"
        );
        std::process::exit(1);
    }
    println!(
        "  gate:     ok — {events_per_sec:.0} events/sec >= {floor:.0} \
         ({ratio} x recorded {recorded:.0})"
    );
}

/// Extract `"key": <number>` from a flat JSON document (first match).
fn json_field_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Measure span-tracing overhead on the RPC hot path. Runs the
/// off/on loops many times in alternating order and compares the
/// near-fastest run of each side: on a preemptible box wall-clock
/// noise only ever adds time, so the least-disturbed runs estimate
/// each side's true cost far more tightly than any mean/median of
/// individual (noisy) pairs. The *second*-smallest time per side is
/// used rather than the outright minimum, which is one lucky
/// undisturbed window away from skewing the comparison. Runs are kept
/// short (~12 ms) so whole runs fit between scheduler ticks. Returns
/// (traced ops/sec, overhead percent — negative when noise still
/// favored the traced side).
fn trace_overhead() -> (f64, f64) {
    const OPS: u64 = 1_024;
    const ROUNDS: usize = 20;
    let mut offs = Vec::with_capacity(ROUNDS);
    let mut ons = Vec::with_capacity(ROUNDS);
    for i in 0..ROUNDS {
        // Alternate which side runs first: frequency scaling and cache
        // warmth drift monotonically within a burst, so a fixed order
        // would bias one side.
        if i % 2 == 0 {
            offs.push(rpc_throughput(OPS, false).1);
            ons.push(rpc_throughput(OPS, true).1);
        } else {
            ons.push(rpc_throughput(OPS, true).1);
            offs.push(rpc_throughput(OPS, false).1);
        }
    }
    offs.sort_by(|a, b| a.total_cmp(b));
    ons.sort_by(|a, b| a.total_cmp(b));
    let (off, on) = (offs[1], ons[1]);
    let overhead = (on - off) / off * 100.0;
    (OPS as f64 / (on * 1e-3), overhead)
}

/// Gate the tracing-enabled overhead at `SIMPERF_TRACE_GATE_PCT`
/// percent (default 10; 0 disables). A reading over the limit is
/// re-measured from scratch before failing: noise can only inflate an
/// estimate, never deflate it, so the smaller of two independent
/// estimates is still an upper bound on the true overhead and a
/// transient busy spell on the box doesn't fail the gate.
fn gate_trace_overhead(overhead_pct: f64) {
    let limit = std::env::var("SIMPERF_TRACE_GATE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(10.0);
    if limit <= 0.0 {
        return;
    }
    let mut pct = overhead_pct;
    if pct > limit {
        println!("  gate:     tracing overhead {pct:.1}% > {limit:.0}%; re-measuring");
        pct = pct.min(trace_overhead().1);
    }
    if pct > limit {
        eprintln!("  gate:     FAIL — tracing overhead {pct:.1}% > {limit:.0}%");
        std::process::exit(1);
    }
    println!("  gate:     ok — tracing overhead {pct:.1}% <= {limit:.0}%");
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Timer/ready-queue churn: `tasks` tasks each sleep with scattered
/// deadlines and yield, `iters` times. Returns (polls, events/sec, ms).
fn executor_throughput(cfg: &Config) -> (u64, f64, f64) {
    let mut sim = Simulation::new(42);
    for t in 0..cfg.tasks {
        let h = sim.handle();
        let iters = cfg.iters;
        sim.spawn(async move {
            for i in 0..iters {
                // Scattered short deadlines: most land near each other
                // (dense buckets), some far (sparse), like real traffic.
                let d = (t.wrapping_mul(7919) ^ i.wrapping_mul(104_729)) % 4096 + 1;
                h.sleep(SimDuration::from_nanos(d)).await;
                yield_now().await;
            }
        });
    }
    let start = Instant::now();
    sim.run();
    let wall = start.elapsed();
    let polls = sim.polls();
    let secs = wall.as_secs_f64();
    (polls, polls as f64 / secs, secs * 1e3)
}

/// Full-stack NFS READ loop (matches the end_to_end microbench but
/// sized for a rate measurement). Only the steady-state READ loop is
/// timed — testbed construction and the prepopulating write are
/// excluded. With `traced`, span tracing is enabled for the whole run
/// so the measurement includes TraceCtx plumbing + span record append
/// costs. Returns (ops/sec, ms).
fn rpc_throughput(ops: u64, traced: bool) -> (f64, f64) {
    const RECORD: u32 = 131_072;
    const FILE: u64 = 8 << 20;
    let mut sim = Simulation::new(5);
    if traced {
        sim.enable_span_tracing();
    }
    let h = sim.handle();
    let profile = solaris_sdr();
    let secs = sim.block_on(async move {
        let bed = build_rdma(
            &h,
            &profile,
            rpcrdma::Design::ReadWrite,
            rpcrdma::StrategyKind::Cache,
            Backend::Tmpfs,
            1,
        );
        let root = bed.server.root_handle();
        let f = bed.clients[0].nfs.create(root, "simperf").await.unwrap();
        bed.fs
            .write(
                fs_backend::FileId(f.handle().0),
                0,
                Payload::synthetic(1, FILE),
            )
            .await
            .unwrap();
        let buf = bed.clients[0].mem.alloc(RECORD as u64);
        let start = Instant::now();
        for i in 0..ops {
            let off = (i % (FILE / RECORD as u64)) * RECORD as u64;
            bed.clients[0]
                .nfs
                .read(f.handle(), off, RECORD, Some((&buf, 0)))
                .await
                .unwrap();
        }
        start.elapsed().as_secs_f64()
    });
    (ops as f64 / secs, secs * 1e3)
}
