//! `simperf` — simulator hot-path throughput benchmark.
//!
//! Measures the two rates the executor/marshalling overhaul targets:
//!
//! - **events/sec**: task polls retired per wall-clock second while a
//!   pool of tasks churns timers and yields (exercises the ready queue,
//!   waker path and timer structure).
//! - **RPC ops/sec**: full-stack NFS READs per wall-clock second through
//!   the simulated RPC/RDMA transport (exercises header encode/decode
//!   and the per-connection send path).
//!
//! Full mode writes `results/BENCH_hotpath.json` and prints a summary.
//! Run with `--smoke` for a seconds-scale sanity pass (used by
//! scripts/check.sh) that only prints — it never overwrites the
//! published full-mode numbers.

use std::time::Instant;

use sim_core::{yield_now, Payload, SimDuration, Simulation};
use workloads::{build_rdma, solaris_sdr, Backend};

struct Config {
    /// Tasks in the executor churn pool.
    tasks: u64,
    /// Timer-sleep iterations per task.
    iters: u64,
    /// Sequential 128 KiB NFS READs.
    rpc_ops: u64,
    smoke: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        Config {
            tasks: 1_000,
            iters: 20,
            rpc_ops: 64,
            smoke,
        }
    } else {
        // 1000 tasks keep the pool cache-resident so the measurement
        // tracks executor overhead, not DRAM latency. Override via env
        // (SIMPERF_TASKS / SIMPERF_ITERS) to probe other regimes.
        Config {
            tasks: env_u64("SIMPERF_TASKS", 1_000),
            iters: env_u64("SIMPERF_ITERS", 1_000),
            rpc_ops: 4_096,
            smoke,
        }
    };

    let (polls, events_per_sec, exec_ms) = executor_throughput(&cfg);
    let (rpc_ops_per_sec, rpc_ms) = rpc_throughput(&cfg);

    println!(
        "simperf ({} mode)",
        if cfg.smoke { "smoke" } else { "full" }
    );
    println!("  executor: {polls} polls in {exec_ms:.1} ms  ->  {events_per_sec:.0} events/sec");
    println!(
        "  rpc:      {} READs in {rpc_ms:.1} ms  ->  {rpc_ops_per_sec:.0} ops/sec",
        cfg.rpc_ops
    );

    if cfg.smoke {
        return; // don't clobber the full-mode results file
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"hotpath\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"executor\": {{\n",
            "    \"tasks\": {},\n",
            "    \"iters_per_task\": {},\n",
            "    \"polls\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"events_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"rpc\": {{\n",
            "    \"ops\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"ops_per_sec\": {:.0}\n",
            "  }}\n",
            "}}\n"
        ),
        if cfg.smoke { "smoke" } else { "full" },
        cfg.tasks,
        cfg.iters,
        polls,
        exec_ms,
        events_per_sec,
        cfg.rpc_ops,
        rpc_ms,
        rpc_ops_per_sec,
    );
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_hotpath.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Timer/ready-queue churn: `tasks` tasks each sleep with scattered
/// deadlines and yield, `iters` times. Returns (polls, events/sec, ms).
fn executor_throughput(cfg: &Config) -> (u64, f64, f64) {
    let mut sim = Simulation::new(42);
    for t in 0..cfg.tasks {
        let h = sim.handle();
        let iters = cfg.iters;
        sim.spawn(async move {
            for i in 0..iters {
                // Scattered short deadlines: most land near each other
                // (dense buckets), some far (sparse), like real traffic.
                let d = (t.wrapping_mul(7919) ^ i.wrapping_mul(104_729)) % 4096 + 1;
                h.sleep(SimDuration::from_nanos(d)).await;
                yield_now().await;
            }
        });
    }
    let start = Instant::now();
    sim.run();
    let wall = start.elapsed();
    let polls = sim.polls();
    let secs = wall.as_secs_f64();
    (polls, polls as f64 / secs, secs * 1e3)
}

/// Full-stack NFS READ loop (matches the end_to_end microbench but
/// sized for a rate measurement). Returns (ops/sec, ms).
fn rpc_throughput(cfg: &Config) -> (f64, f64) {
    const RECORD: u32 = 131_072;
    const FILE: u64 = 8 << 20;
    let ops = cfg.rpc_ops;
    let mut sim = Simulation::new(5);
    let h = sim.handle();
    let profile = solaris_sdr();
    let start = Instant::now();
    sim.block_on(async move {
        let bed = build_rdma(
            &h,
            &profile,
            rpcrdma::Design::ReadWrite,
            rpcrdma::StrategyKind::Cache,
            Backend::Tmpfs,
            1,
        );
        let root = bed.server.root_handle();
        let f = bed.clients[0].nfs.create(root, "simperf").await.unwrap();
        bed.fs
            .write(
                fs_backend::FileId(f.handle().0),
                0,
                Payload::synthetic(1, FILE),
            )
            .await
            .unwrap();
        let buf = bed.clients[0].mem.alloc(RECORD as u64);
        for i in 0..ops {
            let off = (i % (FILE / RECORD as u64)) * RECORD as u64;
            bed.clients[0]
                .nfs
                .read(f.handle(), off, RECORD, Some((&buf, 0)))
                .await
                .unwrap();
        }
    });
    let wall = start.elapsed();
    let secs = wall.as_secs_f64();
    (ops as f64 / secs, secs * 1e3)
}
