//! `simperf` — simulator hot-path throughput benchmark.
//!
//! Measures the two rates the executor/marshalling overhaul targets:
//!
//! - **events/sec**: task polls retired per wall-clock second while a
//!   pool of tasks churns timers and yields (exercises the ready queue,
//!   waker path and timer structure).
//! - **RPC ops/sec**: full-stack NFS READs per wall-clock second through
//!   the simulated RPC/RDMA transport (exercises header encode/decode
//!   and the per-connection send path).
//!
//! Full mode writes `results/BENCH_hotpath.json` and prints a summary.
//! Run with `--smoke` for a seconds-scale sanity pass (used by
//! scripts/check.sh) that only prints — it never overwrites the
//! published full-mode numbers.

use std::time::Instant;

use sim_core::{yield_now, Payload, SimDuration, Simulation};
use workloads::{build_rdma, solaris_sdr, Backend};

struct Config {
    /// Tasks in the executor churn pool.
    tasks: u64,
    /// Timer-sleep iterations per task.
    iters: u64,
    /// Sequential 128 KiB NFS READs.
    rpc_ops: u64,
    smoke: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        Config {
            tasks: 1_000,
            iters: 20,
            rpc_ops: 64,
            smoke,
        }
    } else {
        // 1000 tasks keep the pool cache-resident so the measurement
        // tracks executor overhead, not DRAM latency. Override via env
        // (SIMPERF_TASKS / SIMPERF_ITERS) to probe other regimes.
        Config {
            tasks: env_u64("SIMPERF_TASKS", 1_000),
            iters: env_u64("SIMPERF_ITERS", 1_000),
            rpc_ops: 4_096,
            smoke,
        }
    };

    let (polls, events_per_sec, exec_ms) = executor_throughput(&cfg);
    let (rpc_ops_per_sec, rpc_ms) = rpc_throughput(&cfg);

    println!(
        "simperf ({} mode)",
        if cfg.smoke { "smoke" } else { "full" }
    );
    println!("  executor: {polls} polls in {exec_ms:.1} ms  ->  {events_per_sec:.0} events/sec");
    println!(
        "  rpc:      {} READs in {rpc_ms:.1} ms  ->  {rpc_ops_per_sec:.0} ops/sec",
        cfg.rpc_ops
    );

    if cfg.smoke {
        // Regression gate: the disabled-tracing hot path must stay in
        // the same league as the published full-mode numbers. Smoke
        // runs are short and noisy, so the bar is a fraction of the
        // recorded rate (override with SIMPERF_GATE_RATIO; 0 disables).
        gate_against_recorded(events_per_sec);
        return; // don't clobber the full-mode results file
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"hotpath\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"executor\": {{\n",
            "    \"tasks\": {},\n",
            "    \"iters_per_task\": {},\n",
            "    \"polls\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"events_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"rpc\": {{\n",
            "    \"ops\": {},\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"ops_per_sec\": {:.0}\n",
            "  }}\n",
            "}}\n"
        ),
        if cfg.smoke { "smoke" } else { "full" },
        cfg.tasks,
        cfg.iters,
        polls,
        exec_ms,
        events_per_sec,
        cfg.rpc_ops,
        rpc_ms,
        rpc_ops_per_sec,
    );
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_hotpath.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

/// Compare a smoke-mode events/sec measurement against the recorded
/// full-mode `results/BENCH_hotpath.json`, exiting nonzero when it
/// falls below `SIMPERF_GATE_RATIO` (default 0.1) of the published
/// rate. Missing file or field means there is nothing to gate against.
fn gate_against_recorded(events_per_sec: f64) {
    let ratio = std::env::var("SIMPERF_GATE_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.1);
    if ratio <= 0.0 {
        return;
    }
    let Ok(json) = std::fs::read_to_string("results/BENCH_hotpath.json") else {
        println!("  gate:     no recorded results/BENCH_hotpath.json; skipping");
        return;
    };
    let Some(recorded) = json_field_f64(&json, "events_per_sec") else {
        println!("  gate:     events_per_sec not found in recorded file; skipping");
        return;
    };
    let floor = recorded * ratio;
    if events_per_sec < floor {
        eprintln!(
            "  gate:     FAIL — {events_per_sec:.0} events/sec < {floor:.0} \
             ({ratio} x recorded {recorded:.0})"
        );
        std::process::exit(1);
    }
    println!(
        "  gate:     ok — {events_per_sec:.0} events/sec >= {floor:.0} \
         ({ratio} x recorded {recorded:.0})"
    );
}

/// Extract `"key": <number>` from a flat JSON document (first match).
fn json_field_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Timer/ready-queue churn: `tasks` tasks each sleep with scattered
/// deadlines and yield, `iters` times. Returns (polls, events/sec, ms).
fn executor_throughput(cfg: &Config) -> (u64, f64, f64) {
    let mut sim = Simulation::new(42);
    for t in 0..cfg.tasks {
        let h = sim.handle();
        let iters = cfg.iters;
        sim.spawn(async move {
            for i in 0..iters {
                // Scattered short deadlines: most land near each other
                // (dense buckets), some far (sparse), like real traffic.
                let d = (t.wrapping_mul(7919) ^ i.wrapping_mul(104_729)) % 4096 + 1;
                h.sleep(SimDuration::from_nanos(d)).await;
                yield_now().await;
            }
        });
    }
    let start = Instant::now();
    sim.run();
    let wall = start.elapsed();
    let polls = sim.polls();
    let secs = wall.as_secs_f64();
    (polls, polls as f64 / secs, secs * 1e3)
}

/// Full-stack NFS READ loop (matches the end_to_end microbench but
/// sized for a rate measurement). Returns (ops/sec, ms).
fn rpc_throughput(cfg: &Config) -> (f64, f64) {
    const RECORD: u32 = 131_072;
    const FILE: u64 = 8 << 20;
    let ops = cfg.rpc_ops;
    let mut sim = Simulation::new(5);
    let h = sim.handle();
    let profile = solaris_sdr();
    let start = Instant::now();
    sim.block_on(async move {
        let bed = build_rdma(
            &h,
            &profile,
            rpcrdma::Design::ReadWrite,
            rpcrdma::StrategyKind::Cache,
            Backend::Tmpfs,
            1,
        );
        let root = bed.server.root_handle();
        let f = bed.clients[0].nfs.create(root, "simperf").await.unwrap();
        bed.fs
            .write(
                fs_backend::FileId(f.handle().0),
                0,
                Payload::synthetic(1, FILE),
            )
            .await
            .unwrap();
        let buf = bed.clients[0].mem.alloc(RECORD as u64);
        for i in 0..ops {
            let off = (i % (FILE / RECORD as u64)) * RECORD as u64;
            bed.clients[0]
                .nfs
                .read(f.handle(), off, RECORD, Some((&buf, 0)))
                .await
                .unwrap();
        }
    });
    let wall = start.elapsed();
    let secs = wall.as_secs_f64();
    (ops as f64 / secs, secs * 1e3)
}
