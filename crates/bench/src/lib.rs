//! # bench — figure/table regeneration harnesses
//!
//! One binary per table/figure in the paper's evaluation:
//!
//! | target   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 (communication-primitive properties) |
//! | `fig5`   | IOzone Read bandwidth, Solaris, RR vs RW |
//! | `fig6`   | IOzone Write bandwidth + client CPU, RR vs RW |
//! | `fig7`   | Registration strategies on OpenSolaris (read/write + CPU) |
//! | `fig8`   | FileBench OLTP ops/s + CPU/op per strategy |
//! | `fig9`   | Registration strategies on Linux (incl. all-physical) |
//! | `fig10`  | Multi-client aggregate read bandwidth, 4 GB / 8 GB server |
//! | `all`    | everything above, writing `results/*.{md,csv}` |
//!
//! Parameter points run in parallel (independent simulations on OS
//! threads) via [`sim_core::sweep::parallel_sweep`]; results are
//! deterministic per seed.

#![forbid(unsafe_code)]

use rpcrdma::{Design, StrategyKind};
use sim_core::sweep::parallel_sweep;
use sim_core::Simulation;
use workloads::{
    build_rdma, run_iozone, Backend, IoMode, IozoneParams, IozoneResult, Profile, Table,
};

/// One IOzone parameter point.
#[derive(Clone, Debug)]
pub struct IozonePoint {
    /// Row/series label.
    pub label: String,
    /// Host profile.
    pub profile: Profile,
    /// Transport design.
    pub design: Design,
    /// Registration strategy.
    pub strategy: StrategyKind,
    /// Read or write.
    pub mode: IoMode,
    /// Threads on the (single) client.
    pub threads: u32,
    /// Record size.
    pub record: u64,
    /// File size per thread.
    pub file_size: u64,
}

/// Run one IOzone point in a fresh deterministic simulation.
pub fn run_iozone_point(seed: u64, p: &IozonePoint) -> IozoneResult {
    let mut sim = Simulation::new(seed);
    let h = sim.handle();
    let p = p.clone();
    sim.block_on(async move {
        let bed = build_rdma(&h, &p.profile, p.design, p.strategy, Backend::Tmpfs, 1);
        run_iozone(
            &h,
            &bed,
            IozoneParams {
                threads_per_client: p.threads,
                file_size: p.file_size,
                record: p.record,
                mode: p.mode,
                ..Default::default()
            },
        )
        .await
    })
}

/// Run a set of points in parallel, preserving order.
pub fn sweep_iozone(points: Vec<IozonePoint>) -> Vec<(IozonePoint, IozoneResult)> {
    let results = parallel_sweep(points.clone(), |p| run_iozone_point(0xF00D, &p));
    points.into_iter().zip(results).collect()
}

/// The standard per-thread file size used by the paper (128 MB).
pub const PAPER_FILE_SIZE: u64 = 128 << 20;

/// Thread counts swept in Figures 5-9.
pub const THREADS: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Write a rendered table to stdout and `results/<name>.{md,csv}`.
pub fn emit(name: &str, table: &Table) {
    let md = table.render();
    println!("{md}");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join(format!("{name}.md")), &md);
    let _ = std::fs::write(dir.join(format!("{name}.csv")), table.to_csv());
}

/// Write a hand-rolled JSON benchmark artifact to
/// `results/BENCH_<name>.json` (the flat schema established by
/// `BENCH_hotpath.json`: a `"bench"` tag, a `"mode"` tag, then numeric
/// fields grouped in at most one level of sections).
pub fn emit_bench_json(name: &str, json: &str) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

/// Write an arbitrary artifact (trace JSON, timeline CSV, flight dump)
/// to `results/<name>`.
pub fn emit_results_file(name: &str, contents: &str) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

/// Scale factor for quick runs: `QUICK=1` divides file sizes by 8.
pub fn file_size_scaled() -> u64 {
    if std::env::var("QUICK").is_ok() {
        PAPER_FILE_SIZE / 8
    } else {
        PAPER_FILE_SIZE
    }
}
