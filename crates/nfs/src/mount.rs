//! The MOUNT protocol (RFC 1813 Appendix I, program 100005 v3).
//!
//! Real NFS deployments obtain the root file handle by asking mountd,
//! not by magic. This module implements the subset clients need —
//! `MNT`, `UMNT`, `EXPORT`, `DUMP` — as a [`BulkService`] that shares
//! the transport endpoint with the NFS program via
//! [`onc_rpc::ServiceRegistry`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use onc_rpc::{AcceptStat, BulkDispatch, BulkService, CallContext, LocalBoxFuture};
use xdr::{Decoder, Encoder, XdrCodec};

use crate::proto::FileHandle;

/// MOUNT program number.
pub const MOUNT_PROGRAM: u32 = 100_005;
/// MOUNT protocol version served.
pub const MOUNT_VERSION: u32 = 3;

/// MOUNT procedures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum MountProc {
    Null = 0,
    Mnt = 1,
    Dump = 2,
    Umnt = 3,
    Export = 5,
}

/// Mount status codes (subset of mountstat3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum MountStat {
    Ok = 0,
    NoEnt = 2,
    Access = 13,
}

impl MountStat {
    fn from_u32(v: u32) -> xdr::Result<MountStat> {
        Ok(match v {
            0 => MountStat::Ok,
            2 => MountStat::NoEnt,
            13 => MountStat::Access,
            d => return Err(xdr::XdrError::BadDiscriminant(d)),
        })
    }
}

/// The mount daemon: an export table plus the active-mount list that
/// `DUMP` reports.
pub struct Mountd {
    exports: RefCell<HashMap<String, FileHandle>>,
    /// (client node, path) pairs currently mounted.
    mounts: RefCell<Vec<(u32, String)>>,
}

impl Mountd {
    /// A mountd with no exports.
    pub fn new() -> Rc<Mountd> {
        Rc::new(Mountd {
            exports: RefCell::new(HashMap::new()),
            mounts: RefCell::new(Vec::new()),
        })
    }

    /// Export `path` as `root`.
    pub fn export(&self, path: &str, root: FileHandle) {
        self.exports.borrow_mut().insert(path.to_string(), root);
    }

    /// Currently mounted (client, path) pairs.
    pub fn active_mounts(&self) -> Vec<(u32, String)> {
        self.mounts.borrow().clone()
    }

    fn mnt(&self, peer: u32, path: &str) -> Result<FileHandle, MountStat> {
        match self.exports.borrow().get(path) {
            Some(&fh) => {
                self.mounts.borrow_mut().push((peer, path.to_string()));
                Ok(fh)
            }
            None => Err(MountStat::NoEnt),
        }
    }

    fn umnt(&self, peer: u32, path: &str) {
        self.mounts
            .borrow_mut()
            .retain(|(p, pa)| !(*p == peer && pa == path));
    }
}

/// Service handle registering mountd with a transport.
#[derive(Clone)]
pub struct MountdHandle(pub Rc<Mountd>);

impl BulkService for MountdHandle {
    fn program(&self) -> u32 {
        MOUNT_PROGRAM
    }
    fn version(&self) -> u32 {
        MOUNT_VERSION
    }
    fn call(
        &self,
        cx: CallContext,
        proc_num: u32,
        args: Bytes,
        _bulk_in: Option<sim_core::SgList>,
    ) -> LocalBoxFuture<BulkDispatch> {
        let mountd = self.0.clone();
        Box::pin(async move {
            match proc_num {
                0 => BulkDispatch::success(Bytes::new(), None), // NULL
                // MNT: dirpath -> (status, fhandle)
                1 => {
                    let mut dec = Decoder::new(&args);
                    let Ok(path) = dec.get_string() else {
                        return BulkDispatch::error(AcceptStat::GarbageArgs);
                    };
                    let mut enc = Encoder::new();
                    match mountd.mnt(cx.peer, &path) {
                        Ok(fh) => {
                            enc.put_u32(MountStat::Ok as u32);
                            fh.encode(&mut enc);
                            // auth flavors accepted: [AUTH_NONE]
                            enc.put_array(&[0u32], |e, v| {
                                e.put_u32(*v);
                            });
                        }
                        Err(st) => {
                            enc.put_u32(st as u32);
                        }
                    }
                    BulkDispatch::success(enc.finish(), None)
                }
                // DUMP: list of (hostname, dirpath)
                2 => {
                    let mut enc = Encoder::new();
                    let mounts = mountd.active_mounts();
                    enc.put_array(&mounts, |e, (peer, path)| {
                        e.put_string(&format!("client{peer}"));
                        e.put_string(path);
                    });
                    BulkDispatch::success(enc.finish(), None)
                }
                // UMNT: dirpath -> void
                3 => {
                    let mut dec = Decoder::new(&args);
                    let Ok(path) = dec.get_string() else {
                        return BulkDispatch::error(AcceptStat::GarbageArgs);
                    };
                    mountd.umnt(cx.peer, &path);
                    BulkDispatch::success(Bytes::new(), None)
                }
                // EXPORT: list of dirpaths
                5 => {
                    let mut paths: Vec<String> = mountd.exports.borrow().keys().cloned().collect();
                    paths.sort();
                    let mut enc = Encoder::new();
                    enc.put_array(&paths, |e, p| {
                        e.put_string(p);
                    });
                    BulkDispatch::success(enc.finish(), None)
                }
                _ => BulkDispatch::error(AcceptStat::ProcUnavail),
            }
        })
    }
}

type MountCallFn = Box<dyn Fn(u32, Bytes) -> LocalBoxFuture<Result<Bytes, onc_rpc::RpcError>>>;

/// Client-side mount operations over either transport.
pub struct MountClient {
    call: MountCallFn,
}

impl MountClient {
    /// Over RPC/RDMA.
    pub fn over_rdma(client: rpcrdma::RdmaRpcClient) -> MountClient {
        MountClient {
            call: Box::new(move |proc_num, args| {
                let client = client.clone();
                Box::pin(async move {
                    let reply = client
                        .call_as(
                            MOUNT_PROGRAM,
                            MOUNT_VERSION,
                            proc_num,
                            args,
                            rpcrdma::BulkParams::default(),
                        )
                        .await?;
                    Ok(reply.body)
                })
            }),
        }
    }

    /// Over TCP.
    pub fn over_tcp(client: Rc<onc_rpc::StreamRpcClient>) -> MountClient {
        MountClient {
            call: Box::new(move |proc_num, args| {
                let client = client.clone();
                Box::pin(async move {
                    let (body, _) = client
                        .call_as(MOUNT_PROGRAM, MOUNT_VERSION, proc_num, args, None)
                        .await?;
                    Ok(body)
                })
            }),
        }
    }

    /// Mount `path`, returning the export's root file handle.
    pub async fn mnt(&self, path: &str) -> Result<FileHandle, crate::NfsError> {
        let mut enc = Encoder::new();
        enc.put_string(path);
        let body = (self.call)(MountProc::Mnt as u32, enc.finish())
            .await
            .map_err(crate::NfsError::Rpc)?;
        let mut dec = Decoder::new(&body);
        let stat = MountStat::from_u32(dec.get_u32().map_err(|_| crate::NfsError::Protocol)?)
            .map_err(|_| crate::NfsError::Protocol)?;
        if stat != MountStat::Ok {
            return Err(crate::NfsError::Status(crate::NfsStat::NoEnt));
        }
        let fh = FileHandle::decode(&mut dec).map_err(|_| crate::NfsError::Protocol)?;
        Ok(fh)
    }

    /// Unmount `path`.
    pub async fn umnt(&self, path: &str) -> Result<(), crate::NfsError> {
        let mut enc = Encoder::new();
        enc.put_string(path);
        (self.call)(MountProc::Umnt as u32, enc.finish())
            .await
            .map_err(crate::NfsError::Rpc)?;
        Ok(())
    }

    /// List the server's exports.
    pub async fn exports(&self) -> Result<Vec<String>, crate::NfsError> {
        let body = (self.call)(MountProc::Export as u32, Bytes::new())
            .await
            .map_err(crate::NfsError::Rpc)?;
        let mut dec = Decoder::new(&body);
        dec.get_array(|d| d.get_string())
            .map_err(|_| crate::NfsError::Protocol)
    }

    /// List active mounts (DUMP).
    pub async fn dump(&self) -> Result<Vec<(String, String)>, crate::NfsError> {
        let body = (self.call)(MountProc::Dump as u32, Bytes::new())
            .await
            .map_err(crate::NfsError::Rpc)?;
        let mut dec = Decoder::new(&body);
        dec.get_array(|d| Ok((d.get_string()?, d.get_string()?)))
            .map_err(|_| crate::NfsError::Protocol)
    }
}
