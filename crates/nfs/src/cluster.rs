//! Primary/backup replication for the NFS server.
//!
//! The cluster layer ties the one-sided replication channel
//! ([`rpcrdma::repl`]) to the NFS protocol engine:
//!
//! * [`ReplRecord`] — the unit shipped through the backup's log ring:
//!   one successful mutating NFS call (procedure, arguments, the bulk
//!   WRITE payload, and the primary's reply head for DRC mirroring).
//! * [`Replicator`] — the primary-side sequencer. Every record is
//!   appended to an in-memory replicated log and RDMA-written into the
//!   backup's ring *before* the client sees the reply; commit markers
//!   (`needs_ack`) additionally wait for the backup's cumulative ack
//!   counter, so COMMIT only returns once the marker is durable on
//!   both nodes.
//! * [`run_backup`] — the backup-side consumer: applies each record
//!   through the backup's own [`NfsServer`], mirrors the primary's
//!   reply into the duplicate request cache (so a retransmission that
//!   lands *after* failover replays instead of re-executing), and
//!   publishes flow-control credits and acks back into the primary's
//!   control block — also one-sided, so no message of the protocol can
//!   be dropped by an overloaded ULP.
//! * [`ClusterMount`] — the client-visible cluster identity: which
//!   node is primary, the service epoch, and the boot counter that
//!   keeps RFC 1813 write verifiers strictly monotonic across
//!   promotions.
//! * [`promote_backup`] — the promotion sequence: fence the deposed
//!   primary by revoking the ring registration (a permission flip, no
//!   ack round), drain the replicated prefix, group-commit it, then
//!   take over the service identity under a fresh epoch and verifier.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use rpcrdma::{LogRing, RdmaRpcServer, ReplError, RingTarget, Shipper, RING_SENTINEL};
use sim_core::sync::{Notify, SemPermit, Semaphore};
use sim_core::{Payload, Sim, TraceCtx};

use crate::proto::{NfsProc, NFS_PROGRAM, NFS_VERSION};
use crate::server::{NfsServer, WRITE_VERF_BASE};

/// Fixed wire header of a [`ReplRecord`]: seq (8) + six u32 fields +
/// bulk length (8).
const RECORD_HDR: u64 = 8 + 6 * 4 + 8;

/// Flags bit marking a record that carries a 16-byte [`TraceCtx`]
/// trailer after the bulk data. Conditional so untraced encodes stay
/// byte-identical to the pre-tracing wire format (and so tracing off
/// perturbs no modeled transfer time).
const FLAG_TRACED: u32 = 4;

/// Byte length of the optional trace trailer: trace id + parent span.
const TRACE_TRAILER: u64 = 16;

/// One replicated mutation, exactly as the primary executed it.
#[derive(Clone)]
pub struct ReplRecord {
    /// 1-based position in the replicated log.
    pub seq: u64,
    /// NFS procedure number.
    pub proc_num: u32,
    /// Calling client (fabric node id) — DRC key part.
    pub peer: u32,
    /// Transaction id of the call — DRC key part.
    pub xid: u32,
    /// Service epoch the call executed under — DRC key part.
    pub epoch: u32,
    /// Commit marker: the primary waits for the backup's ack before
    /// releasing the reply.
    pub needs_ack: bool,
    /// The record is a WRITE (carries bulk data).
    pub is_write: bool,
    /// XDR-encoded call arguments (bulk excluded).
    pub args: Bytes,
    /// The primary's reply head, mirrored into the backup's DRC.
    pub reply_head: Bytes,
    /// WRITE data (content-preserving, possibly synthetic).
    pub bulk: Option<Payload>,
    /// Trace context of the primary's service span
    /// ([`TraceCtx::NONE`] when span tracing was off): the backup's
    /// apply span joins the client's causal tree through it.
    pub trace: TraceCtx,
}

impl ReplRecord {
    /// Serialize into one contiguous payload for the ring deposit. The
    /// bulk piece rides as-is (no flattening of synthetic content). A
    /// non-empty trace context appends a [`TRACE_TRAILER`] behind the
    /// bulk, gated by [`FLAG_TRACED`].
    pub fn encode(&self) -> Payload {
        let bulk_len = self.bulk.as_ref().map_or(0, Payload::len);
        let mut flags = 0u32;
        if self.needs_ack {
            flags |= 1;
        }
        if self.is_write {
            flags |= 2;
        }
        let traced = self.trace.trace_id != 0;
        if traced {
            flags |= FLAG_TRACED;
        }
        let mut h =
            Vec::with_capacity(RECORD_HDR as usize + self.args.len() + self.reply_head.len());
        h.extend_from_slice(&self.seq.to_be_bytes());
        h.extend_from_slice(&self.proc_num.to_be_bytes());
        h.extend_from_slice(&self.peer.to_be_bytes());
        h.extend_from_slice(&self.xid.to_be_bytes());
        h.extend_from_slice(&self.epoch.to_be_bytes());
        h.extend_from_slice(&flags.to_be_bytes());
        h.extend_from_slice(&(self.args.len() as u32).to_be_bytes());
        h.extend_from_slice(&bulk_len.to_be_bytes());
        h.extend_from_slice(&self.args);
        h.extend_from_slice(&self.reply_head);
        let trailer = traced.then(|| {
            let mut t = Vec::with_capacity(TRACE_TRAILER as usize);
            t.extend_from_slice(&self.trace.trace_id.to_be_bytes());
            t.extend_from_slice(&self.trace.parent_span.to_be_bytes());
            Payload::real(Bytes::from(t))
        });
        let head = Payload::real(Bytes::from(h));
        match (&self.bulk, trailer) {
            (Some(b), Some(t)) => Payload::concat(&[head, b.clone(), t]),
            (Some(b), None) => Payload::concat(&[head, b.clone()]),
            (None, Some(t)) => Payload::concat(&[head, t]),
            (None, None) => head,
        }
    }

    /// Decode a ring deposit produced by [`ReplRecord::encode`].
    pub fn decode(p: &Payload) -> ReplRecord {
        let hdr = p.slice(0, RECORD_HDR).materialize();
        let u64_at = |i: usize| u64::from_be_bytes(hdr[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_be_bytes(hdr[i..i + 4].try_into().unwrap());
        let seq = u64_at(0);
        let proc_num = u32_at(8);
        let peer = u32_at(12);
        let xid = u32_at(16);
        let epoch = u32_at(20);
        let flags = u32_at(24);
        let args_len = u32_at(28) as u64;
        let bulk_len = u64_at(32);
        let trailer_len = if flags & FLAG_TRACED != 0 {
            TRACE_TRAILER
        } else {
            0
        };
        let args = p.slice(RECORD_HDR, args_len).materialize();
        let reply_len = p.len() - RECORD_HDR - args_len - bulk_len - trailer_len;
        let reply_head = p.slice(RECORD_HDR + args_len, reply_len).materialize();
        let bulk = (bulk_len > 0).then(|| p.slice(RECORD_HDR + args_len + reply_len, bulk_len));
        let trace = if trailer_len > 0 {
            let t = p
                .slice(p.len() - TRACE_TRAILER, TRACE_TRAILER)
                .materialize();
            TraceCtx {
                trace_id: u64::from_be_bytes(t[0..8].try_into().unwrap()),
                parent_span: u64::from_be_bytes(t[8..16].try_into().unwrap()),
            }
        } else {
            TraceCtx::NONE
        };
        ReplRecord {
            seq,
            proc_num,
            peer,
            xid,
            epoch,
            needs_ack: flags & 1 != 0,
            is_write: flags & 2 != 0,
            args,
            reply_head,
            bulk,
            trace,
        }
    }
}

/// One entry of the replicated log kept on both nodes.
struct LogEntry {
    /// The encoded record, re-shippable verbatim during rejoin resync.
    bytes: Payload,
    /// Local-WAL committed-record count snapshot at this marker (0 for
    /// non-markers): the rejoin truncation point.
    wal_cut: u64,
}

/// Replicator statistics (plain cells; the wire-side counters live in
/// [`rpcrdma::ShipperStats`]).
#[derive(Default)]
pub struct ReplicatorStats {
    /// Records appended to the replicated log.
    pub logged: Cell<u64>,
    /// Commit markers whose backup ack was awaited successfully.
    pub acked_markers: Cell<u64>,
    /// Commit markers caught by a kill between the local group commit
    /// (flush + local marker) and the backup's acknowledgement — the
    /// "flush-to-marker" window of the chaos matrix.
    pub interrupted_markers: Cell<u64>,
    /// Records re-shipped during a rejoin catch-up.
    pub resync_records: Cell<u64>,
}

/// Primary-side sequencer of the replicated log.
///
/// Detached (no [`Shipper`]) it runs in logging-only mode: records are
/// appended so a later rejoining backup can be caught up, and local
/// durability counts as cluster durability (there is no backup to
/// wait for). This is the mode a freshly promoted primary runs in
/// until the crashed node rejoins.
pub struct Replicator {
    shipper: RefCell<Option<Rc<Shipper>>>,
    /// Serializes sequence assignment + ring deposit so ring order is
    /// log order; markers additionally hold it across their local
    /// group commit (see [`Replicator::begin_marker`]).
    lock: Semaphore,
    log: RefCell<Vec<LogEntry>>,
    /// Highest seq known durable on *both* nodes. Advances only after
    /// a marker's backup ack (or immediately, when logging-only).
    durable: Cell<u64>,
    epoch: Cell<u32>,
    /// Snapshot of the local WAL's committed-record count, taken at
    /// marker append time (inside the lock, after the group commit).
    wal_cut: RefCell<Option<Box<dyn Fn() -> u64>>>,
    /// Statistics.
    pub stats: ReplicatorStats,
}

impl Replicator {
    /// A detached (logging-only) replicator at epoch 0.
    pub fn new() -> Rc<Replicator> {
        Rc::new(Replicator {
            shipper: RefCell::new(None),
            lock: Semaphore::new(1),
            log: RefCell::new(Vec::new()),
            durable: Cell::new(0),
            epoch: Cell::new(0),
            wal_cut: RefCell::new(None),
            stats: ReplicatorStats::default(),
        })
    }

    /// Install (or clear) the shipping channel to the backup.
    pub fn set_shipper(&self, s: Option<Rc<Shipper>>) {
        *self.shipper.borrow_mut() = s;
    }

    /// Install the local-WAL committed-record counter used to stamp
    /// markers with their rejoin truncation point.
    pub fn set_wal_cut(&self, f: impl Fn() -> u64 + 'static) {
        *self.wal_cut.borrow_mut() = Some(Box::new(f));
    }

    /// Service epoch stamped on new records.
    pub fn epoch(&self) -> u32 {
        self.epoch.get()
    }

    /// Adopt a new service epoch (promotion).
    pub fn set_epoch(&self, e: u32) {
        self.epoch.set(e);
    }

    /// Records in the replicated log.
    pub fn log_len(&self) -> u64 {
        self.log.borrow().len() as u64
    }

    /// Highest cluster-durable sequence number.
    pub fn durable_seq(&self) -> u64 {
        self.durable.get()
    }

    /// Raise the cluster-durable watermark (never lowers it).
    pub fn set_durable(&self, seq: u64) {
        if seq > self.durable.get() {
            self.durable.set(seq);
        }
    }

    /// The local-WAL committed-record count recorded at the marker
    /// closing the durable prefix `0..seq` — how many WAL records a
    /// rejoining node may trust from its own log.
    pub fn marker_wal_cut(&self, seq: u64) -> u64 {
        if seq == 0 {
            return 0;
        }
        self.log.borrow()[seq as usize - 1].wal_cut
    }

    /// Drop every record past `seq` (rejoin: anything beyond the
    /// cluster-durable prefix died with this node and will be
    /// re-shipped by the new primary).
    pub fn truncate_log(&self, seq: u64) {
        self.log.borrow_mut().truncate(seq as usize);
    }

    /// Acquire the sequencing lock *before* a marker's local group
    /// commit. Holding it across `fs.commit()` guarantees that every
    /// record sequenced before the marker has its WAL appends inside
    /// the marker's committed set — the invariant `marker_wal_cut`
    /// truncation relies on.
    pub async fn begin_marker(&self) -> SemPermit {
        self.lock.acquire().await
    }

    /// Sequence, log, and ship one record; for markers, wait for the
    /// backup's ack before returning (the caller is holding the reply).
    #[allow(clippy::too_many_arguments)]
    pub async fn replicate(
        &self,
        permit: Option<SemPermit>,
        proc_num: u32,
        peer: u32,
        xid: u32,
        args: Bytes,
        reply_head: Bytes,
        bulk: Option<Payload>,
        needs_ack: bool,
        trace: TraceCtx,
    ) {
        let permit = match permit {
            Some(p) => p,
            None => self.lock.acquire().await,
        };
        let seq = self.log.borrow().len() as u64 + 1;
        let rec = ReplRecord {
            seq,
            proc_num,
            peer,
            xid,
            epoch: self.epoch.get(),
            needs_ack,
            is_write: proc_num == NfsProc::Write as u32,
            args,
            reply_head,
            bulk,
            trace,
        };
        let bytes = rec.encode();
        let wal_cut = if needs_ack {
            self.wal_cut.borrow().as_ref().map_or(0, |f| f())
        } else {
            0
        };
        self.log.borrow_mut().push(LogEntry {
            bytes: bytes.clone(),
            wal_cut,
        });
        self.stats.logged.set(self.stats.logged.get() + 1);
        let shipper = self.shipper.borrow().clone();
        let shipped = match &shipper {
            Some(s) => s.ship(bytes).await.is_ok(),
            None => false,
        };
        drop(permit);
        if needs_ack {
            match &shipper {
                Some(s) if shipped => {
                    if s.wait_acked(seq).await.is_ok() {
                        self.set_durable(seq);
                        self.stats
                            .acked_markers
                            .set(self.stats.acked_markers.get() + 1);
                    } else {
                        // A poisoned/fenced channel: this node has been
                        // deposed mid-marker; the reply will die on its
                        // errored QP.
                        self.stats
                            .interrupted_markers
                            .set(self.stats.interrupted_markers.get() + 1);
                    }
                }
                Some(_) => {
                    // The deposit itself died (kill landed even
                    // earlier in the window).
                    self.stats
                        .interrupted_markers
                        .set(self.stats.interrupted_markers.get() + 1);
                }
                None => {
                    // Logging-only: local durability is cluster
                    // durability until a backup rejoins.
                    self.set_durable(seq);
                }
            }
        }
    }

    /// Mirror one applied record into this (backup) node's own log so
    /// a later promotion inherits the full replicated history.
    pub fn append_mirror(&self, rec: &ReplRecord, bytes: Payload) {
        let expect = self.log.borrow().len() as u64 + 1;
        assert_eq!(rec.seq, expect, "replicated log gap at seq {}", rec.seq);
        let wal_cut = if rec.needs_ack {
            self.wal_cut.borrow().as_ref().map_or(0, |f| f())
        } else {
            0
        };
        self.log.borrow_mut().push(LogEntry { bytes, wal_cut });
        self.stats.logged.set(self.stats.logged.get() + 1);
    }

    /// Rejoin catch-up: install `shipper`, attach `ring` (the restarted
    /// node's fresh log ring), and re-ship every record past `from_seq`
    /// verbatim — all under the sequencing lock, so live mutations
    /// queue behind the resync and ring order stays log order. Returns
    /// the bytes re-shipped.
    pub async fn resync_attach(
        &self,
        shipper: Rc<Shipper>,
        ring: RingTarget,
        from_seq: u64,
    ) -> Result<u64, ReplError> {
        let _permit = self.lock.acquire().await;
        shipper.attach(ring);
        *self.shipper.borrow_mut() = Some(shipper.clone());
        let suffix: Vec<Payload> = self.log.borrow()[from_seq as usize..]
            .iter()
            .map(|e| e.bytes.clone())
            .collect();
        let mut bytes = 0;
        for p in suffix {
            bytes += p.len();
            shipper.ship(p).await?;
            self.stats
                .resync_records
                .set(self.stats.resync_records.get() + 1);
        }
        Ok(bytes)
    }
}

/// Progress/exit state of a backup consumer task.
pub struct BackupSession {
    /// Count of records applied so far (equals the replicated log
    /// length once the consumer has drained).
    pub applied: Cell<u64>,
    finished: Cell<bool>,
    notify: Notify,
}

impl BackupSession {
    /// A fresh session (nothing applied, consumer running).
    pub fn new() -> Rc<BackupSession> {
        Rc::new(BackupSession {
            applied: Cell::new(0),
            finished: Cell::new(false),
            notify: Notify::new(),
        })
    }

    /// Wait until the consumer has drained the ring and exited (it
    /// stops at the promotion sentinel).
    pub async fn drained(&self) {
        while !self.finished.get() {
            self.notify.notified().await;
        }
    }

    /// Wait until at least `want` records have been applied — lets a
    /// steady-state observer catch the tail of backgrounded applies
    /// without tearing the consumer down.
    pub async fn caught_up(&self, want: u64) {
        while self.applied.get() < want {
            self.notify.notified().await;
        }
    }
}

/// The backup consumer loop: apply each ring deposit through the
/// backup's own NFS server, mirror the primary's reply into the DRC,
/// and publish credits/acks one-sidedly into the primary's control
/// block. Exits at the promotion sentinel.
///
/// Plain UNSTABLE WRITE records apply *concurrently* (each is spawned;
/// the consumer keeps draining the ring): a client's own records are
/// inherently serial — it never has two calls in flight — so the only
/// ordering that matters is against structural ops (CREATE/REMOVE/…)
/// and commit markers, both of which barrier on every outstanding
/// apply before running. Without this the single consumer would apply
/// one record per CPU-copy while the primary serves clients across all
/// its cores, and every marker would pay the accumulated lag.
#[allow(clippy::too_many_arguments)]
pub async fn run_backup(
    sim: Sim,
    ring: Rc<LogRing>,
    ctrl: Rc<rpcrdma::CtrlWriter>,
    server: Rc<NfsServer>,
    rpc: Rc<RdmaRpcServer>,
    repl: Rc<Replicator>,
    session: Rc<BackupSession>,
) {
    let mut rx = ring.take_events();
    let credit_batch = ring.target().size / 4;
    let mut last_pub = 0u64;
    let mut acked = 0u64;
    let outstanding = Rc::new(Cell::new(0u64));
    let flushing = Rc::new(Cell::new(0u64));
    let idle = Rc::new(Notify::new());
    while let Ok((addr, len)) = rx.recv().await {
        if addr == RING_SENTINEL {
            sim.flight("backup", "sentinel", ring.drained(), acked);
            break;
        }
        let p = ring.consume(addr, len);
        let rec = ReplRecord::decode(&p);
        let marker = rec.needs_ack;
        if rec.is_write && !marker {
            // Mirror in consume order (the log must match the
            // primary's sequence), then background the apply.
            repl.append_mirror(&rec, p);
            let server = server.clone();
            let rpc = rpc.clone();
            let session = session.clone();
            let outstanding = outstanding.clone();
            let idle = idle.clone();
            let sim = sim.clone();
            outstanding.set(outstanding.get() + 1);
            sim.clone().spawn(async move {
                let _apply = sim.span_remote("backup", "apply", Some(rec.proc_num), rec.trace);
                server.apply_replicated(&rec).await;
                rpc.import_reply(
                    rec.peer,
                    rec.xid,
                    rec.epoch,
                    rec.reply_head.clone(),
                    rec.trace,
                );
                session.applied.set(session.applied.get() + 1);
                session.notify.notify_all();
                outstanding.set(outstanding.get() - 1);
                if outstanding.get() == 0 {
                    idle.notify_all();
                }
            });
        } else {
            // Structural ops and commit markers order against
            // everything: drain the in-flight applies first.
            while outstanding.get() > 0 {
                idle.notified().await;
            }
            if marker {
                // Ack once the whole prefix is applied in memory and
                // mirrored into the backup's log: a WAL record held on
                // a second failure domain *is* the durability point —
                // that is what the RDMA ship buys. The backup's own
                // media flush (the marker's group commit) runs in the
                // background. It is tracked separately from
                // `outstanding`: group commits compose (a later flush
                // drains whatever an earlier one left), so neither the
                // next marker nor structural ops need to wait on it —
                // only the final drain does.
                rpc.import_reply(
                    rec.peer,
                    rec.xid,
                    rec.epoch,
                    rec.reply_head.clone(),
                    rec.trace,
                );
                repl.append_mirror(&rec, p);
                repl.set_durable(rec.seq);
                acked = rec.seq;
                sim.flight("backup", "marker", rec.seq, rec.xid as u64);
                let server = server.clone();
                let session = session.clone();
                let flushing = flushing.clone();
                let idle = idle.clone();
                let sim = sim.clone();
                flushing.set(flushing.get() + 1);
                sim.clone().spawn(async move {
                    let _apply = sim.span_remote("backup", "apply", Some(rec.proc_num), rec.trace);
                    server.apply_replicated(&rec).await;
                    session.applied.set(session.applied.get() + 1);
                    session.notify.notify_all();
                    flushing.set(flushing.get() - 1);
                    if flushing.get() == 0 {
                        idle.notify_all();
                    }
                });
            } else {
                let apply = sim.span_remote("backup", "apply", Some(rec.proc_num), rec.trace);
                server.apply_replicated(&rec).await;
                drop(apply);
                rpc.import_reply(
                    rec.peer,
                    rec.xid,
                    rec.epoch,
                    rec.reply_head.clone(),
                    rec.trace,
                );
                repl.append_mirror(&rec, p);
                session.applied.set(session.applied.get() + 1);
                session.notify.notify_all();
            }
        }
        // Publish on markers, every quarter-ring of drained bytes, or
        // whenever the event stream goes idle: withheld credits on an
        // idle backup could starve a wrap-blocked shipper forever.
        let drained = ring.drained();
        if marker || drained - last_pub >= credit_batch || rx.is_empty() {
            ctrl.publish(drained, acked).await;
            last_pub = drained;
        }
    }
    // Drain stragglers (in-flight applies and background marker
    // flushes) so promotion sees a fully applied prefix, then flush
    // the counters so a credit-blocked primary never deadlocks on an
    // exiting consumer.
    while outstanding.get() > 0 || flushing.get() > 0 {
        idle.notified().await;
    }
    ctrl.publish(ring.drained(), acked).await;
    session.finished.set(true);
    session.notify.notify_all();
}

/// Client-visible cluster identity: which node serves, under which
/// epoch and boot-instance (write-verifier) counter.
pub struct ClusterMount {
    n_nodes: usize,
    primary: Cell<usize>,
    epoch: Cell<u32>,
    /// Boot-instance counter; verifiers are `WRITE_VERF_BASE + boot`,
    /// strictly monotonic across promotions and rejoins so no two
    /// service incarnations ever share a verifier.
    boot: Cell<u64>,
    killed: RefCell<Vec<bool>>,
    changed: Notify,
}

impl ClusterMount {
    /// A cluster of `n_nodes` servers; node 0 starts as primary. Boot
    /// count 1 matches [`NfsServer::new`]'s initial verifier.
    pub fn new(n_nodes: usize) -> Rc<ClusterMount> {
        Rc::new(ClusterMount {
            n_nodes,
            primary: Cell::new(0),
            epoch: Cell::new(0),
            boot: Cell::new(1),
            killed: RefCell::new(vec![false; n_nodes]),
            changed: Notify::new(),
        })
    }

    /// Number of server nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Index of the current primary.
    pub fn primary(&self) -> usize {
        self.primary.get()
    }

    /// Current service epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch.get()
    }

    /// Whether `idx` is marked failed.
    pub fn is_killed(&self, idx: usize) -> bool {
        self.killed.borrow()[idx]
    }

    /// Mark `idx` failed.
    pub fn kill(&self, idx: usize) {
        self.killed.borrow_mut()[idx] = true;
        self.changed.notify_all();
    }

    /// Mark `idx` alive again (rejoin).
    pub fn revive(&self, idx: usize) {
        self.killed.borrow_mut()[idx] = false;
        self.changed.notify_all();
    }

    /// Resolve the serving primary, parking while the recorded primary
    /// is dead — the gate cluster-aware client connectors wait on
    /// until promotion completes.
    pub async fn wait_primary(&self) -> usize {
        loop {
            let p = self.primary.get();
            if !self.killed.borrow()[p] {
                return p;
            }
            self.changed.notified().await;
        }
    }

    /// Install `new_primary` under a fresh epoch; returns the epoch
    /// and the new boot-instance write verifier.
    pub fn promote(&self, new_primary: usize) -> (u32, u64) {
        self.epoch.set(self.epoch.get() + 1);
        self.boot.set(self.boot.get() + 1);
        self.primary.set(new_primary);
        self.changed.notify_all();
        (self.epoch.get(), WRITE_VERF_BASE + self.boot.get())
    }

    /// Burn a boot instance for a rejoining node's reboot, keeping the
    /// verifier space strictly monotonic cluster-wide.
    pub fn bump_boot(&self) -> u64 {
        self.boot.set(self.boot.get() + 1);
        WRITE_VERF_BASE + self.boot.get()
    }
}

/// Promote the backup at `idx` to primary:
///
/// 1. revoke the log ring registration — the deposed primary's next
///    deposit fails its TPT check and errors the stale QP (fencing by
///    permission flip; no ack round with a dead node);
/// 2. drain: apply every record placed before the fence;
/// 3. group-commit the replayed prefix (promotion durability point);
/// 4. adopt the service identity: fresh epoch in the DRC key space,
///    fresh boot-instance write verifier, detached (logging-only)
///    replicator.
pub async fn promote_backup(
    mount: &Rc<ClusterMount>,
    idx: usize,
    ring: &LogRing,
    session: &BackupSession,
    server: &Rc<NfsServer>,
    rpc: &RdmaRpcServer,
    repl: &Replicator,
) {
    ring.revoke().await;
    ring.push_sentinel();
    session.drained().await;
    server.force_commit().await;
    repl.set_durable(repl.log_len());
    repl.set_shipper(None);
    let (epoch, verf) = mount.promote(idx);
    server.install_boot_verf(verf);
    rpc.set_service_epoch(epoch);
    repl.set_epoch(epoch);
}

/// Build the `CallContext` a replicated record executes under on the
/// backup.
pub fn replica_context(rec: &ReplRecord) -> onc_rpc::CallContext {
    onc_rpc::CallContext {
        peer: rec.peer,
        prog: NFS_PROGRAM,
        vers: NFS_VERSION,
        xid: rec.xid,
        trace: rec.trace,
    }
}
