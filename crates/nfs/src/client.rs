//! The NFSv3 client, usable over either transport.
//!
//! Over RPC/RDMA, READ data lands via the transport's write-chunk path
//! (zero-copy direct I/O when a user buffer is supplied and the
//! Read-Write design is active) and WRITE data leaves via read chunks.
//! Over TCP, bulk data rides the stream behind the XDR head — same
//! wire bytes and CPU costs as inlining it, but the simulation keeps
//! synthetic payloads compact. This is the baseline the paper
//! measures against.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use ib_verbs::Buffer;
use onc_rpc::{RpcError, StreamRpcClient};
use rpcrdma::{BulkParams, RdmaRpcClient};
use sim_core::Payload;
use xdr::{Encoder, XdrCodec};

use crate::proto::*;

/// Re-drive attempts before a COMMIT verifier mismatch becomes an
/// error (each attempt replays every pending write and re-commits).
const MAX_REDRIVE_ROUNDS: u32 = 8;

/// Client-visible errors.
#[derive(Debug)]
pub enum NfsError {
    /// Transport/RPC failure.
    Rpc(RpcError),
    /// The server returned an NFS error status.
    Status(NfsStat),
    /// Reply failed to decode.
    Protocol,
}

impl From<RpcError> for NfsError {
    fn from(e: RpcError) -> NfsError {
        NfsError::Rpc(e)
    }
}

impl From<xdr::XdrError> for NfsError {
    fn from(_: xdr::XdrError) -> NfsError {
        NfsError::Protocol
    }
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::Rpc(e) => write!(f, "rpc: {e}"),
            NfsError::Status(s) => write!(f, "nfs status: {s:?}"),
            NfsError::Protocol => write!(f, "protocol decode error"),
        }
    }
}

impl std::error::Error for NfsError {}

/// Result alias.
pub type NfsResult<T> = Result<T, NfsError>;

enum Transport {
    Rdma(RdmaRpcClient),
    Tcp(Rc<StreamRpcClient>),
}

/// One UNSTABLE write awaiting COMMIT, kept so the client can re-drive
/// it if the server's write verifier changes (RFC 1813 §3.3.7: a new
/// verifier means the server rebooted and uncommitted data may be
/// gone).
struct PendingWrite {
    offset: u64,
    buf: Buffer,
    buf_off: u64,
    count: u32,
    /// Snapshot of the written bytes, taken when the WRITE was acked —
    /// the sim's stand-in for the client page cache retaining dirty
    /// pages until COMMIT. The application may scribble on `buf` after
    /// the ack; a re-drive restores this snapshot into the registered
    /// region before resending.
    data: Payload,
}

/// Uncommitted state for one file.
struct PendingFile {
    /// Verifier in force when the first pending write was acked.
    verf: u64,
    writes: Vec<PendingWrite>,
}

/// Client-side write/commit counters.
#[derive(Default)]
pub struct NfsClientStats {
    /// UNSTABLE writes re-sent after a COMMIT verifier mismatch.
    pub redriven_writes: Cell<u64>,
    /// COMMIT rounds that observed a verifier mismatch.
    pub verf_mismatches: Cell<u64>,
}

/// An NFSv3 client handle (one mount).
pub struct NfsClient {
    transport: Transport,
    /// Maximum long-reply provision for READDIR/READLINK.
    long_reply_max: u64,
    /// UNSTABLE writes not yet covered by a matching COMMIT, per file.
    pending: RefCell<HashMap<u64, PendingFile>>,
    /// Statistics.
    pub stats: NfsClientStats,
}

impl NfsClient {
    /// Mount over RPC/RDMA.
    pub fn over_rdma(client: RdmaRpcClient) -> NfsClient {
        NfsClient {
            transport: Transport::Rdma(client),
            long_reply_max: 1 << 20,
            pending: RefCell::new(HashMap::new()),
            stats: NfsClientStats::default(),
        }
    }

    /// Mount over TCP.
    pub fn over_tcp(client: Rc<StreamRpcClient>) -> NfsClient {
        NfsClient {
            transport: Transport::Tcp(client),
            long_reply_max: 1 << 20,
            pending: RefCell::new(HashMap::new()),
            stats: NfsClientStats::default(),
        }
    }

    /// UNSTABLE writes recorded for `fh` and not yet confirmed durable
    /// by a verifier-matching COMMIT.
    pub fn pending_writes(&self, fh: FileHandle) -> usize {
        self.pending
            .borrow()
            .get(&fh.0)
            .map_or(0, |p| p.writes.len())
    }

    /// The underlying RPC/RDMA client, when mounted over RDMA (fault
    /// injection and transport statistics).
    pub fn rdma(&self) -> Option<&RdmaRpcClient> {
        match &self.transport {
            Transport::Rdma(c) => Some(c),
            Transport::Tcp(_) => None,
        }
    }

    async fn call(
        &self,
        proc_id: NfsProc,
        args: Bytes,
        bulk: BulkParams,
    ) -> NfsResult<(Bytes, Option<Payload>)> {
        match &self.transport {
            Transport::Rdma(c) => {
                let reply = c.call(proc_id as u32, args, bulk).await?;
                Ok((reply.body, reply.bulk))
            }
            Transport::Tcp(c) => {
                let body = c.call(proc_id as u32, args).await?;
                Ok((body, None))
            }
        }
    }

    /// Simple status+attr result decoder.
    async fn attr_call(&self, proc_id: NfsProc, args: Bytes) -> NfsResult<Fattr> {
        let (body, _) = self.call(proc_id, args, BulkParams::default()).await?;
        match decode_res(body, Fattr::decode)? {
            Ok(a) => Ok(a),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// NULL ping.
    pub async fn null(&self) -> NfsResult<()> {
        let (_, _) = self
            .call(NfsProc::Null, Bytes::new(), BulkParams::default())
            .await?;
        Ok(())
    }

    /// GETATTR.
    pub async fn getattr(&self, fh: FileHandle) -> NfsResult<Fattr> {
        self.attr_call(NfsProc::Getattr, fh.to_bytes()).await
    }

    /// SETATTR (size only).
    pub async fn setattr_size(&self, fh: FileHandle, size: u64) -> NfsResult<Fattr> {
        let mut enc = Encoder::new();
        fh.encode(&mut enc);
        enc.put_u64(size);
        self.attr_call(NfsProc::Setattr, enc.finish()).await
    }

    /// LOOKUP `name` in `dir`.
    pub async fn lookup(&self, dir: FileHandle, name: &str) -> NfsResult<Fattr> {
        let args = DirOpArgs {
            dir,
            name: name.into(),
        };
        self.attr_call(NfsProc::Lookup, args.to_bytes()).await
    }

    /// CREATE a regular file.
    pub async fn create(&self, dir: FileHandle, name: &str) -> NfsResult<Fattr> {
        let args = DirOpArgs {
            dir,
            name: name.into(),
        };
        self.attr_call(NfsProc::Create, args.to_bytes()).await
    }

    /// MKDIR.
    pub async fn mkdir(&self, dir: FileHandle, name: &str) -> NfsResult<Fattr> {
        let args = DirOpArgs {
            dir,
            name: name.into(),
        };
        self.attr_call(NfsProc::Mkdir, args.to_bytes()).await
    }

    /// SYMLINK `name -> target`.
    pub async fn symlink(&self, dir: FileHandle, name: &str, target: &str) -> NfsResult<Fattr> {
        let mut enc = Encoder::new();
        dir.encode(&mut enc);
        enc.put_string(name).put_string(target);
        self.attr_call(NfsProc::Symlink, enc.finish()).await
    }

    /// ACCESS: check permissions; returns the granted bit mask (see
    /// [`crate::proto::access`]).
    pub async fn access(&self, fh: FileHandle, requested: u32) -> NfsResult<u32> {
        let mut enc = Encoder::new();
        fh.encode(&mut enc);
        enc.put_u32(requested);
        let (body, _) = self
            .call(NfsProc::Access, enc.finish(), BulkParams::default())
            .await?;
        match decode_res(body, |d| {
            let _attr = Fattr::decode(d)?;
            d.get_u32()
        })? {
            Ok(granted) => Ok(granted),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// READDIRPLUS: entries with post-op attributes and handles (a
    /// long-reply procedure over RDMA).
    pub async fn readdirplus(
        &self,
        dir: FileHandle,
    ) -> NfsResult<Vec<(WireDirEntry, Option<Fattr>, FileHandle)>> {
        let bulk = BulkParams {
            long_reply_max: Some(self.long_reply_max),
            ..Default::default()
        };
        let (body, _) = self
            .call(NfsProc::ReaddirPlus, dir.to_bytes(), bulk)
            .await?;
        match decode_res(body, |d| {
            let n = d.get_u32()?;
            let mut out = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let entry = WireDirEntry::decode(d)?;
                let attr = d.get_option(Fattr::decode)?;
                let fh = FileHandle::decode(d)?;
                out.push((entry, attr, fh));
            }
            Ok(out)
        })? {
            Ok(v) => Ok(v),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// READLINK (a long-reply procedure over RDMA).
    pub async fn readlink(&self, fh: FileHandle) -> NfsResult<String> {
        let bulk = BulkParams {
            long_reply_max: Some(self.long_reply_max),
            ..Default::default()
        };
        let (body, _) = self.call(NfsProc::Readlink, fh.to_bytes(), bulk).await?;
        match decode_res(body, |d| d.get_string())? {
            Ok(s) => Ok(s),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// REMOVE a file/symlink.
    pub async fn remove(&self, dir: FileHandle, name: &str) -> NfsResult<()> {
        let args = DirOpArgs {
            dir,
            name: name.into(),
        };
        let (body, _) = self
            .call(NfsProc::Remove, args.to_bytes(), BulkParams::default())
            .await?;
        match decode_res(body, |_| Ok(()))? {
            Ok(()) => Ok(()),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// RMDIR.
    pub async fn rmdir(&self, dir: FileHandle, name: &str) -> NfsResult<()> {
        let args = DirOpArgs {
            dir,
            name: name.into(),
        };
        let (body, _) = self
            .call(NfsProc::Rmdir, args.to_bytes(), BulkParams::default())
            .await?;
        match decode_res(body, |_| Ok(()))? {
            Ok(()) => Ok(()),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// RENAME.
    pub async fn rename(
        &self,
        fdir: FileHandle,
        fname: &str,
        tdir: FileHandle,
        tname: &str,
    ) -> NfsResult<()> {
        let mut enc = Encoder::new();
        fdir.encode(&mut enc);
        enc.put_string(fname);
        tdir.encode(&mut enc);
        enc.put_string(tname);
        let (body, _) = self
            .call(NfsProc::Rename, enc.finish(), BulkParams::default())
            .await?;
        match decode_res(body, |_| Ok(()))? {
            Ok(()) => Ok(()),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// READDIR (a long-reply procedure over RDMA).
    pub async fn readdir(&self, dir: FileHandle) -> NfsResult<Vec<WireDirEntry>> {
        let bulk = BulkParams {
            long_reply_max: Some(self.long_reply_max),
            ..Default::default()
        };
        let (body, _) = self.call(NfsProc::Readdir, dir.to_bytes(), bulk).await?;
        match decode_res(body, |d| d.get_array(WireDirEntry::decode))? {
            Ok(v) => Ok(v),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// FSSTAT: (bytes_used, inodes).
    pub async fn fsstat(&self, root: FileHandle) -> NfsResult<(u64, u64)> {
        let (body, _) = self
            .call(NfsProc::Fsstat, root.to_bytes(), BulkParams::default())
            .await?;
        match decode_res(body, |d| Ok((d.get_u64()?, d.get_u64()?)))? {
            Ok(v) => Ok(v),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// One COMMIT on the wire; returns the server's write verifier.
    async fn commit_once(&self, fh: FileHandle) -> NfsResult<u64> {
        let (body, _) = self
            .call(NfsProc::Commit, fh.to_bytes(), BulkParams::default())
            .await?;
        match decode_res(body, CommitRes::decode)? {
            Ok(r) => Ok(r.verf),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// COMMIT unstable writes to stable storage.
    ///
    /// If the reply's write verifier differs from the one seen when the
    /// pending UNSTABLE writes were acked, the server rebooted and may
    /// have lost them: re-drive every pending write for this file and
    /// COMMIT again, until the verifiers agree (bounded by
    /// [`MAX_REDRIVE_ROUNDS`]).
    pub async fn commit(&self, fh: FileHandle) -> NfsResult<()> {
        let mut verf = self.commit_once(fh).await?;
        for _ in 0..MAX_REDRIVE_ROUNDS {
            let expected = match self.pending.borrow().get(&fh.0) {
                Some(p) => p.verf,
                None => return Ok(()),
            };
            if verf == expected {
                self.pending.borrow_mut().remove(&fh.0);
                return Ok(());
            }
            self.stats
                .verf_mismatches
                .set(self.stats.verf_mismatches.get() + 1);
            // Replay the whole pending burst under the new boot
            // instance, then re-commit and re-check.
            let replay: Vec<(u64, Buffer, u64, u32, Payload)> = {
                let pending = self.pending.borrow();
                let p = &pending[&fh.0];
                p.writes
                    .iter()
                    .map(|w| (w.offset, w.buf.clone(), w.buf_off, w.count, w.data.clone()))
                    .collect()
            };
            let mut last_verf = verf;
            for (offset, buf, buf_off, count, data) in replay {
                // Restore the retained dirty bytes into the registered
                // region: the application may have reused the buffer
                // since the original ack.
                buf.write(buf_off, data);
                let r = self
                    .write_once(fh, offset, &buf, buf_off, count, false)
                    .await?;
                self.stats
                    .redriven_writes
                    .set(self.stats.redriven_writes.get() + 1);
                last_verf = r.verf;
            }
            if let Some(p) = self.pending.borrow_mut().get_mut(&fh.0) {
                p.verf = last_verf;
            }
            verf = self.commit_once(fh).await?;
        }
        Err(NfsError::Protocol)
    }

    /// READ `count` bytes at `offset`. Supplying `user` enables the
    /// zero-copy direct-I/O path over RDMA (data lands in that buffer).
    /// Returns the data and the EOF flag.
    pub async fn read(
        &self,
        fh: FileHandle,
        offset: u64,
        count: u32,
        user: Option<(&Buffer, u64)>,
    ) -> NfsResult<(Payload, bool)> {
        let args = ReadArgs {
            file: fh,
            offset,
            count,
        };
        match &self.transport {
            Transport::Rdma(c) => {
                let bulk = BulkParams {
                    recv_max: Some(count as u64),
                    recv_user: user.map(|(b, off)| (b.clone(), off)),
                    ..Default::default()
                };
                let reply = c.call(NfsProc::Read as u32, args.to_bytes(), bulk).await?;
                let head = match decode_res(reply.body, ReadResHead::decode)? {
                    Ok(h) => h,
                    Err(s) => return Err(NfsError::Status(s)),
                };
                let data = reply.bulk.unwrap_or_else(Payload::empty);
                if data.len() != head.count as u64 {
                    return Err(NfsError::Protocol);
                }
                Ok((data, head.eof))
            }
            Transport::Tcp(c) => {
                let (body, bulk) = c
                    .call_bulk(NfsProc::Read as u32, args.to_bytes(), None)
                    .await?;
                let head = match decode_res(body, ReadResHead::decode)? {
                    Ok(h) => h,
                    Err(s) => return Err(NfsError::Status(s)),
                };
                if bulk.len() != head.count as u64 {
                    return Err(NfsError::Protocol);
                }
                if let Some((buf, off)) = user {
                    buf.write(off, bulk.clone());
                }
                Ok((bulk, head.eof))
            }
        }
    }

    /// One WRITE on the wire, no pending-write bookkeeping.
    async fn write_once(
        &self,
        fh: FileHandle,
        offset: u64,
        buf: &Buffer,
        buf_off: u64,
        count: u32,
        stable: bool,
    ) -> NfsResult<WriteRes> {
        let head = WriteArgsHead {
            file: fh,
            offset,
            count,
            stable,
        };
        let res = match &self.transport {
            Transport::Rdma(c) => {
                let bulk = BulkParams {
                    send: Some((buf.clone(), buf_off, count as u64)),
                    ..Default::default()
                };
                let reply = c.call(NfsProc::Write as u32, head.to_bytes(), bulk).await?;
                decode_res(reply.body, WriteRes::decode)?
            }
            Transport::Tcp(c) => {
                let data = buf.read(buf_off, count as u64);
                let (body, _) = c
                    .call_bulk(NfsProc::Write as u32, head.to_bytes(), Some(data))
                    .await?;
                decode_res(body, WriteRes::decode)?
            }
        };
        match res {
            Ok(r) => Ok(r),
            Err(s) => Err(NfsError::Status(s)),
        }
    }

    /// WRITE `count` bytes from `buf[buf_off..]` at `offset`.
    /// `stable = true` requests FILE_SYNC semantics; `stable = false`
    /// is an UNSTABLE write — it is acked once the server's cache is
    /// dirty, and the client records it for re-drive until a COMMIT
    /// with a matching write verifier confirms durability.
    pub async fn write(
        &self,
        fh: FileHandle,
        offset: u64,
        buf: &Buffer,
        buf_off: u64,
        count: u32,
        stable: bool,
    ) -> NfsResult<u32> {
        let r = self
            .write_once(fh, offset, buf, buf_off, count, stable)
            .await?;
        if stable {
            // FILE_SYNC committed everything pending for this file —
            // but only under the verifier we recorded; a changed
            // verifier means earlier UNSTABLE data may be gone, so
            // keep the ledger for commit() to re-drive.
            let mut pending = self.pending.borrow_mut();
            if pending.get(&fh.0).is_some_and(|p| p.verf == r.verf) {
                pending.remove(&fh.0);
            }
        } else {
            let mut pending = self.pending.borrow_mut();
            let entry = pending.entry(fh.0).or_insert(PendingFile {
                verf: r.verf,
                writes: Vec::new(),
            });
            entry.writes.push(PendingWrite {
                offset,
                buf: buf.clone(),
                buf_off,
                count,
                data: buf.read(buf_off, count as u64),
            });
        }
        Ok(r.count)
    }
}
