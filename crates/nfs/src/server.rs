//! The NFSv3 server: one protocol implementation reachable over both
//! the RPC/RDMA transport (chunk-aware, the paper's subject) and the
//! TCP stream transport (bulk data inline, the baseline).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use fs_backend::Vfs;
use onc_rpc::{AcceptStat, CallContext, DispatchResult, LocalBoxFuture, RpcService};
use rpcrdma::{RdmaDispatch, RdmaService};
use sim_core::{Payload, SgList};
use xdr::{Decoder, Encoder, XdrCodec};

use crate::proto::*;

/// Base of the deterministic write verifier; each (re)boot adds one.
pub(crate) const WRITE_VERF_BASE: u64 = 0xb007_0000_0000_0000;

/// Operation counters.
#[derive(Default)]
pub struct NfsServerStats {
    /// READ calls served.
    pub reads: Cell<u64>,
    /// WRITE calls served.
    pub writes: Cell<u64>,
    /// All other calls served.
    pub others: Cell<u64>,
    /// Data bytes read from the VFS.
    pub bytes_read: Cell<u64>,
    /// Data bytes written to the VFS.
    pub bytes_written: Cell<u64>,
    /// UNSTABLE (stable=false) WRITE calls acked from dirty cache.
    pub unstable_writes: Cell<u64>,
    /// COMMIT calls that triggered a group commit (the file had dirty
    /// uncommitted data).
    pub commits: Cell<u64>,
    /// COMMIT calls answered without touching storage (nothing dirty).
    pub clean_commits: Cell<u64>,
}

/// The server. Construct once, register with one or both transports.
pub struct NfsServer {
    fs: Rc<dyn Vfs>,
    /// Write verifier: boot-instance cookie returned with every WRITE
    /// and COMMIT reply (RFC 1813 §3.3.7). Deterministic — derived from
    /// the boot count, never from wall-clock time.
    verf: Cell<u64>,
    /// Uncommitted (UNSTABLE-written) bytes per file: the dirty side of
    /// the per-file dirty/commit ledger. COMMIT consults it to decide
    /// between a group commit and a free clean-commit reply.
    dirty: RefCell<HashMap<u64, u64>>,
    /// Fenced/failed: a deposed primary stops executing (its replies
    /// would die on errored QPs anyway; this stops zombie mutations).
    dead: Cell<bool>,
    /// When serving as a cluster primary: the replicated-log sequencer
    /// every successful mutation ships through before its reply.
    replicator: RefCell<Option<Rc<crate::cluster::Replicator>>>,
    /// Statistics.
    pub stats: NfsServerStats,
}

/// Internal dispatch result: head plus optional bulk scatter/gather
/// data (READ replies keep cache slices unflattened for the RDMA
/// transport to gather on the wire).
struct OpResult {
    head: Bytes,
    bulk: Option<SgList>,
}

impl NfsServer {
    /// Serve `fs`.
    pub fn new(fs: Rc<dyn Vfs>) -> Rc<NfsServer> {
        Rc::new(NfsServer {
            fs,
            verf: Cell::new(WRITE_VERF_BASE + 1),
            dirty: RefCell::new(HashMap::new()),
            dead: Cell::new(false),
            replicator: RefCell::new(None),
            stats: NfsServerStats::default(),
        })
    }

    /// Install the cluster replicator: from here on, every successful
    /// mutating call is shipped to the backup before its reply, and
    /// COMMIT waits for the backup's marker ack.
    pub fn set_replicator(&self, r: Rc<crate::cluster::Replicator>) {
        *self.replicator.borrow_mut() = Some(r);
    }

    /// The installed replicator, if any.
    pub fn replicator(&self) -> Option<Rc<crate::cluster::Replicator>> {
        self.replicator.borrow().clone()
    }

    /// Fence or unfence the server (failed nodes stop executing).
    pub fn set_dead(&self, dead: bool) {
        self.dead.set(dead);
    }

    /// Adopt a cluster-assigned boot-instance write verifier (promotion
    /// and rejoin use the [`crate::cluster::ClusterMount`] boot counter
    /// so verifiers stay strictly monotonic across incarnations).
    pub fn install_boot_verf(&self, verf: u64) {
        self.verf.set(verf);
    }

    /// Promotion durability point: group-commit everything pending and
    /// reset the dirty ledger (the replayed prefix is now stable).
    pub async fn force_commit(&self) {
        let root = self.fs.root();
        let _ = self.fs.commit(root).await;
        self.dirty.borrow_mut().clear();
    }

    /// Apply one replicated record on the backup: same protocol engine,
    /// `replicate = false` so the apply path never re-ships.
    pub async fn apply_replicated(self: &Rc<Self>, rec: &crate::cluster::ReplRecord) {
        let bulk = rec.bulk.clone().map(SgList::from);
        let res = self
            .run_op(
                rec.peer,
                rec.xid,
                rec.proc_num,
                rec.args.clone(),
                bulk,
                false,
                false,
                rec.trace,
            )
            .await;
        debug_assert!(res.is_ok(), "replicated record failed to apply");
    }

    /// The write verifier currently in force.
    pub fn write_verf(&self) -> u64 {
        self.verf.get()
    }

    /// Uncommitted UNSTABLE-written bytes tracked for `file` (0 when
    /// clean). Diagnostic view of the dirty/commit ledger.
    pub fn dirty_bytes(&self, file: FileHandle) -> u64 {
        self.dirty.borrow().get(&file.0).copied().unwrap_or(0)
    }

    /// Simulate an NFS server reboot after a power failure: bump the
    /// write verifier to a fresh boot-instance value and forget the
    /// dirty ledger (whatever was uncommitted is gone — the backend's
    /// recovery decides what survived). Clients notice the verifier
    /// change on their next WRITE/COMMIT reply and re-drive everything
    /// pending.
    pub fn server_reboot(&self) {
        self.verf.set(self.verf.get() + 1);
        self.dirty.borrow_mut().clear();
    }

    /// The root file handle clients mount.
    pub fn root_handle(&self) -> FileHandle {
        FileHandle(self.fs.root().0)
    }

    fn fid(fh: FileHandle) -> fs_backend::FileId {
        fs_backend::FileId(fh.0)
    }

    /// Execute one NFS procedure. `bulk_in` carries WRITE data when the
    /// transport moved it out of band (RDMA); over TCP the data is
    /// still inline in `args` and `bulk_in` is `None`. `peer`/`xid`
    /// identify the call for replication (the backup mirrors the DRC
    /// window under them); `replicate = false` marks the backup apply
    /// path, which must never re-ship. `trace` is the service span's
    /// context, stamped on shipped records so the backup apply joins
    /// the client's causal tree.
    #[allow(clippy::too_many_arguments)]
    async fn run_op(
        self: &Rc<Self>,
        peer: u32,
        xid: u32,
        proc_num: u32,
        args: Bytes,
        bulk_in: Option<SgList>,
        inline_bulk: bool,
        replicate: bool,
        trace: sim_core::TraceCtx,
    ) -> Result<OpResult, AcceptStat> {
        if self.dead.get() {
            // Fenced: refuse to execute (the reply dies on an errored
            // QP regardless; this stops zombie mutations).
            return Err(AcceptStat::ProcUnavail);
        }
        let Some(proc_id) = NfsProc::from_u32(proc_num) else {
            return Err(AcceptStat::ProcUnavail);
        };
        let bad = |_e: xdr::XdrError| AcceptStat::GarbageArgs;
        let fs = &self.fs;
        let ok = |head: Bytes| Ok(OpResult { head, bulk: None });

        let repl = if replicate {
            self.replicator.borrow().clone()
        } else {
            None
        };
        // Captured along the WRITE path for the replication hook.
        let mut repl_bulk: Option<Payload> = None;
        let mut repl_marker = false;
        // Markers (COMMIT, stable WRITE) take the sequencing lock
        // *before* their local group commit so every previously
        // sequenced record's WAL appends land inside the marker's
        // committed set — the rejoin-truncation invariant.
        let mut marker_permit = None;

        let result = match proc_id {
            NfsProc::Null => {
                self.stats.others.set(self.stats.others.get() + 1);
                ok(Bytes::new())
            }
            NfsProc::Getattr => {
                self.stats.others.set(self.stats.others.get() + 1);
                let fh = FileHandle::from_bytes(&args).map_err(bad)?;
                let res = fs.getattr(Self::fid(fh));
                ok(match res {
                    Ok(a) => encode_res(NfsStat::Ok, |e| Fattr::from_attr(&a).encode(e)),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Setattr => {
                self.stats.others.set(self.stats.others.get() + 1);
                let mut dec = Decoder::new(&args);
                let fh = FileHandle::decode(&mut dec).map_err(bad)?;
                let size = dec.get_u64().map_err(bad)?;
                let res = fs.setattr_size(Self::fid(fh), size);
                ok(match res {
                    Ok(a) => encode_res(NfsStat::Ok, |e| Fattr::from_attr(&a).encode(e)),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Lookup => {
                self.stats.others.set(self.stats.others.get() + 1);
                let a = DirOpArgs::from_bytes(&args).map_err(bad)?;
                let res = fs.lookup(Self::fid(a.dir), &a.name);
                ok(match res {
                    Ok(attr) => encode_res(NfsStat::Ok, |e| Fattr::from_attr(&attr).encode(e)),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Access => {
                self.stats.others.set(self.stats.others.get() + 1);
                let mut dec = Decoder::new(&args);
                let fh = FileHandle::decode(&mut dec).map_err(bad)?;
                let requested = dec.get_u32().map_err(bad)?;
                let res = fs.getattr(Self::fid(fh));
                ok(match res {
                    Ok(a) => encode_res(NfsStat::Ok, |e| {
                        Fattr::from_attr(&a).encode(e);
                        // AUTH_NONE deployment: grant whatever was asked
                        // within the mode-0644 envelope.
                        e.put_u32(requested & access::ALL);
                    }),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Readlink => {
                self.stats.others.set(self.stats.others.get() + 1);
                let fh = FileHandle::from_bytes(&args).map_err(bad)?;
                let res = fs.readlink(Self::fid(fh));
                ok(match res {
                    Ok(target) => encode_res(NfsStat::Ok, |e| {
                        e.put_string(&target);
                    }),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Read => {
                self.stats.reads.set(self.stats.reads.get() + 1);
                let a = ReadArgs::from_bytes(&args).map_err(bad)?;
                let id = Self::fid(a.file);
                match fs.read_sg(id, a.offset, a.count as u64).await {
                    Ok(data) => {
                        let attr = fs.getattr(id).map_err(|_| AcceptStat::GarbageArgs)?;
                        let n = data.len();
                        self.stats.bytes_read.set(self.stats.bytes_read.get() + n);
                        let eof = a.offset + n >= attr.size;
                        let head = ReadResHead {
                            attr: Fattr::from_attr(&attr),
                            count: n as u32,
                            eof,
                        };
                        if inline_bulk {
                            // TCP: data inline in the XDR body.
                            let mut enc = Encoder::new();
                            enc.put_u32(NfsStat::Ok as u32);
                            head.encode(&mut enc);
                            enc.put_opaque(&data.to_payload().materialize());
                            Ok(OpResult {
                                head: enc.finish(),
                                bulk: None,
                            })
                        } else {
                            Ok(OpResult {
                                head: encode_res(NfsStat::Ok, |e| head.encode(e)),
                                bulk: Some(data),
                            })
                        }
                    }
                    Err(e) => ok(encode_res(e.into(), |_| {})),
                }
            }
            NfsProc::Write => {
                self.stats.writes.set(self.stats.writes.get() + 1);
                let mut dec = Decoder::new(&args);
                let head = WriteArgsHead::decode(&mut dec).map_err(bad)?;
                let data = if inline_bulk {
                    // Zero-copy: re-anchor the borrowed opaque into the
                    // args buffer rather than copying it out.
                    let raw = dec.get_opaque().map_err(bad)?;
                    SgList::from(Payload::real(args.slice_ref(raw)))
                } else {
                    bulk_in.ok_or(AcceptStat::GarbageArgs)?
                };
                if data.len() != head.count as u64 {
                    return Err(AcceptStat::GarbageArgs);
                }
                let id = Self::fid(head.file);
                let n = data.len();
                if let Some(r) = &repl {
                    // Content-preserving capture for the backup ship.
                    repl_bulk = Some(data.to_payload());
                    if head.stable {
                        repl_marker = true;
                        marker_permit = Some(r.begin_marker().await);
                    }
                }
                // Receive-side scatter: each transport piece lands in
                // the file system at its own offset, unflattened.
                match fs.write_sg(id, head.offset, data).await {
                    Ok(written) => {
                        self.stats
                            .bytes_written
                            .set(self.stats.bytes_written.get() + written);
                        if head.stable {
                            let _ = fs.commit(id).await;
                            self.dirty.borrow_mut().remove(&head.file.0);
                        } else {
                            // UNSTABLE: acked as soon as the pages are
                            // dirty in cache; durability waits for
                            // COMMIT's group commit.
                            self.stats
                                .unstable_writes
                                .set(self.stats.unstable_writes.get() + 1);
                            *self.dirty.borrow_mut().entry(head.file.0).or_insert(0) += written;
                        }
                        let attr = fs.getattr(id).map_err(|_| AcceptStat::GarbageArgs)?;
                        debug_assert_eq!(written, n);
                        ok(encode_res(NfsStat::Ok, |e| {
                            WriteRes {
                                attr: Fattr::from_attr(&attr),
                                count: written as u32,
                                verf: self.verf.get(),
                            }
                            .encode(e)
                        }))
                    }
                    Err(e) => ok(encode_res(e.into(), |_| {})),
                }
            }
            NfsProc::Create | NfsProc::Mkdir => {
                self.stats.others.set(self.stats.others.get() + 1);
                let a = DirOpArgs::from_bytes(&args).map_err(bad)?;
                let res = if proc_id == NfsProc::Create {
                    fs.create(Self::fid(a.dir), &a.name)
                } else {
                    fs.mkdir(Self::fid(a.dir), &a.name)
                };
                ok(match res {
                    Ok(attr) => encode_res(NfsStat::Ok, |e| Fattr::from_attr(&attr).encode(e)),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Symlink => {
                self.stats.others.set(self.stats.others.get() + 1);
                let mut dec = Decoder::new(&args);
                let dir = FileHandle::decode(&mut dec).map_err(bad)?;
                let name = dec.get_string().map_err(bad)?;
                let target = dec.get_string().map_err(bad)?;
                let res = fs.symlink(Self::fid(dir), &name, &target);
                ok(match res {
                    Ok(attr) => encode_res(NfsStat::Ok, |e| Fattr::from_attr(&attr).encode(e)),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Remove | NfsProc::Rmdir => {
                self.stats.others.set(self.stats.others.get() + 1);
                let a = DirOpArgs::from_bytes(&args).map_err(bad)?;
                let res = if proc_id == NfsProc::Remove {
                    fs.remove(Self::fid(a.dir), &a.name)
                } else {
                    fs.rmdir(Self::fid(a.dir), &a.name)
                };
                ok(match res {
                    Ok(()) => encode_res(NfsStat::Ok, |_| {}),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Rename => {
                self.stats.others.set(self.stats.others.get() + 1);
                let mut dec = Decoder::new(&args);
                let fdir = FileHandle::decode(&mut dec).map_err(bad)?;
                let fname = dec.get_string().map_err(bad)?;
                let tdir = FileHandle::decode(&mut dec).map_err(bad)?;
                let tname = dec.get_string().map_err(bad)?;
                let res = fs.rename(Self::fid(fdir), &fname, Self::fid(tdir), &tname);
                ok(match res {
                    Ok(()) => encode_res(NfsStat::Ok, |_| {}),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Readdir => {
                self.stats.others.set(self.stats.others.get() + 1);
                let fh = FileHandle::from_bytes(&args).map_err(bad)?;
                let res = fs.readdir(Self::fid(fh));
                ok(match res {
                    Ok(entries) => encode_res(NfsStat::Ok, |e| {
                        let wire: Vec<WireDirEntry> = entries
                            .iter()
                            .map(|d| WireDirEntry {
                                fileid: d.id.0,
                                name: d.name.clone(),
                                kind: d.kind,
                            })
                            .collect();
                        e.put_array(&wire, |e, w| w.encode(e));
                    }),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::ReaddirPlus => {
                self.stats.others.set(self.stats.others.get() + 1);
                let fh = FileHandle::from_bytes(&args).map_err(bad)?;
                let res = fs.readdir(Self::fid(fh));
                ok(match res {
                    Ok(entries) => encode_res(NfsStat::Ok, |e| {
                        // Entries with post-op attributes and handles,
                        // saving the client a GETATTR per name.
                        e.put_u32(entries.len() as u32);
                        for d in &entries {
                            WireDirEntry {
                                fileid: d.id.0,
                                name: d.name.clone(),
                                kind: d.kind,
                            }
                            .encode(e);
                            match fs.getattr(d.id) {
                                Ok(a) => {
                                    e.put_bool(true);
                                    Fattr::from_attr(&a).encode(e);
                                }
                                Err(_) => {
                                    e.put_bool(false);
                                }
                            }
                            FileHandle(d.id.0).encode(e);
                        }
                    }),
                    Err(e) => encode_res(e.into(), |_| {}),
                })
            }
            NfsProc::Fsstat => {
                self.stats.others.set(self.stats.others.get() + 1);
                let _fh = FileHandle::from_bytes(&args).map_err(bad)?;
                let st = fs.fsstat();
                ok(encode_res(NfsStat::Ok, |e| {
                    e.put_u64(st.bytes_used).put_u64(st.inodes);
                }))
            }
            NfsProc::Commit => {
                self.stats.others.set(self.stats.others.get() + 1);
                let fh = FileHandle::from_bytes(&args).map_err(bad)?;
                let was_dirty = self.dirty.borrow_mut().remove(&fh.0).is_some();
                if was_dirty {
                    self.stats.commits.set(self.stats.commits.get() + 1);
                } else {
                    self.stats
                        .clean_commits
                        .set(self.stats.clean_commits.get() + 1);
                }
                if let Some(r) = &repl {
                    repl_marker = true;
                    marker_permit = Some(r.begin_marker().await);
                }
                // Group commit: the backend flushes every pending
                // uncommitted write (a WAL-backed store drains its whole
                // tail in one sequential burst, not just this file's).
                match fs.commit(Self::fid(fh)).await {
                    Ok(()) => ok(encode_res(NfsStat::Ok, |e| {
                        CommitRes {
                            verf: self.verf.get(),
                        }
                        .encode(e)
                    })),
                    Err(e) => ok(encode_res(e.into(), |_| {})),
                }
            }
        };

        // Replication hook: ship every *successful* mutation to the
        // backup before the reply is released; markers additionally
        // wait for the backup's ack inside `replicate`.
        if let (Some(repl), Ok(res)) = (repl, &result) {
            let mutating = matches!(
                proc_id,
                NfsProc::Setattr
                    | NfsProc::Write
                    | NfsProc::Create
                    | NfsProc::Mkdir
                    | NfsProc::Symlink
                    | NfsProc::Remove
                    | NfsProc::Rmdir
                    | NfsProc::Rename
                    | NfsProc::Commit
            );
            let ok_reply = res.head.len() >= 4 && res.head[..4] == [0u8; 4];
            if mutating && ok_reply {
                repl.replicate(
                    marker_permit.take(),
                    proc_num,
                    peer,
                    xid,
                    args.clone(),
                    res.head.clone(),
                    repl_bulk.take(),
                    repl_marker,
                    trace,
                )
                .await;
            }
        }
        result
    }
}

/// Clonable handle registering the server with either transport.
#[derive(Clone)]
pub struct NfsServerHandle(pub Rc<NfsServer>);

impl RdmaService for NfsServerHandle {
    fn program(&self) -> u32 {
        NFS_PROGRAM
    }
    fn version(&self) -> u32 {
        NFS_VERSION
    }
    fn call(
        &self,
        cx: CallContext,
        proc_num: u32,
        args: Bytes,
        bulk_in: Option<SgList>,
    ) -> LocalBoxFuture<RdmaDispatch> {
        let server = self.0.clone();
        Box::pin(async move {
            match server
                .run_op(
                    cx.peer, cx.xid, proc_num, args, bulk_in, false, true, cx.trace,
                )
                .await
            {
                Ok(r) => RdmaDispatch::success(r.head, r.bulk),
                Err(stat) => RdmaDispatch::error(stat),
            }
        })
    }
}

impl RpcService for NfsServerHandle {
    fn program(&self) -> u32 {
        NFS_PROGRAM
    }
    fn version(&self) -> u32 {
        NFS_VERSION
    }
    fn call(&self, cx: CallContext, proc_num: u32, args: Bytes) -> LocalBoxFuture<DispatchResult> {
        let server = self.0.clone();
        Box::pin(async move {
            match server
                .run_op(cx.peer, cx.xid, proc_num, args, None, true, true, cx.trace)
                .await
            {
                Ok(r) => {
                    debug_assert!(r.bulk.is_none(), "TCP path returns data inline");
                    DispatchResult::success(r.head)
                }
                Err(stat) => DispatchResult::error(stat),
            }
        })
    }
}
