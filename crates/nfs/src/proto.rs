//! NFSv3 protocol types and XDR codecs (RFC 1813 subset).
//!
//! Arguments and results round-trip through real XDR so protocol tests
//! exercise marshalling. One deliberate transport difference, exactly
//! as in kernel NFS: over TCP the READ/WRITE data is inline in the XDR
//! body; over RPC/RDMA it moves out of band via chunks and only the
//! count appears here.

use bytes::Bytes;
use fs_backend::{Attr, FileKind, FsError};
use sim_core::SimTime;
use xdr::{Decoder, Encoder, Result as XdrResult, XdrCodec, XdrError};

/// The NFS program number.
pub const NFS_PROGRAM: u32 = 100_003;
/// NFS version 3.
pub const NFS_VERSION: u32 = 3;

/// NFSv3 procedure numbers (RFC 1813).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum NfsProc {
    Null = 0,
    Getattr = 1,
    Setattr = 2,
    Lookup = 3,
    Access = 4,
    Readlink = 5,
    Read = 6,
    Write = 7,
    Create = 8,
    Mkdir = 9,
    Symlink = 10,
    Remove = 12,
    Rmdir = 13,
    Rename = 14,
    Readdir = 16,
    ReaddirPlus = 17,
    Fsstat = 18,
    Commit = 21,
}

impl NfsProc {
    /// Parse a wire procedure number.
    pub fn from_u32(v: u32) -> Option<NfsProc> {
        Some(match v {
            0 => NfsProc::Null,
            1 => NfsProc::Getattr,
            2 => NfsProc::Setattr,
            3 => NfsProc::Lookup,
            4 => NfsProc::Access,
            5 => NfsProc::Readlink,
            6 => NfsProc::Read,
            7 => NfsProc::Write,
            8 => NfsProc::Create,
            9 => NfsProc::Mkdir,
            10 => NfsProc::Symlink,
            12 => NfsProc::Remove,
            13 => NfsProc::Rmdir,
            14 => NfsProc::Rename,
            16 => NfsProc::Readdir,
            17 => NfsProc::ReaddirPlus,
            18 => NfsProc::Fsstat,
            21 => NfsProc::Commit,
            _ => return None,
        })
    }

    /// Protocol name, e.g. for latency-anatomy tables keyed by wire
    /// procedure number.
    pub fn name(self) -> &'static str {
        match self {
            NfsProc::Null => "NULL",
            NfsProc::Getattr => "GETATTR",
            NfsProc::Setattr => "SETATTR",
            NfsProc::Lookup => "LOOKUP",
            NfsProc::Access => "ACCESS",
            NfsProc::Readlink => "READLINK",
            NfsProc::Read => "READ",
            NfsProc::Write => "WRITE",
            NfsProc::Create => "CREATE",
            NfsProc::Mkdir => "MKDIR",
            NfsProc::Symlink => "SYMLINK",
            NfsProc::Remove => "REMOVE",
            NfsProc::Rmdir => "RMDIR",
            NfsProc::Rename => "RENAME",
            NfsProc::Readdir => "READDIR",
            NfsProc::ReaddirPlus => "READDIRPLUS",
            NfsProc::Fsstat => "FSSTAT",
            NfsProc::Commit => "COMMIT",
        }
    }

    /// `name()` for a raw wire procedure number, or `"proc<N>"`-style
    /// fallback via `None` for unknown numbers.
    pub fn name_of(v: u32) -> Option<&'static str> {
        NfsProc::from_u32(v).map(NfsProc::name)
    }
}

/// NFSv3 status codes (subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum NfsStat {
    Ok = 0,
    NoEnt = 2,
    Io = 5,
    Exist = 17,
    NotDir = 20,
    IsDir = 21,
    Inval = 22,
    NotEmpty = 66,
    Stale = 70,
}

impl NfsStat {
    /// Parse a wire status.
    pub fn from_u32(v: u32) -> XdrResult<NfsStat> {
        Ok(match v {
            0 => NfsStat::Ok,
            2 => NfsStat::NoEnt,
            5 => NfsStat::Io,
            17 => NfsStat::Exist,
            20 => NfsStat::NotDir,
            21 => NfsStat::IsDir,
            22 => NfsStat::Inval,
            66 => NfsStat::NotEmpty,
            70 => NfsStat::Stale,
            d => return Err(XdrError::BadDiscriminant(d)),
        })
    }
}

impl From<FsError> for NfsStat {
    fn from(e: FsError) -> NfsStat {
        match e {
            FsError::NotFound => NfsStat::NoEnt,
            FsError::Exists => NfsStat::Exist,
            FsError::NotDir => NfsStat::NotDir,
            FsError::IsDir => NfsStat::IsDir,
            FsError::NotEmpty => NfsStat::NotEmpty,
            FsError::Stale => NfsStat::Stale,
            FsError::NotSymlink => NfsStat::Inval,
            FsError::NoSpace => NfsStat::Io,
        }
    }
}

/// An NFS file handle (opaque to clients; wraps the inode number).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileHandle(pub u64);

impl XdrCodec for FileHandle {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_opaque(&self.0.to_be_bytes());
    }

    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        let raw = dec.get_opaque()?;
        if raw.len() != 8 {
            return Err(XdrError::LengthOutOfRange(raw.len() as u32));
        }
        let mut a = [0u8; 8];
        a.copy_from_slice(raw);
        Ok(FileHandle(u64::from_be_bytes(a)))
    }
}

/// fattr3 (subset: the fields the workloads consume).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fattr {
    /// File type.
    pub kind: FileKind,
    /// Link count.
    pub nlink: u32,
    /// Size in bytes.
    pub size: u64,
    /// File id (inode).
    pub fileid: u64,
    /// Modification time, virtual nanoseconds.
    pub mtime_ns: u64,
    /// Change time, virtual nanoseconds.
    pub ctime_ns: u64,
}

impl Fattr {
    /// Build from a VFS attribute record.
    pub fn from_attr(a: &Attr) -> Fattr {
        Fattr {
            kind: a.kind,
            nlink: a.nlink,
            size: a.size,
            fileid: a.id.0,
            mtime_ns: a.mtime.as_nanos(),
            ctime_ns: a.ctime.as_nanos(),
        }
    }

    /// The file handle for this attribute record.
    pub fn handle(&self) -> FileHandle {
        FileHandle(self.fileid)
    }

    /// Modification instant.
    pub fn mtime(&self) -> SimTime {
        SimTime::from_nanos(self.mtime_ns)
    }
}

fn kind_to_u32(k: FileKind) -> u32 {
    match k {
        FileKind::Regular => 1,
        FileKind::Dir => 2,
        FileKind::Symlink => 5,
    }
}

fn kind_from_u32(v: u32) -> XdrResult<FileKind> {
    Ok(match v {
        1 => FileKind::Regular,
        2 => FileKind::Dir,
        5 => FileKind::Symlink,
        d => return Err(XdrError::BadDiscriminant(d)),
    })
}

impl XdrCodec for Fattr {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(kind_to_u32(self.kind))
            .put_u32(0o644) // mode
            .put_u32(self.nlink)
            .put_u32(0) // uid
            .put_u32(0) // gid
            .put_u64(self.size)
            .put_u64(self.size) // used
            .put_u64(0) // rdev
            .put_u64(1) // fsid
            .put_u64(self.fileid)
            // atime/mtime/ctime as (secs, nsecs)
            .put_u32((self.mtime_ns / 1_000_000_000) as u32)
            .put_u32((self.mtime_ns % 1_000_000_000) as u32)
            .put_u32((self.mtime_ns / 1_000_000_000) as u32)
            .put_u32((self.mtime_ns % 1_000_000_000) as u32)
            .put_u32((self.ctime_ns / 1_000_000_000) as u32)
            .put_u32((self.ctime_ns % 1_000_000_000) as u32);
    }

    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        let kind = kind_from_u32(dec.get_u32()?)?;
        let _mode = dec.get_u32()?;
        let nlink = dec.get_u32()?;
        let _uid = dec.get_u32()?;
        let _gid = dec.get_u32()?;
        let size = dec.get_u64()?;
        let _used = dec.get_u64()?;
        let _rdev = dec.get_u64()?;
        let _fsid = dec.get_u64()?;
        let fileid = dec.get_u64()?;
        let _at_s = dec.get_u32()?;
        let _at_n = dec.get_u32()?;
        let mt_s = dec.get_u32()?;
        let mt_n = dec.get_u32()?;
        let ct_s = dec.get_u32()?;
        let ct_n = dec.get_u32()?;
        Ok(Fattr {
            kind,
            nlink,
            size,
            fileid,
            mtime_ns: mt_s as u64 * 1_000_000_000 + mt_n as u64,
            ctime_ns: ct_s as u64 * 1_000_000_000 + ct_n as u64,
        })
    }
}

/// A directory entry on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDirEntry {
    /// Inode number.
    pub fileid: u64,
    /// Name.
    pub name: String,
    /// Type.
    pub kind: FileKind,
}

impl XdrCodec for WireDirEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.fileid)
            .put_string(&self.name)
            .put_u32(kind_to_u32(self.kind));
    }

    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        Ok(WireDirEntry {
            fileid: dec.get_u64()?,
            name: dec.get_string()?,
            kind: kind_from_u32(dec.get_u32()?)?,
        })
    }
}

/// ACCESS request/response bits (RFC 1813 §3.3.4).
pub mod access {
    /// Read file data or directory contents.
    pub const READ: u32 = 0x0001;
    /// Look up a name in a directory.
    pub const LOOKUP: u32 = 0x0002;
    /// Rewrite existing file data.
    pub const MODIFY: u32 = 0x0004;
    /// Append/extend.
    pub const EXTEND: u32 = 0x0008;
    /// Delete entries from a directory.
    pub const DELETE: u32 = 0x0010;
    /// Execute (files) / search (directories).
    pub const EXECUTE: u32 = 0x0020;
    /// Everything.
    pub const ALL: u32 = 0x003f;
}

// ---------------------------------------------------------------------
// Helpers shared by args/results
// ---------------------------------------------------------------------

/// Encode `(status)` and on success run `f` for the body.
pub fn encode_res(stat: NfsStat, f: impl FnOnce(&mut Encoder)) -> Bytes {
    let mut enc = Encoder::new();
    enc.put_u32(stat as u32);
    if stat == NfsStat::Ok {
        f(&mut enc);
    }
    enc.finish()
}

/// Decode `(status)`; on success run `f` for the body.
pub fn decode_res<T>(
    body: Bytes,
    f: impl FnOnce(&mut Decoder) -> XdrResult<T>,
) -> XdrResult<Result<T, NfsStat>> {
    let mut dec = Decoder::new(&body);
    let stat = NfsStat::from_u32(dec.get_u32()?)?;
    if stat == NfsStat::Ok {
        Ok(Ok(f(&mut dec)?))
    } else {
        Ok(Err(stat))
    }
}

// ---------------------------------------------------------------------
// Typed argument/result records
// ---------------------------------------------------------------------

/// LOOKUP / CREATE / MKDIR / REMOVE / RMDIR arguments: (dir, name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirOpArgs {
    /// Parent directory handle.
    pub dir: FileHandle,
    /// Entry name.
    pub name: String,
}

impl XdrCodec for DirOpArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.dir.encode(enc);
        enc.put_string(&self.name);
    }
    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        Ok(DirOpArgs {
            dir: FileHandle::decode(dec)?,
            name: dec.get_string()?,
        })
    }
}

/// READ arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadArgs {
    /// File handle.
    pub file: FileHandle,
    /// Byte offset.
    pub offset: u64,
    /// Bytes requested.
    pub count: u32,
}

impl XdrCodec for ReadArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset).put_u32(self.count);
    }
    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        Ok(ReadArgs {
            file: FileHandle::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

/// READ result head (data travels inline over TCP, via chunks over
/// RDMA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadResHead {
    /// Post-op attributes.
    pub attr: Fattr,
    /// Bytes returned.
    pub count: u32,
    /// End of file reached.
    pub eof: bool,
}

impl XdrCodec for ReadResHead {
    fn encode(&self, enc: &mut Encoder) {
        self.attr.encode(enc);
        enc.put_u32(self.count).put_bool(self.eof);
    }
    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        Ok(ReadResHead {
            attr: Fattr::decode(dec)?,
            count: dec.get_u32()?,
            eof: dec.get_bool()?,
        })
    }
}

/// WRITE argument head (data inline over TCP, via read chunks over
/// RDMA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteArgsHead {
    /// File handle.
    pub file: FileHandle,
    /// Byte offset.
    pub offset: u64,
    /// Bytes being written.
    pub count: u32,
    /// Stability: false = UNSTABLE (needs COMMIT), true = FILE_SYNC.
    pub stable: bool,
}

impl XdrCodec for WriteArgsHead {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset)
            .put_u32(self.count)
            .put_bool(self.stable);
    }
    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        Ok(WriteArgsHead {
            file: FileHandle::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
            stable: dec.get_bool()?,
        })
    }
}

/// WRITE result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteRes {
    /// Post-op attributes.
    pub attr: Fattr,
    /// Bytes accepted into the file.
    pub count: u32,
    /// Write verifier: the server's boot-instance cookie (RFC 1813
    /// §3.3.7). A client holding UNSTABLE writes compares this across
    /// replies — a change means the server restarted and may have lost
    /// uncommitted data, so everything pending must be re-driven.
    pub verf: u64,
}

impl XdrCodec for WriteRes {
    fn encode(&self, enc: &mut Encoder) {
        self.attr.encode(enc);
        enc.put_u32(self.count).put_u64(self.verf);
    }
    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        Ok(WriteRes {
            attr: Fattr::decode(dec)?,
            count: dec.get_u32()?,
            verf: dec.get_u64()?,
        })
    }
}

/// COMMIT result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRes {
    /// Write verifier at commit time. Must match the verifier returned
    /// with the UNSTABLE writes being committed; a mismatch tells the
    /// client the server rebooted in between and the writes must be
    /// re-sent before the commit means anything.
    pub verf: u64,
}

impl XdrCodec for CommitRes {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.verf);
    }
    fn decode(dec: &mut Decoder) -> XdrResult<Self> {
        Ok(CommitRes {
            verf: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr() -> Fattr {
        Fattr {
            kind: FileKind::Regular,
            nlink: 1,
            size: 12345,
            fileid: 42,
            mtime_ns: 5_500_000_123,
            ctime_ns: 6_000_000_456,
        }
    }

    #[test]
    fn fattr_roundtrip() {
        let a = attr();
        assert_eq!(Fattr::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn file_handle_roundtrip() {
        let fh = FileHandle(0xdead_beef_0000_0042);
        assert_eq!(FileHandle::from_bytes(&fh.to_bytes()).unwrap(), fh);
    }

    #[test]
    fn args_roundtrip() {
        let a = DirOpArgs {
            dir: FileHandle(1),
            name: "hello.txt".into(),
        };
        assert_eq!(DirOpArgs::from_bytes(&a.to_bytes()).unwrap(), a);

        let r = ReadArgs {
            file: FileHandle(9),
            offset: 1 << 40,
            count: 131072,
        };
        assert_eq!(ReadArgs::from_bytes(&r.to_bytes()).unwrap(), r);

        let w = WriteArgsHead {
            file: FileHandle(9),
            offset: 4096,
            count: 65536,
            stable: false,
        };
        assert_eq!(WriteArgsHead::from_bytes(&w.to_bytes()).unwrap(), w);

        let wr = WriteRes {
            attr: attr(),
            count: 65536,
            verf: 0xb007_0000_0000_0001,
        };
        assert_eq!(WriteRes::from_bytes(&wr.to_bytes()).unwrap(), wr);

        let cr = CommitRes {
            verf: 0xb007_0000_0000_0002,
        };
        assert_eq!(CommitRes::from_bytes(&cr.to_bytes()).unwrap(), cr);
    }

    #[test]
    fn res_encoding_success_and_error() {
        let body = encode_res(NfsStat::Ok, |e| {
            attr().encode(e);
        });
        let got = decode_res(body, Fattr::decode).unwrap();
        assert_eq!(got, Ok(attr()));

        let body = encode_res(NfsStat::NoEnt, |_| unreachable!());
        let got = decode_res(body, Fattr::decode).unwrap();
        assert_eq!(got, Err(NfsStat::NoEnt));
    }

    #[test]
    fn error_mapping() {
        assert_eq!(NfsStat::from(FsError::NotFound), NfsStat::NoEnt);
        assert_eq!(NfsStat::from(FsError::Stale), NfsStat::Stale);
        assert_eq!(NfsStat::from(FsError::NotEmpty), NfsStat::NotEmpty);
    }

    #[test]
    fn proc_numbers_stable() {
        assert_eq!(NfsProc::from_u32(6), Some(NfsProc::Read));
        assert_eq!(NfsProc::from_u32(7), Some(NfsProc::Write));
        assert_eq!(NfsProc::from_u32(4), Some(NfsProc::Access));
        assert_eq!(NfsProc::from_u32(17), Some(NfsProc::ReaddirPlus));
        assert_eq!(NfsProc::from_u32(11), None);
        assert_eq!(NfsProc::from_u32(999), None);
    }

    #[test]
    fn dir_entry_roundtrip() {
        let e = WireDirEntry {
            fileid: 7,
            name: "subdir".into(),
            kind: FileKind::Dir,
        };
        assert_eq!(WireDirEntry::from_bytes(&e.to_bytes()).unwrap(), e);
    }
}
