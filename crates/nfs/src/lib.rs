//! # nfs — NFSv3 client and server
//!
//! An NFSv3 implementation (RFC 1813 subset) whose server is reachable
//! over both transports in this workspace: the paper's RPC/RDMA
//! transport (READ/WRITE data via chunks, READDIR/READLINK via long
//! replies) and the baseline TCP stream transport (data inline).
//! Procedures round-trip through real XDR ([`proto`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod mount;
pub mod proto;
pub mod server;

pub use client::{NfsClient, NfsError, NfsResult};
pub use cluster::{
    promote_backup, run_backup, BackupSession, ClusterMount, ReplRecord, Replicator,
    ReplicatorStats,
};
pub use mount::{MountClient, Mountd, MountdHandle, MOUNT_PROGRAM, MOUNT_VERSION};
pub use proto::{
    DirOpArgs, Fattr, FileHandle, NfsProc, NfsStat, ReadArgs, ReadResHead, WireDirEntry,
    WriteArgsHead, WriteRes, NFS_PROGRAM, NFS_VERSION,
};
pub use server::{NfsServer, NfsServerHandle, NfsServerStats};
