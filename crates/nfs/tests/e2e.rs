//! Full-stack NFS tests: client ↔ server over RPC/RDMA (both designs)
//! and TCP, against tmpfs and disk-backed file systems.

use std::rc::Rc;

use fs_backend::{tmpfs, FileKind};
use ib_verbs::{connect, Fabric, Hca, HcaConfig, HostMem, NodeId, PhysLayout};
use net_stack::{TcpConfig, TcpNet};
use nfs::{NfsClient, NfsError, NfsServer, NfsServerHandle, NfsStat};
use onc_rpc::{serve_stream_bulk_connection, BulkServiceRef, StreamRpcClient};
use rpcrdma::{Design, RdmaRpcClient, RdmaRpcServer, Registrar, RpcRdmaConfig, StrategyKind};
use sim_core::{Cpu, CpuCosts, Payload, Sim, Simulation};

struct Bed {
    client: Rc<NfsClient>,
    server: Rc<NfsServer>,
    client_mem: Rc<HostMem>,
}

fn rdma_bed(sim: &Sim, design: Design, strategy: StrategyKind) -> Bed {
    let fabric = Fabric::new(sim);
    let mk = |id: u32| {
        let node = NodeId(id);
        let cpu = Cpu::new(sim, format!("cpu{id}"), 2, CpuCosts::default());
        let mem = Rc::new(HostMem::new(node, PhysLayout::default(), sim.fork_rng()));
        let hca = Hca::new(sim, node, HcaConfig::sdr(), cpu, mem.clone(), &fabric);
        (hca, mem)
    };
    let (chca, cmem) = mk(0);
    let (shca, _) = mk(1);
    let fs = Rc::new(tmpfs(sim));
    let server = NfsServer::new(Rc::new(fs.clone()));
    let cfg = RpcRdmaConfig::solaris().with_design(design);
    let (qc, qs) = connect(&chca, &shca);
    let rpc_server = RdmaRpcServer::new(
        sim,
        &shca,
        Rc::new(NfsServerHandle(server.clone())),
        Registrar::new(&shca, strategy),
        cfg,
    );
    rpc_server.serve_connection(qs);
    let rpc_client = RdmaRpcClient::new(
        sim,
        &chca,
        qc,
        Registrar::new(&chca, strategy),
        cfg,
        nfs::NFS_PROGRAM,
        nfs::NFS_VERSION,
    );
    Bed {
        client: Rc::new(NfsClient::over_rdma(rpc_client)),
        server,
        client_mem: cmem,
    }
}

/// Async-friendly TCP testbed: must be awaited inside the simulation.
async fn tcp_bed_async(sim: &Sim) -> Bed {
    let net = TcpNet::new(sim, TcpConfig::ipoib());
    let c_cpu = Cpu::new(sim, "c", 2, CpuCosts::default());
    let s_cpu = Cpu::new(sim, "s", 2, CpuCosts::default());
    net.attach(NodeId(0), c_cpu);
    net.attach(NodeId(1), s_cpu);
    let fs = Rc::new(tmpfs(sim));
    let server = NfsServer::new(Rc::new(fs.clone()));
    let handle = NfsServerHandle(server.clone());
    let mut listener = net.listen(NodeId(1), 2049);
    let sim2 = sim.clone();
    sim.spawn(async move {
        loop {
            let conn = listener.accept().await;
            let svc: BulkServiceRef = Rc::new(handle.clone());
            let sim3 = sim2.clone();
            sim2.spawn(async move {
                serve_stream_bulk_connection(sim3, conn, svc).await;
            });
        }
    });
    let cmem = Rc::new(HostMem::new(
        NodeId(0),
        PhysLayout::default(),
        sim.fork_rng(),
    ));
    let stream = net.connect(NodeId(0), NodeId(1), 2049).await;
    let rpc = StreamRpcClient::new(sim, stream, nfs::NFS_PROGRAM, nfs::NFS_VERSION);
    Bed {
        client: Rc::new(NfsClient::over_tcp(rpc)),
        server,
        client_mem: cmem,
    }
}

async fn exercise_full_protocol(bed: &Bed) {
    let client = &bed.client;
    let root = bed.server.root_handle();

    client.null().await.unwrap();

    // Directory tree.
    let dir = client.mkdir(root, "work").await.unwrap();
    let file = client.create(dir.handle(), "data.bin").await.unwrap();
    client
        .symlink(dir.handle(), "link", "data.bin")
        .await
        .unwrap();
    assert_eq!(
        client
            .readlink(client.lookup(dir.handle(), "link").await.unwrap().handle())
            .await
            .unwrap(),
        "data.bin"
    );

    // Write + read back (128 KiB, checked bytes).
    let user = bed.client_mem.alloc(256 * 1024);
    let pattern: Vec<u8> = (0..131_072u32).map(|i| (i % 253) as u8).collect();
    user.write(0, Payload::real(pattern.clone()));
    let n = client
        .write(file.handle(), 0, &user, 0, 131_072, false)
        .await
        .unwrap();
    assert_eq!(n, 131_072);

    let dst = bed.client_mem.alloc(256 * 1024);
    let (data, eof) = client
        .read(file.handle(), 0, 131_072, Some((&dst, 0)))
        .await
        .unwrap();
    assert_eq!(&data.materialize()[..], &pattern[..]);
    assert!(eof);
    assert_eq!(&dst.read(0, 131_072).materialize()[..], &pattern[..]);

    // Partial read in the middle.
    let (mid, eof) = client.read(file.handle(), 1000, 5000, None).await.unwrap();
    assert_eq!(&mid.materialize()[..], &pattern[1000..6000]);
    assert!(!eof);

    // Attributes reflect the write.
    let attr = client.getattr(file.handle()).await.unwrap();
    assert_eq!(attr.size, 131_072);
    assert_eq!(attr.kind, FileKind::Regular);

    // Readdir sees all three entries.
    let entries = client.readdir(dir.handle()).await.unwrap();
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["data.bin", "link"]);

    // ACCESS: granted bits within the requested envelope.
    let granted = client
        .access(
            file.handle(),
            nfs::proto::access::READ | nfs::proto::access::MODIFY,
        )
        .await
        .unwrap();
    assert_eq!(
        granted,
        nfs::proto::access::READ | nfs::proto::access::MODIFY
    );
    assert!(matches!(
        client
            .access(nfs::FileHandle(99999), nfs::proto::access::READ)
            .await,
        Err(NfsError::Status(NfsStat::Stale))
    ));

    // READDIRPLUS: entries come back with attributes and handles.
    let plus = client.readdirplus(dir.handle()).await.unwrap();
    assert_eq!(plus.len(), 2);
    let (entry, attr, fh) = &plus[0];
    assert_eq!(entry.name, "data.bin");
    assert_eq!(attr.unwrap().size, 131_072);
    assert_eq!(fh.0, entry.fileid);

    // Rename + remove + errors.
    client
        .rename(dir.handle(), "data.bin", root, "moved.bin")
        .await
        .unwrap();
    assert!(matches!(
        client.lookup(dir.handle(), "data.bin").await.unwrap_err(),
        NfsError::Status(NfsStat::NoEnt)
    ));
    client.lookup(root, "moved.bin").await.unwrap();
    client.remove(dir.handle(), "link").await.unwrap();
    client.rmdir(root, "work").await.unwrap();
    assert!(matches!(
        client.rmdir(root, "work").await.unwrap_err(),
        NfsError::Status(NfsStat::NoEnt)
    ));

    // Truncate via SETATTR.
    let attr = client.setattr_size(file.handle(), 1000).await.unwrap();
    assert_eq!(attr.size, 1000);

    // COMMIT and FSSTAT.
    client.commit(file.handle()).await.unwrap();
    let (bytes_used, inodes) = client.fsstat(root).await.unwrap();
    assert_eq!(bytes_used, 1000);
    assert!(inodes >= 2);
}

#[test]
fn full_protocol_over_rdma_read_write_design() {
    let mut sim = Simulation::new(21);
    let h = sim.handle();
    let bed = rdma_bed(&h, Design::ReadWrite, StrategyKind::Dynamic);
    sim.block_on(async move { exercise_full_protocol(&bed).await });
}

#[test]
fn full_protocol_over_rdma_read_read_design() {
    let mut sim = Simulation::new(22);
    let h = sim.handle();
    let bed = rdma_bed(&h, Design::ReadRead, StrategyKind::Dynamic);
    sim.block_on(async move { exercise_full_protocol(&bed).await });
}

#[test]
fn full_protocol_over_rdma_cache_and_allphysical() {
    for strategy in [
        StrategyKind::Cache,
        StrategyKind::AllPhysical,
        StrategyKind::Fmr,
    ] {
        let mut sim = Simulation::new(23);
        let h = sim.handle();
        let bed = rdma_bed(&h, Design::ReadWrite, strategy);
        sim.block_on(async move { exercise_full_protocol(&bed).await });
    }
}

#[test]
fn full_protocol_over_tcp() {
    let mut sim = Simulation::new(24);
    let h = sim.handle();
    let bed_fut = {
        let h = h.clone();
        async move {
            let bed = tcp_bed_async(&h).await;
            exercise_full_protocol(&bed).await;
        }
    };
    sim.block_on(bed_fut);
}

#[test]
fn big_file_sequential_io_rdma() {
    // 8 MiB written and read back in 1 MiB records over the RW design.
    let mut sim = Simulation::new(25);
    let h = sim.handle();
    let bed = rdma_bed(&h, Design::ReadWrite, StrategyKind::Cache);
    sim.block_on(async move {
        let root = bed.server.root_handle();
        let f = bed.client.create(root, "big").await.unwrap();
        let buf = bed.client_mem.alloc(1 << 20);
        let total: u64 = 8 << 20;
        let mut off = 0u64;
        while off < total {
            buf.write(0, Payload::synthetic(off, 1 << 20));
            bed.client
                .write(f.handle(), off, &buf, 0, 1 << 20, false)
                .await
                .unwrap();
            off += 1 << 20;
        }
        let attr = bed.client.getattr(f.handle()).await.unwrap();
        assert_eq!(attr.size, total);
        // Read back and verify each record.
        let dst = bed.client_mem.alloc(1 << 20);
        let mut off = 0u64;
        while off < total {
            let (data, _) = bed
                .client
                .read(f.handle(), off, 1 << 20, Some((&dst, 0)))
                .await
                .unwrap();
            assert!(
                data.content_eq(&Payload::synthetic(off, 1 << 20)),
                "corruption at offset {off}"
            );
            off += 1 << 20;
        }
    });
}

#[test]
fn tcp_and_rdma_agree_on_contents() {
    // The same logical operations produce identical file contents
    // regardless of transport.
    let digest = |run: &dyn Fn(&mut Simulation) -> Vec<u8>| {
        let mut sim = Simulation::new(77);
        run(&mut sim)
    };
    let rdma = digest(&|sim: &mut Simulation| {
        let h = sim.handle();
        let bed = rdma_bed(&h, Design::ReadWrite, StrategyKind::Dynamic);
        sim.block_on(async move {
            let root = bed.server.root_handle();
            let f = bed.client.create(root, "x").await.unwrap();
            let buf = bed.client_mem.alloc(4096);
            buf.write(
                0,
                Payload::real((0u8..=255).cycle().take(4096).collect::<Vec<_>>()),
            );
            bed.client
                .write(f.handle(), 0, &buf, 0, 4096, true)
                .await
                .unwrap();
            let (data, _) = bed.client.read(f.handle(), 0, 4096, None).await.unwrap();
            data.materialize().to_vec()
        })
    });
    let tcp = digest(&|sim: &mut Simulation| {
        let h = sim.handle();
        sim.block_on(async move {
            let bed = tcp_bed_async(&h).await;
            let root = bed.server.root_handle();
            let f = bed.client.create(root, "x").await.unwrap();
            let buf = bed.client_mem.alloc(4096);
            buf.write(
                0,
                Payload::real((0u8..=255).cycle().take(4096).collect::<Vec<_>>()),
            );
            bed.client
                .write(f.handle(), 0, &buf, 0, 4096, true)
                .await
                .unwrap();
            let (data, _) = bed.client.read(f.handle(), 0, 4096, None).await.unwrap();
            data.materialize().to_vec()
        })
    });
    assert_eq!(rdma, tcp);
}

/// Like [`rdma_bed`] but with MSGP small writes enabled (so a small
/// NFS WRITE is pure Send/reply traffic — no RDMA Read legs — and a
/// single forced drop can target the call or the reply exactly) and
/// with the fabric + RPC server exposed for fault injection.
#[allow(clippy::type_complexity)]
fn fault_bed(sim: &Sim, design: Design) -> (Bed, Fabric<ib_verbs::WireMsg>, Rc<RdmaRpcServer>) {
    let fabric = Fabric::new(sim);
    let mk = |id: u32| {
        let node = NodeId(id);
        let cpu = Cpu::new(sim, format!("cpu{id}"), 2, CpuCosts::default());
        let mem = Rc::new(HostMem::new(node, PhysLayout::default(), sim.fork_rng()));
        let hca = Hca::new(sim, node, HcaConfig::sdr(), cpu, mem.clone(), &fabric);
        (hca, mem)
    };
    let (chca, cmem) = mk(0);
    let (shca, _) = mk(1);
    let fs = Rc::new(tmpfs(sim));
    let server = NfsServer::new(Rc::new(fs.clone()));
    let mut cfg = RpcRdmaConfig::solaris().with_design(design);
    cfg.msgp_small_writes = true;
    let (qc, qs) = connect(&chca, &shca);
    let rpc_server = RdmaRpcServer::new(
        sim,
        &shca,
        Rc::new(NfsServerHandle(server.clone())),
        Registrar::new(&shca, StrategyKind::Dynamic),
        cfg,
    );
    rpc_server.serve_connection(qs);
    let rpc_client = RdmaRpcClient::new(
        sim,
        &chca,
        qc,
        Registrar::new(&chca, StrategyKind::Dynamic),
        cfg,
        nfs::NFS_PROGRAM,
        nfs::NFS_VERSION,
    );
    // Forced drops only: no per-link probability, so nothing else in
    // the run is perturbed.
    fabric.enable_faults(sim.fork_rng());
    (
        Bed {
            client: Rc::new(NfsClient::over_rdma(rpc_client)),
            server,
            client_mem: cmem,
        },
        fabric,
        rpc_server,
    )
}

#[test]
fn write_reply_drop_retransmits_without_double_apply() {
    // The server executes the WRITE and its reply is lost. The client
    // must retransmit the same XID; the server's duplicate request
    // cache must replay the original reply instead of applying the
    // WRITE twice. Both designs.
    for design in [Design::ReadWrite, Design::ReadRead] {
        let mut sim = Simulation::new(17);
        let h = sim.handle();
        let (bed, fabric, rpc_server) = fault_bed(&h, design);
        sim.block_on(async move {
            let root = bed.server.root_handle();
            let f = bed.client.create(root, "f").await.unwrap();
            let fh = f.handle();
            let buf = bed.client_mem.alloc(512);
            buf.write(0, Payload::synthetic(3, 512));

            // The next message arriving at the client is this WRITE's
            // reply Send: swallow exactly that one.
            fabric.drop_next_to(NodeId(0), 1);
            let n = bed.client.write(fh, 0, &buf, 0, 512, false).await.unwrap();
            assert_eq!(n, 512, "{design:?}");

            // Applied exactly once, despite the retransmission.
            assert_eq!(bed.server.stats.writes.get(), 1, "{design:?}");
            assert_eq!(bed.server.stats.bytes_written.get(), 512, "{design:?}");
            let cs = bed.client.rdma().unwrap().stats();
            assert!(cs.retransmits >= 1, "{design:?}: no retransmission");
            assert!(cs.timeouts >= 1, "{design:?}: no timeout observed");
            assert!(
                rpc_server.stats.drc_replays.get() >= 1,
                "{design:?}: DRC never replayed"
            );

            // And the bytes on disk are the bytes we wrote.
            let (data, _) = bed.client.read(fh, 0, 512, None).await.unwrap();
            assert!(
                data.content_eq(&Payload::synthetic(3, 512)),
                "{design:?}: corrupt contents"
            );
        });
    }
}

#[test]
fn write_call_drop_retransmits_and_applies_once() {
    // The WRITE call itself is lost before the server sees it: the
    // retransmission is the first copy the server receives, so it
    // executes fresh (no DRC hit) — and still exactly once.
    for design in [Design::ReadWrite, Design::ReadRead] {
        let mut sim = Simulation::new(18);
        let h = sim.handle();
        let (bed, fabric, rpc_server) = fault_bed(&h, design);
        sim.block_on(async move {
            let root = bed.server.root_handle();
            let f = bed.client.create(root, "f").await.unwrap();
            let fh = f.handle();
            let buf = bed.client_mem.alloc(512);
            buf.write(0, Payload::synthetic(9, 512));

            // Next arrival at the server is the WRITE call Send.
            fabric.drop_next_to(NodeId(1), 1);
            let n = bed.client.write(fh, 0, &buf, 0, 512, false).await.unwrap();
            assert_eq!(n, 512, "{design:?}");

            assert_eq!(bed.server.stats.writes.get(), 1, "{design:?}");
            let cs = bed.client.rdma().unwrap().stats();
            assert!(cs.retransmits >= 1, "{design:?}: no retransmission");
            assert_eq!(
                rpc_server.stats.drc_replays.get(),
                0,
                "{design:?}: server never saw the first copy, nothing to replay"
            );

            let (data, _) = bed.client.read(fh, 0, 512, None).await.unwrap();
            assert!(data.content_eq(&Payload::synthetic(9, 512)), "{design:?}");
        });
    }
}
