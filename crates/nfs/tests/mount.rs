//! MOUNT protocol tests: NFS + mountd sharing one connection through a
//! `ServiceRegistry`, over both transports.

use std::rc::Rc;

use fs_backend::tmpfs;
use ib_verbs::{connect, Fabric, Hca, HcaConfig, HostMem, NodeId, PhysLayout};
use net_stack::{TcpConfig, TcpNet};
use nfs::{MountClient, Mountd, MountdHandle, NfsClient, NfsServer, NfsServerHandle};
use onc_rpc::{serve_stream_bulk_connection, ServiceRegistry, StreamRpcClient};
use rpcrdma::{Design, RdmaRpcClient, RdmaRpcServer, Registrar, RpcRdmaConfig, StrategyKind};
use sim_core::{Cpu, CpuCosts, Payload, Sim, Simulation};

fn registry(server: &Rc<NfsServer>, mountd: &Rc<Mountd>) -> onc_rpc::BulkServiceRef {
    ServiceRegistry::new()
        .register(Rc::new(NfsServerHandle(server.clone())))
        .register(Rc::new(MountdHandle(mountd.clone())))
        .into_service()
}

#[test]
fn mount_then_io_over_rdma() {
    let mut sim = Simulation::new(61);
    let h: Sim = sim.handle();
    let fabric = Fabric::new(&h);
    let mk = |id: u32| {
        let node = NodeId(id);
        let cpu = Cpu::new(&h, format!("cpu{id}"), 2, CpuCosts::default());
        let mem = Rc::new(HostMem::new(node, PhysLayout::default(), h.fork_rng()));
        let hca = Hca::new(&h, node, HcaConfig::sdr(), cpu, mem.clone(), &fabric);
        (hca, mem)
    };
    let (chca, cmem) = mk(0);
    let (shca, _) = mk(1);
    let fs = Rc::new(tmpfs(&h));
    let server = NfsServer::new(Rc::new(fs.clone()));
    let mountd = Mountd::new();
    mountd.export("/export/data", server.root_handle());

    let cfg = RpcRdmaConfig::solaris().with_design(Design::ReadWrite);
    let (qc, qs) = connect(&chca, &shca);
    let rpc_server = RdmaRpcServer::new(
        &h,
        &shca,
        registry(&server, &mountd),
        Registrar::new(&shca, StrategyKind::Dynamic),
        cfg,
    );
    rpc_server.serve_connection(qs);
    let rpc_client = RdmaRpcClient::new(
        &h,
        &chca,
        qc,
        Registrar::new(&chca, StrategyKind::Dynamic),
        cfg,
        nfs::NFS_PROGRAM,
        nfs::NFS_VERSION,
    );
    let mount = MountClient::over_rdma(rpc_client.clone());
    let nfs_client = NfsClient::over_rdma(rpc_client);

    sim.block_on(async move {
        // Discover and mount the export.
        let exports = mount.exports().await.unwrap();
        assert_eq!(exports, vec!["/export/data".to_string()]);
        assert!(matches!(
            mount.mnt("/no/such/export").await,
            Err(nfs::NfsError::Status(_))
        ));
        let root = mount.mnt("/export/data").await.unwrap();

        // The handle works for real I/O on the same connection.
        let f = nfs_client.create(root, "hello").await.unwrap();
        let buf = cmem.alloc(4096);
        buf.write(0, Payload::real(vec![5u8; 1000]));
        nfs_client
            .write(f.handle(), 0, &buf, 0, 1000, false)
            .await
            .unwrap();
        let (data, _) = nfs_client.read(f.handle(), 0, 1000, None).await.unwrap();
        assert_eq!(&data.materialize()[..], &[5u8; 1000]);

        // DUMP reports us; UMNT removes us.
        let mounts = mount.dump().await.unwrap();
        assert_eq!(mounts.len(), 1);
        assert_eq!(mounts[0].1, "/export/data");
        mount.umnt("/export/data").await.unwrap();
        assert!(mount.dump().await.unwrap().is_empty());
    });
}

#[test]
fn mount_then_io_over_tcp() {
    let mut sim = Simulation::new(62);
    let h: Sim = sim.handle();
    let net = TcpNet::new(&h, TcpConfig::ipoib());
    net.attach(NodeId(0), Cpu::new(&h, "c", 2, CpuCosts::default()));
    net.attach(NodeId(1), Cpu::new(&h, "s", 2, CpuCosts::default()));
    let fs = Rc::new(tmpfs(&h));
    let server = NfsServer::new(Rc::new(fs.clone()));
    let mountd = Mountd::new();
    mountd.export("/export", server.root_handle());
    let svc = registry(&server, &mountd);
    let mut listener = net.listen(NodeId(1), 2049);
    let h2 = h.clone();
    sim.spawn(async move {
        loop {
            let conn = listener.accept().await;
            let svc = svc.clone();
            let h3 = h2.clone();
            h2.spawn(async move {
                serve_stream_bulk_connection(h3, conn, svc).await;
            });
        }
    });
    let net2 = net.clone();
    let cmem = Rc::new(HostMem::new(NodeId(0), PhysLayout::default(), h.fork_rng()));
    sim.block_on(async move {
        let stream = net2.connect(NodeId(0), NodeId(1), 2049).await;
        let rpc = StreamRpcClient::new(&h, stream, nfs::NFS_PROGRAM, nfs::NFS_VERSION);
        let mount = MountClient::over_tcp(rpc.clone());
        let nfs_client = NfsClient::over_tcp(rpc);

        let root = mount.mnt("/export").await.unwrap();
        let f = nfs_client.create(root, "x").await.unwrap();
        let buf = cmem.alloc(4096);
        buf.write(0, Payload::real(vec![9u8; 64]));
        nfs_client
            .write(f.handle(), 0, &buf, 0, 64, true)
            .await
            .unwrap();
        let attr = nfs_client.getattr(f.handle()).await.unwrap();
        assert_eq!(attr.size, 64);
        mount.umnt("/export").await.unwrap();
    });
}

#[test]
fn unknown_program_rejected_by_registry() {
    let mut sim = Simulation::new(63);
    let h: Sim = sim.handle();
    let net = TcpNet::new(&h, TcpConfig::gige());
    net.attach(NodeId(0), Cpu::new(&h, "c", 2, CpuCosts::default()));
    net.attach(NodeId(1), Cpu::new(&h, "s", 2, CpuCosts::default()));
    let fs = Rc::new(tmpfs(&h));
    let server = NfsServer::new(Rc::new(fs.clone()));
    let mountd = Mountd::new();
    let svc = registry(&server, &mountd);
    let mut listener = net.listen(NodeId(1), 2049);
    let h2 = h.clone();
    sim.spawn(async move {
        let conn = listener.accept().await;
        serve_stream_bulk_connection(h2.clone(), conn, svc).await;
    });
    let net2 = net.clone();
    sim.block_on(async move {
        let stream = net2.connect(NodeId(0), NodeId(1), 2049).await;
        let rpc = StreamRpcClient::new(&h, stream, nfs::NFS_PROGRAM, nfs::NFS_VERSION);
        let err = rpc
            .call_as(424242, 1, 0, bytes::Bytes::new(), None)
            .await
            .unwrap_err();
        assert_eq!(
            err,
            onc_rpc::RpcError::Rejected(onc_rpc::AcceptStat::ProgUnavail)
        );
    });
}
