//! Crash/recovery tests for the write-ahead log: power failure at a
//! seeded point, replay on restart, committed-survives /
//! uncommitted-cleanly-lost, and same-seed determinism.

use proptest::prelude::*;

use fs_backend::{diskfs_wal, FileId, Wal, WalConfig};
use sim_core::{ExtentMap, Payload, SimDuration, Simulation};

#[test]
fn committed_survives_uncommitted_cleanly_lost() {
    let mut sim = Simulation::new(7);
    let h = sim.handle();
    let fs = std::rc::Rc::new(diskfs_wal(&h, 1 << 30, WalConfig::default()));
    let root = fs.root();
    sim.block_on(async move {
        let a = fs.create(root, "durable").unwrap();
        let b = fs.create(root, "volatile").unwrap();
        let a_data = Payload::synthetic(11, 1 << 20);
        let b_data = Payload::synthetic(22, 1 << 20);
        fs.write(a.id, 0, a_data.clone()).await.unwrap();
        fs.commit(a.id).await.unwrap();
        // B is written UNSTABLE-style: dirty in cache, WAL tail/flushed
        // only, never committed.
        fs.write(b.id, 0, b_data.clone()).await.unwrap();

        fs.store().power_fail_restart().await;

        let got_a = fs.read(a.id, 0, 1 << 20).await.unwrap();
        assert!(got_a.content_eq(&a_data), "committed data must survive");
        let got_b = fs.read(b.id, 0, 1 << 20).await.unwrap();
        assert!(
            got_b.content_eq(&Payload::zeros(1 << 20)),
            "uncommitted data must be cleanly lost (zeros), not torn"
        );
        let wal = fs.store().wal().unwrap();
        assert!(wal.stats.replayed_records.get() > 0, "recovery replayed");
        assert!(wal.stats.truncated_records.get() > 0, "tail truncated");
    });
}

#[test]
fn group_commit_covers_all_files_in_one_batch() {
    let mut sim = Simulation::new(9);
    let h = sim.handle();
    let fs = std::rc::Rc::new(diskfs_wal(&h, 1 << 30, WalConfig::default()));
    let root = fs.root();
    sim.block_on(async move {
        let a = fs.create(root, "a").unwrap();
        let b = fs.create(root, "b").unwrap();
        fs.write(a.id, 0, Payload::synthetic(1, 256 * 1024))
            .await
            .unwrap();
        fs.write(b.id, 0, Payload::synthetic(2, 256 * 1024))
            .await
            .unwrap();
        // Committing ONE file group-commits the whole pending tail.
        fs.commit(a.id).await.unwrap();
        let wal = fs.store().wal().unwrap();
        assert_eq!(wal.stats.commits.get(), 1);
        assert_eq!(wal.committed_records(), 2);
        fs.store().power_fail_restart().await;
        let got_b = fs.read(b.id, 0, 256 * 1024).await.unwrap();
        assert!(
            got_b.content_eq(&Payload::synthetic(2, 256 * 1024)),
            "b rode a's group commit"
        );
    });
}

#[test]
fn clean_commit_costs_no_time_with_wal() {
    let mut sim = Simulation::new(3);
    let h = sim.handle();
    let fs = std::rc::Rc::new(diskfs_wal(&h, 1 << 30, WalConfig::default()));
    let root = fs.root();
    sim.block_on({
        let h = h.clone();
        async move {
            let f = fs.create(root, "x").unwrap();
            fs.write(f.id, 0, Payload::synthetic(5, 64 * 1024))
                .await
                .unwrap();
            fs.commit(f.id).await.unwrap();
            let t0 = h.now();
            fs.commit(f.id).await.unwrap();
            assert_eq!(
                h.now().saturating_since(t0).as_nanos(),
                0,
                "clean commit must be free"
            );
        }
    });
}

/// Drive the seeded mid-commit power failure once; returns observables
/// that must be bit-identical across same-seed runs.
fn seeded_midcommit_run(seed: u64) -> (u64, u64, u64, u64, bool) {
    let mut sim = Simulation::new(seed);
    let h = sim.handle();
    let fs = std::rc::Rc::new(diskfs_wal(&h, 1 << 30, WalConfig::default()));
    let root = fs.root();
    let out = sim.block_on({
        let h = h.clone();
        async move {
            let f = fs.create(root, "victim").unwrap();
            // 14 x 64 KiB records stay below the 1 MiB flush watermark,
            // so the whole batch flushes inside commit(), not append().
            let rec = 64 * 1024u64;
            for i in 0..14u64 {
                fs.write(f.id, i * rec, Payload::synthetic(77 + i, rec))
                    .await
                    .unwrap();
            }
            let wal = fs.store().wal().unwrap();
            assert_eq!(wal.tail_records(), 14, "nothing flushed early");

            // Power-fail at a seeded point inside the group commit: the
            // ~896 KiB flush takes ~34 ms (4 ms seek + 30 MB/s), so any
            // delay in [1, 26] ms lands mid-commit, before the marker.
            let mut rng = h.fork_rng();
            let delay = SimDuration::from_millis(1 + rng.gen_range(25));
            let store_fs = fs.clone();
            let h2 = h.clone();
            h.spawn(async move {
                h2.sleep(delay).await;
                store_fs.store().power_fail_restart().await;
            });
            // The commit races the failure; it must not panic, and the
            // batch must not be applied.
            fs.commit(f.id).await.unwrap();

            let survived = fs
                .read(f.id, 0, rec)
                .await
                .unwrap()
                .content_eq(&Payload::synthetic(77, rec));
            (
                wal.stats.commits.get(),
                wal.committed_records(),
                wal.stats.truncated_records.get(),
                delay.as_nanos(),
                survived,
            )
        }
    });
    (out.0, out.1, out.2, out.3, out.4)
}

#[test]
fn seeded_power_fail_during_group_commit_is_deterministic() {
    let first = seeded_midcommit_run(0xC4A5);
    let second = seeded_midcommit_run(0xC4A5);
    assert_eq!(first, second, "same seed must replay bit-for-bit");
    let (commits, committed, truncated, _, survived) = first;
    assert_eq!(commits, 0, "the marker never landed");
    assert_eq!(committed, 0, "the whole batch is lost, never torn");
    assert!(truncated > 0);
    assert!(!survived, "mid-commit batch must not survive the failure");
    // A different seed picks a different failure point but the same
    // lost-batch outcome (the window spans the whole flush).
    let other = seeded_midcommit_run(0xBEEF);
    assert_ne!(first.3, other.3, "different seed, different fail point");
    assert_eq!(other.1, 0);
}

#[test]
fn recovery_after_interrupted_commit_then_recommit_survives() {
    let mut sim = Simulation::new(0xD00D);
    let h = sim.handle();
    let fs = std::rc::Rc::new(diskfs_wal(&h, 1 << 30, WalConfig::default()));
    let root = fs.root();
    sim.block_on({
        let h = h.clone();
        async move {
            let f = fs.create(root, "twice").unwrap();
            let data = Payload::synthetic(5, 2 << 20);
            fs.write(f.id, 0, data.clone()).await.unwrap();
            let store_fs = fs.clone();
            let h2 = h.clone();
            h.spawn(async move {
                h2.sleep(SimDuration::from_millis(5)).await;
                store_fs.store().power_fail_restart().await;
            });
            fs.commit(f.id).await.unwrap();
            // After restart the write is gone; the application layer
            // (NFS client) re-drives it, and the second commit runs
            // with no failure in flight.
            fs.write(f.id, 0, data.clone()).await.unwrap();
            fs.commit(f.id).await.unwrap();
            fs.store().power_fail_restart().await;
            let got = fs.read(f.id, 0, 2 << 20).await.unwrap();
            assert!(got.content_eq(&data), "re-driven commit must survive");
        }
    });
}

#[test]
fn wal_direct_two_phase_semantics() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let wal = Wal::new(&h, WalConfig::default());
    sim.block_on(async move {
        wal.append(FileId(1), 0, Payload::synthetic(1, 4096)).await;
        wal.append(FileId(1), 4096, Payload::synthetic(2, 4096))
            .await;
        assert_eq!(wal.tail_records(), 2);
        wal.flush().await;
        assert_eq!(wal.tail_records(), 0);
        assert_eq!(wal.flushed_records(), 2, "durable but uncommitted");
        assert_eq!(wal.committed_records(), 0);
        // Power failure here: flushed-but-unmarked records truncate.
        wal.power_fail();
        assert_eq!(wal.flushed_records(), 0);
        assert_eq!(wal.recover().await.len(), 0);
        // A full commit moves records behind the marker.
        wal.append(FileId(1), 0, Payload::synthetic(3, 4096)).await;
        wal.commit().await;
        assert_eq!(wal.committed_records(), 1);
        wal.power_fail();
        assert_eq!(wal.recover().await.len(), 1, "marker makes it durable");
    });
}

/// One generated UNSTABLE write: `(file, block, blocks, seed)`.
type GenWrite = (u64, u64, u64, u64);

fn arb_write() -> impl Strategy<Value = GenWrite> {
    (0u64..3, 0u64..32, 1u64..4, 1u64..1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying the recovered log twice converges to the same
    /// contents as replaying it once (idempotence), for any mix of
    /// overlapping writes across files.
    #[test]
    fn wal_replay_is_idempotent(
        writes in proptest::collection::vec(arb_write(), 1..32),
    ) {
        const BLOCK: u64 = 4096;
        let mut sim = Simulation::new(42);
        let h = sim.handle();
        let wal = Wal::new(&h, WalConfig::default());
        let replayed = sim.block_on(async move {
            for &(file, block, blocks, seed) in &writes {
                wal.append(
                    FileId(file),
                    block * BLOCK,
                    Payload::synthetic(seed, blocks * BLOCK),
                )
                .await;
            }
            wal.commit().await;
            wal.power_fail();
            wal.recover().await
        });
        let apply = |maps: &mut [ExtentMap; 3], rounds: usize| {
            for _ in 0..rounds {
                for r in &replayed {
                    maps[r.file.0 as usize].write(r.off, r.data.clone());
                }
            }
        };
        let mut once: [ExtentMap; 3] = Default::default();
        let mut twice: [ExtentMap; 3] = Default::default();
        apply(&mut once, 1);
        apply(&mut twice, 2);
        for f in 0..3 {
            let a = once[f].read(0, 36 * BLOCK);
            let b = twice[f].read(0, 36 * BLOCK);
            prop_assert!(a.content_eq(&b), "file {} diverged on re-replay", f);
        }
    }
}

#[test]
fn size_watermark_triggers_flush_on_append() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let cfg = WalConfig {
        flush_watermark_bytes: 64 * 1024,
        ..Default::default()
    };
    let wal = Wal::new(&h, cfg);
    sim.block_on(async move {
        for i in 0..8 {
            wal.append(FileId(1), i * 16384, Payload::synthetic(i, 16384))
                .await;
        }
        assert!(
            wal.stats.flushes.get() >= 1,
            "watermark must flush the tail during appends"
        );
        assert!(wal.tail_records() < 8);
    });
}
