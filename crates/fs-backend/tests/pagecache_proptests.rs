//! Model-based property tests for the page cache: residency, LRU
//! capacity bounds and dirty-tracking must agree with a naive model.

use proptest::prelude::*;
use std::collections::HashSet;

use fs_backend::{FileId, PageCache, Raid0};
use sim_core::Simulation;

const PAGE: u64 = 4096;
const CAP_PAGES: u64 = 16;

#[derive(Clone, Debug)]
enum Op {
    Read { file: u64, page: u64, pages: u64 },
    Write { file: u64, page: u64, pages: u64 },
    Commit { file: u64 },
    Invalidate { file: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..3, 0u64..32, 1u64..4).prop_map(|(file, page, pages)| Op::Read { file, page, pages }),
        (0u64..3, 0u64..32, 1u64..4).prop_map(|(file, page, pages)| Op::Write {
            file,
            page,
            pages
        }),
        (0u64..3).prop_map(|file| Op::Commit { file }),
        (0u64..3).prop_map(|file| Op::Invalidate { file }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn residency_never_exceeds_capacity_and_hits_are_sound(
        ops in proptest::collection::vec(arb_op(), 1..64),
    ) {
        let mut sim = Simulation::new(77);
        let h = sim.handle();
        let raid = Raid0::paper_array(&h);
        let cache = std::rc::Rc::new(PageCache::new(raid, CAP_PAGES * PAGE, PAGE));
        let c2 = cache.clone();
        sim.block_on(async move {
            // Reference model of *which pages could possibly be
            // resident* (superset: readahead may add more, evictions
            // remove — so we check the invariants, not exact equality).
            let mut ever_touched: HashSet<(u64, u64)> = HashSet::new();
            for op in ops {
                match op {
                    Op::Read { file, page, pages } => {
                        let before_hits = c2.hits();
                        let before_misses = c2.misses();
                        c2.read_range(FileId(file), file << 40, page * PAGE, pages * PAGE)
                            .await;
                        // Every demanded page is accounted exactly once.
                        let delta =
                            (c2.hits() - before_hits) + (c2.misses() - before_misses);
                        prop_assert_eq!(delta, pages);
                        for p in page..page + pages {
                            ever_touched.insert((file, p));
                        }
                    }
                    Op::Write { file, page, pages } => {
                        c2.write_range(FileId(file), page * PAGE, pages * PAGE).await;
                        for p in page..page + pages {
                            ever_touched.insert((file, p));
                        }
                    }
                    Op::Commit { file } => {
                        c2.commit(FileId(file), file << 40).await;
                    }
                    Op::Invalidate { file } => {
                        c2.invalidate(FileId(file));
                    }
                }
                // Capacity invariant after every step.
                prop_assert!(
                    c2.resident_pages() <= CAP_PAGES,
                    "{} resident > cap {}",
                    c2.resident_pages(),
                    CAP_PAGES
                );
            }
            Ok(())
        })?;
    }

    /// Reading the same in-capacity range twice: the second pass is all
    /// hits and costs zero virtual time.
    #[test]
    fn rereads_within_capacity_are_free(pages in 1u64..=CAP_PAGES) {
        let mut sim = Simulation::new(5);
        let h = sim.handle();
        let raid = Raid0::paper_array(&h);
        let cache = std::rc::Rc::new(PageCache::new(raid, CAP_PAGES * PAGE, PAGE));
        let c2 = cache.clone();
        sim.block_on(async move {
            c2.read_range(FileId(1), 0, 0, pages * PAGE).await;
            let t0 = h.now();
            let misses_before = c2.misses();
            c2.read_range(FileId(1), 0, 0, pages * PAGE).await;
            prop_assert_eq!(c2.misses(), misses_before, "re-read missed");
            prop_assert_eq!(h.now(), t0, "re-read cost time");
            Ok(())
        })?;
    }
}
