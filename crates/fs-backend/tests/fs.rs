//! File-system behaviour tests across both back ends.

use fs_backend::{diskfs, tmpfs, FileKind, FsError};
use sim_core::{Payload, Simulation};

#[test]
fn create_write_read_roundtrip_tmpfs() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let fs = tmpfs(&h);
    let root = fs.root();
    sim.block_on(async move {
        let f = fs.create(root, "data.bin").unwrap();
        let n = fs
            .write(f.id, 0, Payload::real(vec![7u8; 1000]))
            .await
            .unwrap();
        assert_eq!(n, 1000);
        let got = fs.read(f.id, 0, 1000).await.unwrap();
        assert_eq!(&got.materialize()[..], &[7u8; 1000]);
        assert_eq!(fs.getattr(f.id).unwrap().size, 1000);
        // Reads past EOF truncate.
        let tail = fs.read(f.id, 900, 500).await.unwrap();
        assert_eq!(tail.len(), 100);
        // Sparse region reads as zeros.
        fs.write(f.id, 5000, Payload::real(vec![1])).await.unwrap();
        let hole = fs.read(f.id, 2000, 10).await.unwrap();
        assert_eq!(&hole.materialize()[..], &[0u8; 10]);
    });
}

#[test]
fn directory_tree_operations() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let fs = tmpfs(&h);
    let root = fs.root();
    sim.block_on(async move {
        let dir = fs.mkdir(root, "sub").unwrap();
        let f1 = fs.create(dir.id, "a").unwrap();
        let _f2 = fs.create(dir.id, "b").unwrap();
        fs.symlink(dir.id, "link", "../a").unwrap();

        assert_eq!(fs.lookup(root, "sub").unwrap().id, dir.id);
        assert_eq!(fs.lookup(dir.id, "a").unwrap().id, f1.id);
        assert_eq!(fs.lookup(dir.id, "zzz").unwrap_err(), FsError::NotFound);
        assert_eq!(
            fs.readlink(fs.lookup(dir.id, "link").unwrap().id).unwrap(),
            "../a"
        );
        assert_eq!(fs.readlink(f1.id).unwrap_err(), FsError::NotSymlink);

        let entries = fs.readdir(dir.id).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "link"]);
        assert_eq!(entries[2].kind, FileKind::Symlink);

        assert_eq!(fs.create(dir.id, "a").unwrap_err(), FsError::Exists);
        assert_eq!(fs.rmdir(root, "sub").unwrap_err(), FsError::NotEmpty);
        fs.remove(dir.id, "a").unwrap();
        fs.remove(dir.id, "b").unwrap();
        fs.remove(dir.id, "link").unwrap();
        fs.rmdir(root, "sub").unwrap();
        assert_eq!(fs.lookup(root, "sub").unwrap_err(), FsError::NotFound);
    });
}

#[test]
fn rename_moves_entries() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let fs = tmpfs(&h);
    let root = fs.root();
    sim.block_on(async move {
        let d1 = fs.mkdir(root, "d1").unwrap();
        let d2 = fs.mkdir(root, "d2").unwrap();
        let f = fs.create(d1.id, "x").unwrap();
        fs.rename(d1.id, "x", d2.id, "y").unwrap();
        assert_eq!(fs.lookup(d1.id, "x").unwrap_err(), FsError::NotFound);
        assert_eq!(fs.lookup(d2.id, "y").unwrap().id, f.id);
    });
}

#[test]
fn stale_ids_rejected_after_remove() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let fs = tmpfs(&h);
    let root = fs.root();
    sim.block_on(async move {
        let f = fs.create(root, "gone").unwrap();
        fs.remove(root, "gone").unwrap();
        assert_eq!(fs.getattr(f.id).unwrap_err(), FsError::Stale);
        assert!(fs.read(f.id, 0, 10).await.is_err());
    });
}

#[test]
fn diskfs_contents_survive_cache_pressure() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    // Tiny cache: 1 MiB, so an 8 MiB file cycles through it.
    let raid = fs_backend::Raid0::paper_array(&h);
    let fs = fs_backend::Fs::new(
        &h,
        fs_backend::CachedDiskStore::new(raid, 1 << 20, 256 * 1024),
    );
    let root = fs.root();
    sim.block_on(async move {
        let f = fs.create(root, "big").unwrap();
        fs.write(f.id, 0, Payload::synthetic(9, 8 << 20))
            .await
            .unwrap();
        fs.commit(f.id).await.unwrap();
        // Read it all back; most will miss.
        let got = fs.read(f.id, 0, 8 << 20).await.unwrap();
        assert!(got.content_eq(&Payload::synthetic(9, 8 << 20)));
        let cache = fs.store().cache();
        assert!(cache.misses() > 0, "expected disk traffic");
    });
}

#[test]
fn diskfs_cached_reads_are_fast_uncached_are_disk_bound() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let fs = std::rc::Rc::new(diskfs(&h, 64 << 20)); // 64 MiB RAM
    let root = fs.root();
    let fs2 = fs.clone();
    let h2 = h.clone();
    let (hot, cold) = sim.block_on(async move {
        let f = fs2.create(root, "file").unwrap();
        fs2.write(f.id, 0, Payload::synthetic(4, 16 << 20))
            .await
            .unwrap();
        // Hot: just written, resident.
        let t0 = h2.now();
        fs2.read(f.id, 0, 16 << 20).await.unwrap();
        let hot = h2.now().saturating_since(t0);
        // Evict by writing a second large file.
        let g = fs2.create(root, "evictor").unwrap();
        fs2.write(g.id, 0, Payload::synthetic(5, 60 << 20))
            .await
            .unwrap();
        let t0 = h2.now();
        fs2.read(f.id, 0, 16 << 20).await.unwrap();
        let cold = h2.now().saturating_since(t0);
        (hot, cold)
    });
    assert!(
        cold.as_nanos() > hot.as_nanos() * 10,
        "cold read ({cold}) should be much slower than hot ({hot})"
    );
}

#[test]
fn commit_is_idempotent_and_durable_timing() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let fs = std::rc::Rc::new(diskfs(&h, 64 << 20));
    let root = fs.root();
    let fs2 = fs.clone();
    let h2 = h.clone();
    sim.block_on(async move {
        let f = fs2.create(root, "f").unwrap();
        fs2.write(f.id, 0, Payload::synthetic(1, 4 << 20))
            .await
            .unwrap();
        let t0 = h2.now();
        fs2.commit(f.id).await.unwrap();
        let first = h2.now().saturating_since(t0);
        assert!(first.as_nanos() > 0, "commit must hit the disks");
        let t0 = h2.now();
        fs2.commit(f.id).await.unwrap();
        let second = h2.now().saturating_since(t0);
        assert_eq!(second.as_nanos(), 0, "clean commit is free");
    });
}
