//! Log-structured write-ahead log with group commit.
//!
//! The WAL sits beside the page cache in the disk back end: UNSTABLE
//! WRITE data is appended to a volatile tail (no disk time), and a
//! COMMIT triggers a *group commit* — one sequential burst that flushes
//! every pending record followed by a commit marker. Because the log
//! device is written strictly sequentially, small synchronous commits
//! avoid the seek + page-granularity write-back cost that makes
//! fsync-heavy workloads collapse on the plain cached store.
//!
//! Durability model (two-phase, crash-consistent):
//!
//! 1. records flushed to the log device are durable but *uncommitted*
//!    until a marker lands behind them;
//! 2. the commit marker is a single small sequential append; once it is
//!    on the platter the whole batch is committed atomically.
//!
//! A power failure at any point loses the volatile tail and truncates
//! any flushed-but-unmarked records at recovery — committed data
//! survives, uncommitted data is *cleanly* lost (never torn). Replay
//! is idempotent: records are applied in append order, so replaying a
//! prefix twice converges to the same contents.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use sim_core::{Counter, Payload, Sim, SimDuration, SimTime};

use crate::disk::Disk;
use crate::vfs::FileId;

/// One logged write.
#[derive(Clone)]
pub struct WalRecord {
    /// Target file.
    pub file: FileId,
    /// Byte offset within the file.
    pub off: u64,
    /// The data (reference-counted; appending copies nothing).
    pub data: Payload,
}

/// Tuning knobs. The defaults flush on a 1 MiB tail and place no
/// interval bound, matching a throughput-oriented group commit.
#[derive(Clone, Copy)]
pub struct WalConfig {
    /// Flush the volatile tail once it holds this many bytes
    /// (size watermark; 0 flushes every append).
    pub flush_watermark_bytes: u64,
    /// Also flush when this much virtual time has passed since the
    /// last flush (checked lazily at append; no background task).
    pub flush_interval: Option<SimDuration>,
    /// Per-record on-log framing overhead.
    pub record_header_bytes: u64,
    /// Size of the commit marker append.
    pub commit_marker_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            flush_watermark_bytes: 1 << 20,
            flush_interval: None,
            record_header_bytes: 32,
            commit_marker_bytes: 512,
        }
    }
}

/// Counters (also mirrored into the metrics registry as `fs.wal.*`).
#[derive(Default)]
pub struct WalStats {
    /// Records appended to the volatile tail.
    pub appends: Cell<u64>,
    /// Data bytes appended.
    pub appended_bytes: Cell<u64>,
    /// Tail flushes to the log device.
    pub flushes: Cell<u64>,
    /// Bytes written to the log device by flushes (with framing).
    pub flushed_bytes: Cell<u64>,
    /// Group commits (marker appended, batch made durable).
    pub commits: Cell<u64>,
    /// Records covered by commit markers.
    pub committed_records: Cell<u64>,
    /// Records dropped by power failure (volatile tail plus
    /// flushed-but-unmarked records truncated at recovery).
    pub truncated_records: Cell<u64>,
    /// Records replayed by recovery.
    pub replayed_records: Cell<u64>,
    /// Data bytes replayed by recovery.
    pub replayed_bytes: Cell<u64>,
    /// Committed records discarded at cluster rejoin because the new
    /// primary's replicated log does not contain them (the node died
    /// after committing locally but before the backup acknowledged).
    pub rejoin_truncated_records: Cell<u64>,
    /// Bytes re-shipped by the primary during rejoin catch-up (the
    /// bounded WAL-tail resync, as opposed to a full cold start).
    pub resync_bytes: Cell<u64>,
}

struct WalMetrics {
    appends: Rc<Counter>,
    appended_bytes: Rc<Counter>,
    flushes: Rc<Counter>,
    flushed_bytes: Rc<Counter>,
    commits: Rc<Counter>,
    committed_records: Rc<Counter>,
    truncated_records: Rc<Counter>,
    replayed_records: Rc<Counter>,
    replayed_bytes: Rc<Counter>,
    resync_bytes: Rc<Counter>,
}

/// The write-ahead log. One per store; owns its own (sequential) log
/// device so data traffic on the array never forces a log seek.
pub struct Wal {
    sim: Sim,
    disk: Disk,
    cfg: WalConfig,
    /// Bumped by every power failure; in-flight flush/commit awaits
    /// re-check it and abandon their batch if it moved.
    epoch: Cell<u64>,
    /// Log-device append cursor.
    head_addr: Cell<u64>,
    last_flush: Cell<SimTime>,
    /// Volatile tail: appended, not yet on the log device.
    tail: RefCell<Vec<WalRecord>>,
    tail_bytes: Cell<u64>,
    /// On the log device, awaiting a commit marker.
    flushed: RefCell<Vec<WalRecord>>,
    /// Behind a commit marker: survives power failure.
    committed: RefCell<Vec<WalRecord>>,
    /// Statistics.
    pub stats: WalStats,
    metrics: RefCell<Option<WalMetrics>>,
}

impl Wal {
    /// A WAL over its own dedicated 30 MB/s log disk.
    pub fn new(sim: &Sim, cfg: WalConfig) -> Rc<Wal> {
        let disk = Disk::new(sim, "wal-log", 30_000_000, SimDuration::from_millis(4));
        Wal::with_disk(sim, disk, cfg)
    }

    /// A WAL over an explicit log device.
    pub fn with_disk(sim: &Sim, disk: Disk, cfg: WalConfig) -> Rc<Wal> {
        Rc::new(Wal {
            sim: sim.clone(),
            disk,
            cfg,
            epoch: Cell::new(0),
            head_addr: Cell::new(0),
            last_flush: Cell::new(sim.now()),
            tail: RefCell::new(Vec::new()),
            tail_bytes: Cell::new(0),
            flushed: RefCell::new(Vec::new()),
            committed: RefCell::new(Vec::new()),
            stats: WalStats::default(),
            metrics: RefCell::new(None),
        })
    }

    /// Mirror counters into `metrics` as `fs.wal.*`.
    pub fn bind_metrics(&self, metrics: &sim_core::MetricsRegistry) {
        *self.metrics.borrow_mut() = Some(WalMetrics {
            appends: metrics.counter("fs.wal.appends"),
            appended_bytes: metrics.counter("fs.wal.appended_bytes"),
            flushes: metrics.counter("fs.wal.flushes"),
            flushed_bytes: metrics.counter("fs.wal.flushed_bytes"),
            commits: metrics.counter("fs.wal.commits"),
            committed_records: metrics.counter("fs.wal.committed_records"),
            truncated_records: metrics.counter("fs.wal.truncated_records"),
            replayed_records: metrics.counter("fs.wal.replayed_records"),
            replayed_bytes: metrics.counter("fs.wal.replayed_bytes"),
            resync_bytes: metrics.counter("fs.wal.resync_bytes"),
        });
    }

    fn bump(
        &self,
        f: impl Fn(&WalStats) -> &Cell<u64>,
        m: impl Fn(&WalMetrics) -> &Rc<Counter>,
        by: u64,
    ) {
        f(&self.stats).set(f(&self.stats).get() + by);
        if let Some(metrics) = self.metrics.borrow().as_ref() {
            m(metrics).add(by);
        }
    }

    fn framed(&self, data_len: u64) -> u64 {
        self.cfg.record_header_bytes + data_len
    }

    /// Records in the volatile tail.
    pub fn tail_records(&self) -> u64 {
        self.tail.borrow().len() as u64
    }

    /// Records on the log device awaiting a marker.
    pub fn flushed_records(&self) -> u64 {
        self.flushed.borrow().len() as u64
    }

    /// Records behind a commit marker (what recovery will replay).
    pub fn committed_records(&self) -> u64 {
        self.committed.borrow().len() as u64
    }

    /// Append one write to the volatile tail. Costs no disk time
    /// unless a watermark triggers a flush.
    pub async fn append(&self, file: FileId, off: u64, data: Payload) {
        let n = data.len();
        self.tail.borrow_mut().push(WalRecord { file, off, data });
        self.tail_bytes.set(self.tail_bytes.get() + self.framed(n));
        self.bump(|s| &s.appends, |m| &m.appends, 1);
        self.bump(|s| &s.appended_bytes, |m| &m.appended_bytes, n);
        let over_size = self.tail_bytes.get() >= self.cfg.flush_watermark_bytes;
        let over_time = self
            .cfg
            .flush_interval
            .is_some_and(|iv| self.sim.now().saturating_since(self.last_flush.get()) >= iv);
        if over_size || over_time {
            self.flush().await;
        }
    }

    /// Flush the volatile tail to the log device (durable but
    /// uncommitted until a marker follows).
    pub async fn flush(&self) {
        let epoch = self.epoch.get();
        let batch: Vec<WalRecord> = std::mem::take(&mut *self.tail.borrow_mut());
        if batch.is_empty() {
            return;
        }
        let bytes: u64 = batch.iter().map(|r| self.framed(r.data.len())).sum();
        self.tail_bytes.set(0);
        let addr = self.head_addr.get();
        self.head_addr.set(addr + bytes);
        self.disk.transfer_at(addr, bytes).await;
        self.last_flush.set(self.sim.now());
        if self.epoch.get() != epoch {
            // Power failed while the burst was in flight: the batch
            // never became durable.
            self.bump(
                |s| &s.truncated_records,
                |m| &m.truncated_records,
                batch.len() as u64,
            );
            return;
        }
        self.bump(|s| &s.flushes, |m| &m.flushes, 1);
        self.bump(|s| &s.flushed_bytes, |m| &m.flushed_bytes, bytes);
        self.flushed.borrow_mut().extend(batch);
    }

    /// Group commit: flush the tail, then append the commit marker.
    /// Only once the marker is durable does the whole pending batch —
    /// every file's records, in append order — become committed. A
    /// commit with nothing pending is free.
    pub async fn commit(&self) {
        let epoch = self.epoch.get();
        self.flush().await;
        if self.epoch.get() != epoch || self.flushed.borrow().is_empty() {
            return;
        }
        let addr = self.head_addr.get();
        self.head_addr.set(addr + self.cfg.commit_marker_bytes);
        self.disk
            .transfer_at(addr, self.cfg.commit_marker_bytes)
            .await;
        if self.epoch.get() != epoch {
            // Marker never landed: the batch stays uncommitted and
            // recovery will truncate it.
            return;
        }
        let batch: Vec<WalRecord> = std::mem::take(&mut *self.flushed.borrow_mut());
        self.bump(|s| &s.commits, |m| &m.commits, 1);
        self.bump(
            |s| &s.committed_records,
            |m| &m.committed_records,
            batch.len() as u64,
        );
        self.committed.borrow_mut().extend(batch);
    }

    /// Power failure: the volatile tail vanishes, and any flushed
    /// records without a marker behind them are logically truncated
    /// (recovery stops at the last commit marker). In-flight flushes
    /// and commits notice the epoch change and abandon their batches.
    pub fn power_fail(&self) {
        self.epoch.set(self.epoch.get() + 1);
        let lost = self.tail.borrow().len() + self.flushed.borrow().len();
        self.bump(
            |s| &s.truncated_records,
            |m| &m.truncated_records,
            lost as u64,
        );
        self.tail.borrow_mut().clear();
        self.tail_bytes.set(0);
        self.flushed.borrow_mut().clear();
    }

    /// Cluster rejoin, step 1: discard committed records beyond the
    /// replicated prefix the new primary acknowledged. A primary that
    /// died between its local group commit and the backup's ack holds
    /// committed records the rest of the cluster never saw; rejoining
    /// as a backup means adopting the survivor's history, so the
    /// divergent tail is truncated before replay (the real-system
    /// analogue: the rejoin handshake compares log sequence numbers
    /// stored in the commit markers).
    pub fn truncate_committed_to(&self, keep_records: u64) {
        let mut committed = self.committed.borrow_mut();
        if (committed.len() as u64) <= keep_records {
            return;
        }
        let dropped = committed.len() as u64 - keep_records;
        committed.truncate(keep_records as usize);
        self.bump(
            |s| &s.rejoin_truncated_records,
            |m| &m.truncated_records,
            dropped,
        );
    }

    /// Cluster rejoin, step 2 accounting: `bytes` of log records were
    /// re-shipped by the primary to catch this node's WAL tail up
    /// (bounded catch-up instead of a cold start).
    pub fn note_resync(&self, bytes: u64) {
        self.bump(|s| &s.resync_bytes, |m| &m.resync_bytes, bytes);
    }

    /// Recovery replay: scan the log sequentially (charged as one
    /// sequential read) and return every committed record in append
    /// order. Applying them in order is idempotent — replaying any
    /// prefix again converges to the same contents.
    pub async fn recover(&self) -> Vec<WalRecord> {
        let records = self.committed.borrow().clone();
        let bytes: u64 = records.iter().map(|r| self.framed(r.data.len())).sum();
        if bytes > 0 {
            self.disk.transfer(bytes).await;
        }
        self.bump(
            |s| &s.replayed_records,
            |m| &m.replayed_records,
            records.len() as u64,
        );
        let data: u64 = records.iter().map(|r| r.data.len()).sum();
        self.bump(|s| &s.replayed_bytes, |m| &m.replayed_bytes, data);
        records
    }
}
