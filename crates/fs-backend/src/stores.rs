//! Data-store back ends: tmpfs (memory) and the cached disk store.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use sim_core::{ExtentMap, Payload, SgList};

use crate::disk::Raid0;
use crate::pagecache::PageCache;
use crate::vfs::{DataStore, FileId, Fs, LocalBoxFuture};
use crate::wal::{Wal, WalConfig};

/// Shared per-file content maps (contents are always exact; only
/// timing differs between stores).
#[derive(Default)]
struct Contents {
    files: RefCell<HashMap<u64, ExtentMap>>,
}

impl Contents {
    fn read(&self, file: FileId, off: u64, len: u64) -> Payload {
        self.read_sg(file, off, len).to_payload()
    }

    /// Hand out the backing extents as reference-counted slices — the
    /// store-side half of the zero-copy READ path. No flattening: a
    /// caller that can gather keeps each piece as-is.
    fn read_sg(&self, file: FileId, off: u64, len: u64) -> SgList {
        self.files
            .borrow()
            .get(&file.0)
            .map(|m| SgList::from_pieces(m.read_sg(off, len)))
            .unwrap_or_else(|| SgList::from(Payload::zeros(len)))
    }

    fn write(&self, file: FileId, off: u64, data: Payload) {
        self.files
            .borrow_mut()
            .entry(file.0)
            .or_default()
            .write(off, data);
    }

    /// Scatter each piece at its own sub-offset — the store-side half
    /// of the zero-copy WRITE path (no flattening of the gather list).
    fn write_sg(&self, file: FileId, off: u64, data: &SgList) {
        let mut files = self.files.borrow_mut();
        let map = files.entry(file.0).or_default();
        for (at, p) in data.pieces_with_offsets() {
            map.write(off + at, p.clone());
        }
    }

    fn delete(&self, file: FileId) {
        self.files.borrow_mut().remove(&file.0);
    }

    /// Power failure: everything in (simulated) RAM is gone.
    fn clear(&self) {
        self.files.borrow_mut().clear();
    }
}

/// Memory-backed store: the paper's tmpfs configuration. Data access
/// costs nothing here; the NFS/RPC layers charge the copies.
#[derive(Default)]
pub struct MemStore {
    contents: Rc<Contents>,
}

impl DataStore for MemStore {
    fn read(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<Payload> {
        let data = self.contents.read(file, off, len);
        Box::pin(async move { data })
    }

    fn read_sg(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<SgList> {
        let data = self.contents.read_sg(file, off, len);
        Box::pin(async move { data })
    }

    fn write(&self, file: FileId, off: u64, data: Payload) -> LocalBoxFuture<u64> {
        let n = data.len();
        self.contents.write(file, off, data);
        Box::pin(async move { n })
    }

    fn write_sg(&self, file: FileId, off: u64, data: SgList) -> LocalBoxFuture<u64> {
        let n = data.len();
        self.contents.write_sg(file, off, &data);
        Box::pin(async move { n })
    }

    fn commit(&self, _file: FileId) -> LocalBoxFuture<()> {
        Box::pin(async {})
    }

    fn truncate(&self, _file: FileId, _size: u64) {}

    fn delete(&self, file: FileId) {
        self.contents.delete(file);
    }
}

/// A tmpfs file system (paper §5.1/§5.2 back end).
pub type Tmpfs = Fs<MemStore>;

/// Create a tmpfs.
pub fn tmpfs(sim: &sim_core::Sim) -> Tmpfs {
    Fs::new(sim, MemStore::default())
}

/// Disk-backed store with a server page cache (paper §5.3 back end:
/// XFS on an 8-disk RAID-0 behind the Linux page cache).
pub struct CachedDiskStore {
    contents: Rc<Contents>,
    cache: Rc<PageCache>,
    /// Optional write-ahead log. `None` (the default) preserves the
    /// paper-era behavior exactly: commit = coalesced RAID sweep.
    wal: Option<Rc<Wal>>,
    /// File -> base address in the array's space (simple contiguous
    /// allocation; fragmentation is not modelled).
    layout: RefCell<HashMap<u64, u64>>,
    next_base: std::cell::Cell<u64>,
}

impl CachedDiskStore {
    /// Build over a RAID array with `ram_bytes` of page cache.
    pub fn new(raid: Raid0, ram_bytes: u64, cache_page: u64) -> CachedDiskStore {
        CachedDiskStore {
            contents: Rc::default(),
            cache: Rc::new(PageCache::new(raid, ram_bytes, cache_page)),
            wal: None,
            layout: RefCell::new(HashMap::new()),
            next_base: std::cell::Cell::new(0),
        }
    }

    /// Like [`CachedDiskStore::new`], but journal every write through
    /// `wal`: COMMIT becomes a sequential group commit on the log
    /// device instead of a page-granular RAID sweep, and
    /// [`CachedDiskStore::power_fail_restart`] recovers committed data
    /// by replay.
    pub fn with_wal(raid: Raid0, ram_bytes: u64, cache_page: u64, wal: Rc<Wal>) -> CachedDiskStore {
        let mut store = CachedDiskStore::new(raid, ram_bytes, cache_page);
        store.wal = Some(wal);
        store
    }

    /// The page cache (for statistics).
    pub fn cache(&self) -> &Rc<PageCache> {
        &self.cache
    }

    /// The write-ahead log, when journaling is enabled.
    pub fn wal(&self) -> Option<&Rc<Wal>> {
        self.wal.as_ref()
    }

    /// Power failure followed by restart: volatile contents and cache
    /// residency are gone; recovery replays the WAL's committed records
    /// (in append order — idempotent) into fresh contents. Without a
    /// WAL everything is lost. Namespace metadata is assumed journaled
    /// separately and survives; uncommitted ranges read back as zeros.
    pub async fn power_fail_restart(&self) {
        self.contents.clear();
        self.cache.drop_all();
        if let Some(wal) = &self.wal {
            wal.power_fail();
            for r in wal.recover().await {
                self.contents.write(r.file, r.off, r.data);
            }
        }
    }

    /// Restart after a crash to *rejoin a cluster as backup*: like
    /// [`CachedDiskStore::power_fail_restart`], but first truncates the
    /// committed WAL to `keep_records` — the prefix the new primary's
    /// replicated log acknowledges. Anything this node committed beyond
    /// that died with it (local commit raced the backup ack), so replay
    /// stops at the cluster-agreed history and the primary re-ships the
    /// missing tail (a bounded catch-up metered as
    /// `fs.wal.resync_bytes`) instead of this node cold-starting.
    pub async fn rejoin_restart(&self, keep_records: u64) {
        if let Some(wal) = &self.wal {
            wal.truncate_committed_to(keep_records);
        }
        self.power_fail_restart().await;
    }

    fn base_of(&self, file: FileId) -> u64 {
        *self.layout.borrow_mut().entry(file.0).or_insert_with(|| {
            // Reserve a generous fixed extent per file (64 GiB apart);
            // the array address space is virtual.
            let base = self.next_base.get();
            self.next_base.set(base + (64 << 30));
            base
        })
    }
}

impl DataStore for CachedDiskStore {
    fn read(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<Payload> {
        let cache = self.cache.clone();
        let contents = self.contents.clone();
        let base = self.base_of(file);
        Box::pin(async move {
            cache.read_range(file, base, off, len).await;
            contents.read(file, off, len)
        })
    }

    fn read_sg(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<SgList> {
        let cache = self.cache.clone();
        let contents = self.contents.clone();
        let base = self.base_of(file);
        Box::pin(async move {
            cache.read_range(file, base, off, len).await;
            contents.read_sg(file, off, len)
        })
    }

    fn write(&self, file: FileId, off: u64, data: Payload) -> LocalBoxFuture<u64> {
        let cache = self.cache.clone();
        let contents = self.contents.clone();
        let wal = self.wal.clone();
        Box::pin(async move {
            let n = data.len();
            contents.write(file, off, data.clone());
            cache.write_range(file, off, n).await;
            if let Some(wal) = wal {
                wal.append(file, off, data).await;
            }
            n
        })
    }

    fn write_sg(&self, file: FileId, off: u64, data: SgList) -> LocalBoxFuture<u64> {
        let cache = self.cache.clone();
        let contents = self.contents.clone();
        let wal = self.wal.clone();
        Box::pin(async move {
            let n = data.len();
            contents.write_sg(file, off, &data);
            cache.write_range(file, off, n).await;
            if let Some(wal) = wal {
                for (at, p) in data.pieces_with_offsets() {
                    wal.append(file, off + at, p.clone()).await;
                }
            }
            n
        })
    }

    fn commit(&self, file: FileId) -> LocalBoxFuture<()> {
        let cache = self.cache.clone();
        let base = self.base_of(file);
        let wal = self.wal.clone();
        Box::pin(async move {
            match wal {
                // Log-structured durability: one sequential group
                // commit covers every file's pending records, and the
                // dirty pages are cleaned without a home-location
                // sweep (write-back elided; the log is stable).
                Some(wal) => {
                    wal.commit().await;
                    cache.mark_clean_all();
                }
                None => cache.commit(file, base).await,
            }
        })
    }

    fn truncate(&self, file: FileId, size: u64) {
        if size == 0 {
            self.cache.invalidate(file);
        }
    }

    fn delete(&self, file: FileId) {
        self.contents.delete(file);
        self.cache.invalidate(file);
    }
}

/// A disk-backed file system.
pub type DiskFs = Fs<CachedDiskStore>;

/// Create the paper's §5.3 configuration: 8 × 30 MB/s RAID-0 with
/// `ram_bytes` of server page cache.
pub fn diskfs(sim: &sim_core::Sim, ram_bytes: u64) -> DiskFs {
    let raid = Raid0::paper_array(sim);
    Fs::new(sim, CachedDiskStore::new(raid, ram_bytes, 256 * 1024))
}

/// The §5.3 array plus a write-ahead log on a dedicated log disk:
/// COMMIT group-commits sequentially instead of sweeping the RAID, and
/// power failures recover committed data by replay.
pub fn diskfs_wal(sim: &sim_core::Sim, ram_bytes: u64, cfg: WalConfig) -> DiskFs {
    let raid = Raid0::paper_array(sim);
    let wal = Wal::new(sim, cfg);
    Fs::new(
        sim,
        CachedDiskStore::with_wal(raid, ram_bytes, 256 * 1024, wal),
    )
}
