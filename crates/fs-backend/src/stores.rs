//! Data-store back ends: tmpfs (memory) and the cached disk store.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use sim_core::{ExtentMap, Payload, SgList};

use crate::disk::Raid0;
use crate::pagecache::PageCache;
use crate::vfs::{DataStore, FileId, Fs, LocalBoxFuture};

/// Shared per-file content maps (contents are always exact; only
/// timing differs between stores).
#[derive(Default)]
struct Contents {
    files: RefCell<HashMap<u64, ExtentMap>>,
}

impl Contents {
    fn read(&self, file: FileId, off: u64, len: u64) -> Payload {
        self.read_sg(file, off, len).to_payload()
    }

    /// Hand out the backing extents as reference-counted slices — the
    /// store-side half of the zero-copy READ path. No flattening: a
    /// caller that can gather keeps each piece as-is.
    fn read_sg(&self, file: FileId, off: u64, len: u64) -> SgList {
        self.files
            .borrow()
            .get(&file.0)
            .map(|m| SgList::from_pieces(m.read_sg(off, len)))
            .unwrap_or_else(|| SgList::from(Payload::zeros(len)))
    }

    fn write(&self, file: FileId, off: u64, data: Payload) {
        self.files
            .borrow_mut()
            .entry(file.0)
            .or_default()
            .write(off, data);
    }

    fn delete(&self, file: FileId) {
        self.files.borrow_mut().remove(&file.0);
    }
}

/// Memory-backed store: the paper's tmpfs configuration. Data access
/// costs nothing here; the NFS/RPC layers charge the copies.
#[derive(Default)]
pub struct MemStore {
    contents: Rc<Contents>,
}

impl DataStore for MemStore {
    fn read(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<Payload> {
        let data = self.contents.read(file, off, len);
        Box::pin(async move { data })
    }

    fn read_sg(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<SgList> {
        let data = self.contents.read_sg(file, off, len);
        Box::pin(async move { data })
    }

    fn write(&self, file: FileId, off: u64, data: Payload) -> LocalBoxFuture<u64> {
        let n = data.len();
        self.contents.write(file, off, data);
        Box::pin(async move { n })
    }

    fn commit(&self, _file: FileId) -> LocalBoxFuture<()> {
        Box::pin(async {})
    }

    fn truncate(&self, _file: FileId, _size: u64) {}

    fn delete(&self, file: FileId) {
        self.contents.delete(file);
    }
}

/// A tmpfs file system (paper §5.1/§5.2 back end).
pub type Tmpfs = Fs<MemStore>;

/// Create a tmpfs.
pub fn tmpfs(sim: &sim_core::Sim) -> Tmpfs {
    Fs::new(sim, MemStore::default())
}

/// Disk-backed store with a server page cache (paper §5.3 back end:
/// XFS on an 8-disk RAID-0 behind the Linux page cache).
pub struct CachedDiskStore {
    contents: Rc<Contents>,
    cache: Rc<PageCache>,
    /// File -> base address in the array's space (simple contiguous
    /// allocation; fragmentation is not modelled).
    layout: RefCell<HashMap<u64, u64>>,
    next_base: std::cell::Cell<u64>,
}

impl CachedDiskStore {
    /// Build over a RAID array with `ram_bytes` of page cache.
    pub fn new(raid: Raid0, ram_bytes: u64, cache_page: u64) -> CachedDiskStore {
        CachedDiskStore {
            contents: Rc::default(),
            cache: Rc::new(PageCache::new(raid, ram_bytes, cache_page)),
            layout: RefCell::new(HashMap::new()),
            next_base: std::cell::Cell::new(0),
        }
    }

    /// The page cache (for statistics).
    pub fn cache(&self) -> &Rc<PageCache> {
        &self.cache
    }

    fn base_of(&self, file: FileId) -> u64 {
        *self.layout.borrow_mut().entry(file.0).or_insert_with(|| {
            // Reserve a generous fixed extent per file (64 GiB apart);
            // the array address space is virtual.
            let base = self.next_base.get();
            self.next_base.set(base + (64 << 30));
            base
        })
    }
}

impl DataStore for CachedDiskStore {
    fn read(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<Payload> {
        let cache = self.cache.clone();
        let contents = self.contents.clone();
        let base = self.base_of(file);
        Box::pin(async move {
            cache.read_range(file, base, off, len).await;
            contents.read(file, off, len)
        })
    }

    fn read_sg(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<SgList> {
        let cache = self.cache.clone();
        let contents = self.contents.clone();
        let base = self.base_of(file);
        Box::pin(async move {
            cache.read_range(file, base, off, len).await;
            contents.read_sg(file, off, len)
        })
    }

    fn write(&self, file: FileId, off: u64, data: Payload) -> LocalBoxFuture<u64> {
        let cache = self.cache.clone();
        let contents = self.contents.clone();
        Box::pin(async move {
            let n = data.len();
            contents.write(file, off, data);
            cache.write_range(file, off, n).await;
            n
        })
    }

    fn commit(&self, file: FileId) -> LocalBoxFuture<()> {
        let cache = self.cache.clone();
        let base = self.base_of(file);
        Box::pin(async move {
            cache.commit(file, base).await;
        })
    }

    fn truncate(&self, file: FileId, size: u64) {
        if size == 0 {
            self.cache.invalidate(file);
        }
    }

    fn delete(&self, file: FileId) {
        self.contents.delete(file);
        self.cache.invalidate(file);
    }
}

/// A disk-backed file system.
pub type DiskFs = Fs<CachedDiskStore>;

/// Create the paper's §5.3 configuration: 8 × 30 MB/s RAID-0 with
/// `ram_bytes` of server page cache.
pub fn diskfs(sim: &sim_core::Sim, ram_bytes: u64) -> DiskFs {
    let raid = Raid0::paper_array(sim);
    Fs::new(sim, CachedDiskStore::new(raid, ram_bytes, 256 * 1024))
}
