//! The VFS interface the NFS server dispatches into, plus the shared
//! namespace (inode/dentry) implementation both back ends reuse.

use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use sim_core::{Payload, SgList, Sim, SimTime};

/// Single-threaded boxed future.
pub type LocalBoxFuture<T> = Pin<Box<dyn Future<Output = T> + 'static>>;

/// File identifier (inode number); NFS file handles wrap these.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// File types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// Regular file.
    Regular,
    /// Directory.
    Dir,
    /// Symbolic link.
    Symlink,
}

/// File attributes (the fattr3 subset the workloads need).
#[derive(Clone, Copy, Debug)]
pub struct Attr {
    /// Inode number.
    pub id: FileId,
    /// Type.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
    /// Link count.
    pub nlink: u32,
    /// Last modification (virtual time).
    pub mtime: SimTime,
    /// Last attribute change.
    pub ctime: SimTime,
}

/// A directory entry.
#[derive(Clone, Debug)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Inode.
    pub id: FileId,
    /// Type.
    pub kind: FileKind,
}

/// File-system errors (mapped to NFS status codes by the server).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsError {
    /// No such file or directory.
    NotFound,
    /// Name already exists.
    Exists,
    /// Operation requires a directory.
    NotDir,
    /// Operation not valid on a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Stale file id (deleted).
    Stale,
    /// Not a symlink.
    NotSymlink,
    /// Out of space.
    NoSpace,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for FsError {}

/// Result alias.
pub type FsResult<T> = Result<T, FsError>;

/// Aggregate file-system statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsStat {
    /// Total bytes of file data stored.
    pub bytes_used: u64,
    /// Number of live inodes.
    pub inodes: u64,
}

/// Where file *data* lives and what it costs to touch it. The
/// namespace above it is shared between tmpfs and the disk back end.
pub trait DataStore {
    /// Read `[off, off+len)` of `file` (timing included).
    fn read(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<Payload>;
    /// Read `[off, off+len)` as a scatter/gather list of
    /// reference-counted cache slices — the zero-copy READ hot path.
    /// Stores that can hand out their extents directly override this;
    /// the default wraps the flat read.
    fn read_sg(&self, file: FileId, off: u64, len: u64) -> LocalBoxFuture<SgList> {
        let flat = self.read(file, off, len);
        Box::pin(async move { SgList::from(flat.await) })
    }
    /// Write data at `off` (timing included); returns bytes written.
    fn write(&self, file: FileId, off: u64, data: Payload) -> LocalBoxFuture<u64>;
    /// Scatter a gather list at `off` — the zero-copy WRITE hot path:
    /// each reference-counted piece lands at its own sub-offset with no
    /// flattening copy. Stores that can scatter directly override this;
    /// the default forwards piece-by-piece to [`DataStore::write`].
    fn write_sg(&self, file: FileId, off: u64, data: SgList) -> LocalBoxFuture<u64> {
        let futs: Vec<LocalBoxFuture<u64>> = data
            .pieces_with_offsets()
            .map(|(at, p)| self.write(file, off + at, p.clone()))
            .collect();
        Box::pin(async move {
            let mut n = 0;
            for f in futs {
                n += f.await;
            }
            n
        })
    }
    /// Flush dirty state for `file` to stable storage.
    fn commit(&self, file: FileId) -> LocalBoxFuture<()>;
    /// Discard data beyond `size` / zero-extend bookkeeping.
    fn truncate(&self, file: FileId, size: u64);
    /// Drop all data for `file`.
    fn delete(&self, file: FileId);
}

struct Inode {
    attr: Attr,
    /// Directory contents (name -> id), for directories.
    children: Option<HashMap<String, FileId>>,
    /// Symlink target.
    target: Option<String>,
}

struct NamespaceInner {
    sim: Sim,
    inodes: RefCell<HashMap<u64, Inode>>,
    next_id: std::cell::Cell<u64>,
    root: FileId,
}

/// The shared directory-tree / inode-table layer.
///
/// Combined with a [`DataStore`], this forms a complete file system:
/// [`Fs`].
pub struct Fs<S: DataStore> {
    ns: Rc<NamespaceInner>,
    store: S,
}

impl<S: DataStore> Fs<S> {
    /// Create a file system with an empty root directory.
    pub fn new(sim: &Sim, store: S) -> Self {
        let root = FileId(1);
        let now = sim.now();
        let mut inodes = HashMap::new();
        inodes.insert(
            1,
            Inode {
                attr: Attr {
                    id: root,
                    kind: FileKind::Dir,
                    size: 0,
                    nlink: 2,
                    mtime: now,
                    ctime: now,
                },
                children: Some(HashMap::new()),
                target: None,
            },
        );
        Fs {
            ns: Rc::new(NamespaceInner {
                sim: sim.clone(),
                inodes: RefCell::new(inodes),
                next_id: std::cell::Cell::new(2),
                root,
            }),
            store,
        }
    }

    /// The data store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Root directory id.
    pub fn root(&self) -> FileId {
        self.ns.root
    }

    fn now(&self) -> SimTime {
        self.ns.sim.now()
    }

    fn alloc_id(&self) -> FileId {
        let id = self.ns.next_id.get();
        self.ns.next_id.set(id + 1);
        FileId(id)
    }

    /// Attributes of `id`.
    pub fn getattr(&self, id: FileId) -> FsResult<Attr> {
        self.ns
            .inodes
            .borrow()
            .get(&id.0)
            .map(|i| i.attr)
            .ok_or(FsError::Stale)
    }

    /// Truncate or extend a regular file.
    pub fn setattr_size(&self, id: FileId, size: u64) -> FsResult<Attr> {
        let mut inodes = self.ns.inodes.borrow_mut();
        let inode = inodes.get_mut(&id.0).ok_or(FsError::Stale)?;
        if inode.attr.kind != FileKind::Regular {
            return Err(FsError::IsDir);
        }
        inode.attr.size = size;
        inode.attr.mtime = self.ns.sim.now();
        inode.attr.ctime = inode.attr.mtime;
        let attr = inode.attr;
        drop(inodes);
        self.store.truncate(id, size);
        Ok(attr)
    }

    /// Find `name` in directory `dir`.
    pub fn lookup(&self, dir: FileId, name: &str) -> FsResult<Attr> {
        let inodes = self.ns.inodes.borrow();
        let d = inodes.get(&dir.0).ok_or(FsError::Stale)?;
        let children = d.children.as_ref().ok_or(FsError::NotDir)?;
        let id = children.get(name).ok_or(FsError::NotFound)?;
        Ok(inodes[&id.0].attr)
    }

    fn link_new(
        &self,
        dir: FileId,
        name: &str,
        kind: FileKind,
        target: Option<String>,
    ) -> FsResult<Attr> {
        let id = self.alloc_id();
        let now = self.now();
        let mut inodes = self.ns.inodes.borrow_mut();
        let d = inodes.get_mut(&dir.0).ok_or(FsError::Stale)?;
        let children = d.children.as_mut().ok_or(FsError::NotDir)?;
        if children.contains_key(name) {
            return Err(FsError::Exists);
        }
        children.insert(name.to_string(), id);
        d.attr.mtime = now;
        let attr = Attr {
            id,
            kind,
            size: target.as_ref().map(|t| t.len() as u64).unwrap_or(0),
            nlink: if kind == FileKind::Dir { 2 } else { 1 },
            mtime: now,
            ctime: now,
        };
        inodes.insert(
            id.0,
            Inode {
                attr,
                children: (kind == FileKind::Dir).then(HashMap::new),
                target,
            },
        );
        Ok(attr)
    }

    /// Create a regular file.
    pub fn create(&self, dir: FileId, name: &str) -> FsResult<Attr> {
        self.link_new(dir, name, FileKind::Regular, None)
    }

    /// Create a directory.
    pub fn mkdir(&self, dir: FileId, name: &str) -> FsResult<Attr> {
        self.link_new(dir, name, FileKind::Dir, None)
    }

    /// Create a symlink to `target`.
    pub fn symlink(&self, dir: FileId, name: &str, target: &str) -> FsResult<Attr> {
        self.link_new(dir, name, FileKind::Symlink, Some(target.to_string()))
    }

    /// Read a symlink's target.
    pub fn readlink(&self, id: FileId) -> FsResult<String> {
        let inodes = self.ns.inodes.borrow();
        let inode = inodes.get(&id.0).ok_or(FsError::Stale)?;
        inode.target.clone().ok_or(FsError::NotSymlink)
    }

    /// Remove a non-directory entry.
    pub fn remove(&self, dir: FileId, name: &str) -> FsResult<()> {
        let removed = {
            let mut inodes = self.ns.inodes.borrow_mut();
            let d = inodes.get_mut(&dir.0).ok_or(FsError::Stale)?;
            let children = d.children.as_mut().ok_or(FsError::NotDir)?;
            let id = *children.get(name).ok_or(FsError::NotFound)?;
            if inodes[&id.0].attr.kind == FileKind::Dir {
                return Err(FsError::IsDir);
            }
            let d = inodes.get_mut(&dir.0).unwrap();
            d.children.as_mut().unwrap().remove(name);
            d.attr.mtime = self.ns.sim.now();
            inodes.remove(&id.0);
            id
        };
        self.store.delete(removed);
        Ok(())
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, dir: FileId, name: &str) -> FsResult<()> {
        let mut inodes = self.ns.inodes.borrow_mut();
        let d = inodes.get(&dir.0).ok_or(FsError::Stale)?;
        let children = d.children.as_ref().ok_or(FsError::NotDir)?;
        let id = *children.get(name).ok_or(FsError::NotFound)?;
        let victim = inodes.get(&id.0).ok_or(FsError::Stale)?;
        let vc = victim.children.as_ref().ok_or(FsError::NotDir)?;
        if !vc.is_empty() {
            return Err(FsError::NotEmpty);
        }
        let d = inodes.get_mut(&dir.0).unwrap();
        d.children.as_mut().unwrap().remove(name);
        d.attr.mtime = self.ns.sim.now();
        inodes.remove(&id.0);
        Ok(())
    }

    /// Rename within/between directories.
    pub fn rename(&self, fdir: FileId, fname: &str, tdir: FileId, tname: &str) -> FsResult<()> {
        let mut inodes = self.ns.inodes.borrow_mut();
        let id = {
            let f = inodes.get(&fdir.0).ok_or(FsError::Stale)?;
            let children = f.children.as_ref().ok_or(FsError::NotDir)?;
            *children.get(fname).ok_or(FsError::NotFound)?
        };
        {
            let t = inodes.get(&tdir.0).ok_or(FsError::Stale)?;
            let tc = t.children.as_ref().ok_or(FsError::NotDir)?;
            if tc.contains_key(tname) {
                return Err(FsError::Exists);
            }
        }
        let now = self.ns.sim.now();
        inodes
            .get_mut(&fdir.0)
            .unwrap()
            .children
            .as_mut()
            .unwrap()
            .remove(fname);
        inodes.get_mut(&fdir.0).unwrap().attr.mtime = now;
        inodes
            .get_mut(&tdir.0)
            .unwrap()
            .children
            .as_mut()
            .unwrap()
            .insert(tname.to_string(), id);
        inodes.get_mut(&tdir.0).unwrap().attr.mtime = now;
        Ok(())
    }

    /// List a directory.
    pub fn readdir(&self, dir: FileId) -> FsResult<Vec<DirEntry>> {
        let inodes = self.ns.inodes.borrow();
        let d = inodes.get(&dir.0).ok_or(FsError::Stale)?;
        let children = d.children.as_ref().ok_or(FsError::NotDir)?;
        let mut out: Vec<DirEntry> = children
            .iter()
            .map(|(name, id)| DirEntry {
                name: name.clone(),
                id: *id,
                kind: inodes[&id.0].attr.kind,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// Read file data.
    pub async fn read(&self, id: FileId, off: u64, len: u64) -> FsResult<Payload> {
        Ok(self.read_sg(id, off, len).await?.to_payload())
    }

    /// Read file data as reference-counted pieces (no flattening): the
    /// server READ path gathers these straight onto the wire.
    pub async fn read_sg(&self, id: FileId, off: u64, len: u64) -> FsResult<SgList> {
        let attr = self.getattr(id)?;
        if attr.kind != FileKind::Regular {
            return Err(FsError::IsDir);
        }
        if off >= attr.size {
            return Ok(SgList::new());
        }
        let n = len.min(attr.size - off);
        let _s = self.ns.sim.span("fs", "read");
        Ok(self.store.read_sg(id, off, n).await)
    }

    /// Write file data, extending the size as needed.
    pub async fn write(&self, id: FileId, off: u64, data: Payload) -> FsResult<u64> {
        self.note_write(id, off, data.len())?;
        let _s = self.ns.sim.span("fs", "write");
        Ok(self.store.write(id, off, data).await)
    }

    /// Scatter a gather list into the file (no flattening): the server
    /// WRITE path hands transport pieces straight to the store.
    pub async fn write_sg(&self, id: FileId, off: u64, data: SgList) -> FsResult<u64> {
        self.note_write(id, off, data.len())?;
        let _s = self.ns.sim.span("fs", "write");
        Ok(self.store.write_sg(id, off, data).await)
    }

    fn note_write(&self, id: FileId, off: u64, len: u64) -> FsResult<()> {
        let mut inodes = self.ns.inodes.borrow_mut();
        let inode = inodes.get_mut(&id.0).ok_or(FsError::Stale)?;
        if inode.attr.kind != FileKind::Regular {
            return Err(FsError::IsDir);
        }
        inode.attr.size = inode.attr.size.max(off + len);
        inode.attr.mtime = self.ns.sim.now();
        Ok(())
    }

    /// Flush a file to stable storage.
    pub async fn commit(&self, id: FileId) -> FsResult<()> {
        self.getattr(id)?;
        self.store.commit(id).await;
        Ok(())
    }

    /// Aggregate statistics.
    pub fn fsstat(&self) -> FsStat {
        let inodes = self.ns.inodes.borrow();
        FsStat {
            bytes_used: inodes.values().map(|i| i.attr.size).sum(),
            inodes: inodes.len() as u64,
        }
    }
}

/// Object-safe facade over [`Fs`] so servers can hold any back end.
pub trait Vfs {
    /// Root directory id.
    fn root(&self) -> FileId;
    /// Attributes of `id`.
    fn getattr(&self, id: FileId) -> FsResult<Attr>;
    /// Truncate/extend a file.
    fn setattr_size(&self, id: FileId, size: u64) -> FsResult<Attr>;
    /// Find `name` in `dir`.
    fn lookup(&self, dir: FileId, name: &str) -> FsResult<Attr>;
    /// Create a regular file.
    fn create(&self, dir: FileId, name: &str) -> FsResult<Attr>;
    /// Create a directory.
    fn mkdir(&self, dir: FileId, name: &str) -> FsResult<Attr>;
    /// Create a symlink.
    fn symlink(&self, dir: FileId, name: &str, target: &str) -> FsResult<Attr>;
    /// Read a symlink target.
    fn readlink(&self, id: FileId) -> FsResult<String>;
    /// Remove a non-directory.
    fn remove(&self, dir: FileId, name: &str) -> FsResult<()>;
    /// Remove an empty directory.
    fn rmdir(&self, dir: FileId, name: &str) -> FsResult<()>;
    /// Rename an entry.
    fn rename(&self, fdir: FileId, fname: &str, tdir: FileId, tname: &str) -> FsResult<()>;
    /// List a directory.
    fn readdir(&self, dir: FileId) -> FsResult<Vec<DirEntry>>;
    /// Read file data.
    fn read(&self, id: FileId, off: u64, len: u64) -> LocalBoxFuture<FsResult<Payload>>;
    /// Read file data as zero-copy scatter/gather pieces.
    fn read_sg(&self, id: FileId, off: u64, len: u64) -> LocalBoxFuture<FsResult<SgList>>;
    /// Write file data.
    fn write(&self, id: FileId, off: u64, data: Payload) -> LocalBoxFuture<FsResult<u64>>;
    /// Write file data as zero-copy scatter/gather pieces.
    fn write_sg(&self, id: FileId, off: u64, data: SgList) -> LocalBoxFuture<FsResult<u64>>;
    /// Flush to stable storage.
    fn commit(&self, id: FileId) -> LocalBoxFuture<FsResult<()>>;
    /// Aggregate statistics.
    fn fsstat(&self) -> FsStat;
}

impl<S: DataStore + 'static> Vfs for Rc<Fs<S>> {
    fn root(&self) -> FileId {
        Fs::root(self)
    }
    fn getattr(&self, id: FileId) -> FsResult<Attr> {
        Fs::getattr(self, id)
    }
    fn setattr_size(&self, id: FileId, size: u64) -> FsResult<Attr> {
        Fs::setattr_size(self, id, size)
    }
    fn lookup(&self, dir: FileId, name: &str) -> FsResult<Attr> {
        Fs::lookup(self, dir, name)
    }
    fn create(&self, dir: FileId, name: &str) -> FsResult<Attr> {
        Fs::create(self, dir, name)
    }
    fn mkdir(&self, dir: FileId, name: &str) -> FsResult<Attr> {
        Fs::mkdir(self, dir, name)
    }
    fn symlink(&self, dir: FileId, name: &str, target: &str) -> FsResult<Attr> {
        Fs::symlink(self, dir, name, target)
    }
    fn readlink(&self, id: FileId) -> FsResult<String> {
        Fs::readlink(self, id)
    }
    fn remove(&self, dir: FileId, name: &str) -> FsResult<()> {
        Fs::remove(self, dir, name)
    }
    fn rmdir(&self, dir: FileId, name: &str) -> FsResult<()> {
        Fs::rmdir(self, dir, name)
    }
    fn rename(&self, fdir: FileId, fname: &str, tdir: FileId, tname: &str) -> FsResult<()> {
        Fs::rename(self, fdir, fname, tdir, tname)
    }
    fn readdir(&self, dir: FileId) -> FsResult<Vec<DirEntry>> {
        Fs::readdir(self, dir)
    }
    fn read(&self, id: FileId, off: u64, len: u64) -> LocalBoxFuture<FsResult<Payload>> {
        let fs = self.clone();
        Box::pin(async move { fs.as_ref().read(id, off, len).await })
    }
    fn read_sg(&self, id: FileId, off: u64, len: u64) -> LocalBoxFuture<FsResult<SgList>> {
        let fs = self.clone();
        Box::pin(async move { fs.as_ref().read_sg(id, off, len).await })
    }
    fn write(&self, id: FileId, off: u64, data: Payload) -> LocalBoxFuture<FsResult<u64>> {
        let fs = self.clone();
        Box::pin(async move { fs.as_ref().write(id, off, data).await })
    }
    fn write_sg(&self, id: FileId, off: u64, data: SgList) -> LocalBoxFuture<FsResult<u64>> {
        let fs = self.clone();
        Box::pin(async move { fs.as_ref().write_sg(id, off, data).await })
    }
    fn commit(&self, id: FileId) -> LocalBoxFuture<FsResult<()>> {
        let fs = self.clone();
        Box::pin(async move { fs.as_ref().commit(id).await })
    }
    fn fsstat(&self) -> FsStat {
        Fs::fsstat(self)
    }
}
