//! # fs-backend — file systems behind the NFS server
//!
//! The two storage configurations of the paper's evaluation:
//!
//! * **tmpfs** (§5.1/§5.2): a memory file system, so transport costs
//!   dominate — used for the IOzone and FileBench single-client runs.
//! * **XFS on RAID-0** (§5.3): eight 30 MB/s disks behind a server
//!   page cache of 4 or 8 GiB — the multi-client scalability testbed
//!   whose cache-capacity crossover produces Figure 10.
//!
//! Architecture: a shared namespace layer ([`vfs::Fs`]) over a
//! [`vfs::DataStore`] that owns data timing; contents are exact
//! (extent maps), timing is modelled (disk arms, page-cache
//! residency), and the two never disagree.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod disk;
pub mod pagecache;
pub mod stores;
pub mod vfs;
pub mod wal;

pub use disk::{Disk, Raid0};
pub use pagecache::PageCache;
pub use stores::{diskfs, diskfs_wal, tmpfs, CachedDiskStore, DiskFs, MemStore, Tmpfs};
pub use vfs::{Attr, DataStore, DirEntry, FileId, FileKind, Fs, FsError, FsResult, FsStat, Vfs};
pub use wal::{Wal, WalConfig, WalRecord, WalStats};
