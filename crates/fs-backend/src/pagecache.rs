//! Server page cache: LRU residency over a disk array.
//!
//! Timing and contents are deliberately separated: file contents live
//! in per-file extent maps (always correct), while the cache tracks
//! *which ranges are memory-resident* and charges disk time for
//! misses, write-back for dirty evictions, and nothing for hits. This
//! is the mechanism behind Figure 10: client working sets that fit in
//! server RAM read at wire speed; bigger ones collapse to the RAID's
//! aggregate rate.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use sim_core::Counter;

use crate::disk::Raid0;
use crate::vfs::FileId;

/// Cache-page key: (file, page index).
type PageKey = (u64, u64);

#[derive(Clone, Copy, PartialEq, Eq)]
enum PageState {
    Clean,
    Dirty,
}

struct CacheInner {
    /// Resident pages: state + recency stamp.
    pages: HashMap<PageKey, (PageState, u64)>,
    /// Recency order: stamp -> key (front = coldest). O(log n) LRU.
    order: BTreeMap<u64, PageKey>,
    next_stamp: u64,
}

impl CacheInner {
    fn touch(&mut self, key: PageKey, state: PageState) {
        if let Some((_, old)) = self.pages.get(&key) {
            self.order.remove(old);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.order.insert(stamp, key);
        self.pages.insert(key, (state, stamp));
    }

    fn remove(&mut self, key: &PageKey) -> Option<PageState> {
        let (state, stamp) = self.pages.remove(key)?;
        self.order.remove(&stamp);
        Some(state)
    }

    fn pop_coldest(&mut self) -> Option<(PageKey, PageState)> {
        let (&stamp, &key) = self.order.iter().next()?;
        self.order.remove(&stamp);
        let (state, _) = self.pages.remove(&key)?;
        Some((key, state))
    }
}

/// LRU page cache over a RAID-0 array.
pub struct PageCache {
    raid: Raid0,
    page_size: u64,
    capacity_pages: u64,
    /// Pages fetched per miss (sequential readahead, like the kernel's
    /// readahead window); amortizes disk positioning across streams.
    readahead_pages: Cell<u64>,
    /// Per-file next expected page, for classifying access patterns.
    next_expected: RefCell<HashMap<u64, u64>>,
    inner: RefCell<CacheInner>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    writebacks: Cell<u64>,
    ra_windows: Cell<u64>,
    ra_pages: Cell<u64>,
    ra_sequential: Cell<u64>,
    metrics: RefCell<Option<RaMetrics>>,
}

/// Registry counters mirroring the readahead statistics.
struct RaMetrics {
    windows: Rc<Counter>,
    pages: Rc<Counter>,
    sequential: Rc<Counter>,
}

impl PageCache {
    /// A cache of `capacity_bytes` RAM in `page_size` units over `raid`.
    pub fn new(raid: Raid0, capacity_bytes: u64, page_size: u64) -> PageCache {
        assert!(page_size.is_power_of_two());
        PageCache {
            raid,
            page_size,
            capacity_pages: (capacity_bytes / page_size).max(1),
            readahead_pages: Cell::new(8),
            next_expected: RefCell::new(HashMap::new()),
            inner: RefCell::new(CacheInner {
                pages: HashMap::new(),
                order: BTreeMap::new(),
                next_stamp: 0,
            }),
            hits: Cell::new(0),
            misses: Cell::new(0),
            writebacks: Cell::new(0),
            ra_windows: Cell::new(0),
            ra_pages: Cell::new(0),
            ra_sequential: Cell::new(0),
            metrics: RefCell::new(None),
        }
    }

    /// Current readahead window, in pages.
    pub fn readahead(&self) -> u64 {
        self.readahead_pages.get()
    }

    /// Set the readahead window (clamped to at least one page).
    pub fn set_readahead(&self, pages: u64) {
        self.readahead_pages.set(pages.max(1));
    }

    /// Mirror readahead statistics into the shared metrics registry as
    /// `pagecache.readahead.{windows,pages,sequential}`.
    pub fn bind_metrics(&self, metrics: &sim_core::MetricsRegistry) {
        *self.metrics.borrow_mut() = Some(RaMetrics {
            windows: metrics.counter("pagecache.readahead.windows"),
            pages: metrics.counter("pagecache.readahead.pages"),
            sequential: metrics.counter("pagecache.readahead.sequential"),
        });
    }

    /// Readahead windows issued (miss fetches that pulled more than the
    /// demanded pages).
    pub fn readahead_windows(&self) -> u64 {
        self.ra_windows.get()
    }

    /// Speculative pages fetched beyond demand.
    pub fn readahead_pages_fetched(&self) -> u64 {
        self.ra_pages.get()
    }

    /// Reads that continued a file's sequential stream.
    pub fn sequential_reads(&self) -> u64 {
        self.ra_sequential.get()
    }

    /// Cache page size.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses so far (each cost a disk read).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Dirty evictions so far (each cost a disk write).
    pub fn writebacks(&self) -> u64 {
        self.writebacks.get()
    }

    /// Resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.inner.borrow().pages.len() as u64
    }

    /// Make `[off, off+len)` of `file` resident for reading, charging
    /// disk time for missing pages. `disk_base` maps the file onto the
    /// array's address space.
    pub async fn read_range(&self, file: FileId, disk_base: u64, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = off / self.page_size;
        let last = (off + len - 1) / self.page_size;
        // Classify the access: a read starting where the file's last
        // read ended continues a sequential stream (the pattern the
        // readahead window exists to serve).
        let sequential = self.next_expected.borrow().get(&file.0) == Some(&first);
        if sequential {
            self.ra_sequential.set(self.ra_sequential.get() + 1);
            if let Some(m) = self.metrics.borrow().as_ref() {
                m.sequential.inc();
            }
        }
        self.next_expected.borrow_mut().insert(file.0, last + 1);
        let mut page = first;
        while page <= last {
            let key = (file.0, page);
            let state = self.inner.borrow().pages.get(&key).map(|(s, _)| *s);
            if let Some(state) = state {
                self.hits.set(self.hits.get() + 1);
                self.inner.borrow_mut().touch(key, state);
                page += 1;
                continue;
            }
            // Miss: fetch a readahead window of consecutive missing
            // pages in one disk request.
            let mut run = 1u64;
            while run < self.readahead_pages.get() {
                let next = (file.0, page + run);
                if self.inner.borrow().pages.contains_key(&next) {
                    break;
                }
                run += 1;
            }
            // Only the demanded pages count as misses; readahead pages
            // beyond `last` are speculative.
            let demanded = (last.min(page + run - 1) - page) + 1;
            self.misses.set(self.misses.get() + demanded);
            if run > demanded {
                self.ra_windows.set(self.ra_windows.get() + 1);
                self.ra_pages.set(self.ra_pages.get() + (run - demanded));
                if let Some(m) = self.metrics.borrow().as_ref() {
                    m.windows.inc();
                    m.pages.add(run - demanded);
                }
            }
            self.evict_for(run).await;
            self.raid
                .transfer(disk_base + page * self.page_size, run * self.page_size)
                .await;
            {
                let mut inner = self.inner.borrow_mut();
                for p in page..page + run {
                    inner.touch((file.0, p), PageState::Clean);
                }
            }
            page += run;
        }
    }

    /// Mark `[off, off+len)` of `file` resident and dirty (write-back
    /// caching: no disk time now; evictions and commits pay it).
    pub async fn write_range(&self, file: FileId, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = off / self.page_size;
        let last = (off + len - 1) / self.page_size;
        for page in first..=last {
            let key = (file.0, page);
            let known = self.inner.borrow().pages.contains_key(&key);
            if !known {
                self.evict_for(1).await;
            }
            self.inner.borrow_mut().touch(key, PageState::Dirty);
        }
    }

    /// Flush all dirty pages of `file` to the array.
    pub async fn commit(&self, file: FileId, disk_base: u64) {
        let dirty: Vec<u64> = {
            let inner = self.inner.borrow();
            inner
                .pages
                .iter()
                .filter(|((f, _), (s, _))| *f == file.0 && *s == PageState::Dirty)
                .map(|((_, p), _)| *p)
                .collect()
        };
        if dirty.is_empty() {
            return;
        }
        self.writebacks
            .set(self.writebacks.get() + dirty.len() as u64);
        // Coalesce into one sequential sweep per commit.
        let bytes = dirty.len() as u64 * self.page_size;
        self.raid.transfer(disk_base, bytes).await;
        let mut inner = self.inner.borrow_mut();
        for p in dirty {
            let key = (file.0, p);
            if let Some((_, stamp)) = inner.pages.get(&key).copied() {
                inner.pages.insert(key, (PageState::Clean, stamp));
            }
        }
    }

    /// Mark every dirty page clean without charging disk time; returns
    /// the number of pages cleaned. Used by the WAL-backed store after
    /// a group commit: the data is durable in the log, so home-location
    /// writeback is elided (log-structured durability).
    pub fn mark_clean_all(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let dirty: Vec<PageKey> = inner
            .pages
            .iter()
            .filter(|(_, (s, _))| *s == PageState::Dirty)
            .map(|(k, _)| *k)
            .collect();
        let n = dirty.len() as u64;
        for key in dirty {
            if let Some((_, stamp)) = inner.pages.get(&key).copied() {
                inner.pages.insert(key, (PageState::Clean, stamp));
            }
        }
        n
    }

    /// Drop every resident page without write-back — power failure:
    /// whatever was dirty is simply gone.
    pub fn drop_all(&self) {
        self.next_expected.borrow_mut().clear();
        let mut inner = self.inner.borrow_mut();
        inner.pages.clear();
        inner.order.clear();
    }

    /// Drop all pages of `file` (delete/truncate).
    pub fn invalidate(&self, file: FileId) {
        self.next_expected.borrow_mut().remove(&file.0);
        let mut inner = self.inner.borrow_mut();
        let victims: Vec<PageKey> = inner
            .pages
            .keys()
            .filter(|(f, _)| *f == file.0)
            .copied()
            .collect();
        for key in victims {
            inner.remove(&key);
        }
    }

    async fn evict_for(&self, need: u64) {
        loop {
            let victim = {
                let mut inner = self.inner.borrow_mut();
                if (inner.pages.len() as u64) + need <= self.capacity_pages {
                    return;
                }
                inner.pop_coldest()
            };
            let Some((key, state)) = victim else { return };
            if state == PageState::Dirty {
                self.writebacks.set(self.writebacks.get() + 1);
                self.raid
                    .transfer(key.1 * self.page_size, self.page_size)
                    .await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Raid0;
    use sim_core::{SimTime, Simulation};

    fn cache(sim: &Simulation, capacity: u64) -> PageCache {
        let raid = Raid0::paper_array(&sim.handle());
        PageCache::new(raid, capacity, 256 * 1024)
    }

    #[test]
    fn first_read_misses_then_hits() {
        let mut sim = Simulation::new(1);
        let c = cache(&sim, 64 << 20);
        sim.block_on({
            async move {
                c.read_range(FileId(5), 0, 0, 1 << 20).await;
                assert_eq!(c.misses(), 4);
                assert_eq!(c.hits(), 0);
                c.read_range(FileId(5), 0, 0, 1 << 20).await;
                assert_eq!(c.hits(), 4);
                assert_eq!(c.misses(), 4);
            }
        });
    }

    #[test]
    fn hits_cost_no_time() {
        let mut sim = Simulation::new(1);
        let c = std::rc::Rc::new(cache(&sim, 64 << 20));
        let c2 = c.clone();
        let (t1, t2) = sim.block_on({
            let h = sim.handle();
            async move {
                let t0 = h.now();
                c2.read_range(FileId(1), 0, 0, 1 << 20).await;
                let t1 = h.now().saturating_since(t0);
                let t0 = h.now();
                c2.read_range(FileId(1), 0, 0, 1 << 20).await;
                let t2 = h.now().saturating_since(t0);
                (t1, t2)
            }
        });
        assert!(t1.as_nanos() > 0);
        assert_eq!(t2.as_nanos(), 0);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut sim = Simulation::new(1);
        // Room for 8 pages of 256K = 2 MiB.
        let c = std::rc::Rc::new(cache(&sim, 2 << 20));
        let c2 = c.clone();
        sim.block_on(async move {
            // Fill with file 1 (8 pages).
            c2.read_range(FileId(1), 0, 0, 2 << 20).await;
            assert_eq!(c2.resident_pages(), 8);
            // Read file 2: evicts file 1's coldest pages.
            c2.read_range(FileId(2), 1 << 30, 0, 1 << 20).await;
            assert_eq!(c2.resident_pages(), 8);
            let before = c2.misses();
            // Oldest file-1 pages are gone: re-reading them misses.
            c2.read_range(FileId(1), 0, 0, 1 << 20).await;
            assert!(c2.misses() > before);
        });
    }

    #[test]
    fn dirty_eviction_pays_writeback() {
        let mut sim = Simulation::new(1);
        let c = std::rc::Rc::new(cache(&sim, 2 << 20));
        let c2 = c.clone();
        sim.block_on(async move {
            c2.write_range(FileId(1), 0, 2 << 20).await; // 8 dirty pages
            let t0 = SimTime::ZERO;
            let _ = t0;
            // Displace them with reads.
            c2.read_range(FileId(2), 1 << 30, 0, 2 << 20).await;
            assert!(c2.writebacks() >= 8, "writebacks {}", c2.writebacks());
        });
    }

    #[test]
    fn commit_flushes_dirty_pages_once() {
        let mut sim = Simulation::new(1);
        let c = std::rc::Rc::new(cache(&sim, 64 << 20));
        let c2 = c.clone();
        sim.block_on(async move {
            c2.write_range(FileId(1), 0, 1 << 20).await;
            c2.commit(FileId(1), 0).await;
            assert_eq!(c2.writebacks(), 4);
            // Second commit: nothing dirty.
            c2.commit(FileId(1), 0).await;
            assert_eq!(c2.writebacks(), 4);
        });
    }

    #[test]
    fn sequential_stream_readahead_classifies_and_prefetches() {
        let mut sim = Simulation::new(1);
        let c = std::rc::Rc::new(cache(&sim, 64 << 20));
        let c2 = c.clone();
        sim.block_on(async move {
            // First read of 2 pages: a miss whose window (8 pages)
            // prefetches 6 beyond demand.
            c2.read_range(FileId(1), 0, 0, 512 * 1024).await;
            assert_eq!(c2.misses(), 2);
            assert_eq!(c2.readahead_windows(), 1);
            assert_eq!(c2.readahead_pages_fetched(), 6);
            assert_eq!(c2.sequential_reads(), 0, "first read has no stream");
            // Continuing where the last read ended: classified
            // sequential, and the readahead already made it a pure hit.
            c2.read_range(FileId(1), 0, 512 * 1024, 512 * 1024).await;
            assert_eq!(c2.sequential_reads(), 1);
            assert_eq!(c2.misses(), 2, "prefetched pages must hit");
            // A jump elsewhere in the file is not sequential.
            c2.read_range(FileId(1), 0, 8 << 20, 256 * 1024).await;
            assert_eq!(c2.sequential_reads(), 1);
        });
    }

    #[test]
    fn invalidate_drops_residency() {
        let mut sim = Simulation::new(1);
        let c = std::rc::Rc::new(cache(&sim, 64 << 20));
        let c2 = c.clone();
        sim.block_on(async move {
            c2.read_range(FileId(1), 0, 0, 1 << 20).await;
            c2.invalidate(FileId(1));
            assert_eq!(c2.resident_pages(), 0);
        });
    }
}
