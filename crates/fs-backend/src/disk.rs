//! Rotating-disk and RAID-0 models.
//!
//! The paper's multi-client testbed stores data on eight HighPoint
//! SCSI disks in RAID-0, "each disk capable of 30 MB/s". A [`Disk`] is
//! a single-slot resource whose occupancy is seek + rotational delay +
//! transfer; [`Raid0`] stripes requests across members so sequential
//! streams approach `disks × 30 MB/s`.

use sim_core::{transfer_time, Resource, Sim, SimDuration};

/// One rotating disk.
#[derive(Clone)]
pub struct Disk {
    arm: Resource,
    /// Sustained transfer rate, bytes/second.
    rate: u64,
    /// Average positioning cost charged on discontiguous access.
    seek: SimDuration,
    /// End of the last access (address-space position), for
    /// sequential-access detection.
    head_pos: std::rc::Rc<std::cell::Cell<u64>>,
}

impl Disk {
    /// A disk with the given transfer rate and average seek time.
    pub fn new(sim: &Sim, name: impl Into<String>, rate: u64, seek: SimDuration) -> Disk {
        Disk {
            arm: Resource::new(sim, name, 1),
            rate,
            seek,
            head_pos: std::rc::Rc::new(std::cell::Cell::new(u64::MAX)),
        }
    }

    /// The paper's 30 MB/s SCSI disk.
    pub fn scsi_30mb(sim: &Sim, index: usize) -> Disk {
        Disk::new(
            sim,
            format!("disk{index}"),
            30_000_000,
            SimDuration::from_millis(4),
        )
    }

    /// Transfer `bytes` at an unspecified position (always seeks).
    pub async fn transfer(&self, bytes: u64) {
        let t = self.seek + transfer_time(bytes, self.rate);
        self.arm.use_for(t).await;
        self.head_pos.set(u64::MAX);
    }

    /// Transfer `bytes` at `addr`; a request continuing (or nearly
    /// continuing) the previous one pays no positioning cost, so
    /// sequential streams run at the platter rate.
    pub async fn transfer_at(&self, addr: u64, bytes: u64) {
        let last = self.head_pos.get();
        // Allow a small skip (stripe interleave) to still count as
        // sequential.
        let sequential = last != u64::MAX && addr >= last && addr - last <= (4 << 20);
        let mut t = transfer_time(bytes, self.rate);
        if !sequential {
            t += self.seek;
        }
        self.arm.use_for(t).await;
        self.head_pos.set(addr + bytes);
    }

    /// Utilization since the accounting window opened.
    pub fn utilization(&self) -> f64 {
        self.arm.utilization()
    }

    /// Reset accounting.
    pub fn reset_accounting(&self) {
        self.arm.reset_accounting();
    }
}

/// A RAID-0 stripe set.
#[derive(Clone)]
pub struct Raid0 {
    disks: Vec<Disk>,
    stripe: u64,
}

impl Raid0 {
    /// Stripe across `disks` with the given stripe unit.
    pub fn new(disks: Vec<Disk>, stripe: u64) -> Raid0 {
        assert!(!disks.is_empty() && stripe > 0);
        Raid0 { disks, stripe }
    }

    /// The paper's array: 8 × 30 MB/s disks, 64 KiB stripe unit.
    pub fn paper_array(sim: &Sim) -> Raid0 {
        Raid0::new((0..8).map(|i| Disk::scsi_30mb(sim, i)).collect(), 64 * 1024)
    }

    /// Number of member disks.
    pub fn width(&self) -> usize {
        self.disks.len()
    }

    /// Aggregate sequential bandwidth, bytes/second.
    pub fn aggregate_rate(&self) -> u64 {
        self.disks.iter().map(|d| d.rate).sum()
    }

    /// Transfer `[addr, addr+len)` of the array's address space,
    /// striping across members and waiting for the slowest.
    pub async fn transfer(&self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        // Bytes and start address for each member in this request.
        let mut per_disk: Vec<Option<(u64, u64)>> = vec![None; self.disks.len()];
        let mut cursor = addr;
        let end = addr + len;
        while cursor < end {
            let stripe_index = cursor / self.stripe;
            let disk = (stripe_index as usize) % self.disks.len();
            let stripe_end = (stripe_index + 1) * self.stripe;
            let n = stripe_end.min(end) - cursor;
            match &mut per_disk[disk] {
                Some((_, bytes)) => *bytes += n,
                None => per_disk[disk] = Some((cursor, n)),
            }
            cursor += n;
        }
        // Issue in parallel; complete when all members finish.
        let done = sim_core::sync::Semaphore::new(0);
        let mut issued = 0;
        for (i, req) in per_disk.iter().enumerate() {
            let Some((start, bytes)) = *req else { continue };
            issued += 1;
            let disk = self.disks[i].clone();
            let done = done.clone();
            // Spawn via the disk's own resource context.
            let sim = disk.arm_sim();
            sim.spawn(async move {
                disk.transfer_at(start, bytes).await;
                done.add_permits(1);
            });
        }
        for _ in 0..issued {
            done.acquire().await.forget();
        }
    }

    /// Mean utilization across members.
    pub fn utilization(&self) -> f64 {
        self.disks.iter().map(|d| d.utilization()).sum::<f64>() / self.disks.len() as f64
    }

    /// Reset accounting on all members.
    pub fn reset_accounting(&self) {
        for d in &self.disks {
            d.reset_accounting();
        }
    }
}

impl Disk {
    fn arm_sim(&self) -> Sim {
        self.arm.sim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Simulation;

    #[test]
    fn single_disk_rate() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let d = Disk::scsi_30mb(&h, 0);
        let d2 = d.clone();
        sim.block_on(async move { d2.transfer(30_000_000).await });
        // 1s transfer + 4ms seek.
        assert_eq!(sim.now().as_nanos(), 1_004_000_000);
    }

    #[test]
    fn raid0_parallelizes_large_requests() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let raid = Raid0::paper_array(&h);
        let r2 = raid.clone();
        // 8 MiB spanning all 8 disks: ~1 MiB each at 30 MB/s ≈ 35 ms,
        // vs 280 ms on one disk.
        sim.block_on(async move { r2.transfer(0, 8 << 20).await });
        let secs = sim.now().as_secs_f64();
        assert!(secs < 0.05, "parallel transfer took {secs}s");
    }

    #[test]
    fn raid0_small_request_hits_one_disk() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let raid = Raid0::paper_array(&h);
        let r2 = raid.clone();
        sim.block_on(async move { r2.transfer(0, 32 * 1024).await });
        // One disk: 4ms seek + ~1.09ms transfer.
        let ms = sim.now().as_secs_f64() * 1e3;
        assert!((4.9..5.4).contains(&ms), "{ms} ms");
    }

    #[test]
    fn raid0_aggregate_streaming_rate() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let raid = Raid0::paper_array(&h);
        // Stream 240 MB in 1 MiB chunks sequentially: expect ≈ 240 MB/s
        // aggregate minus seek overhead.
        let r2 = raid.clone();
        sim.block_on(async move {
            let chunk = 1 << 20;
            let total: u64 = 240_000_000;
            let mut addr = 0;
            while addr < total {
                r2.transfer(addr, chunk).await;
                addr += chunk;
            }
        });
        let rate = 240.0 / sim.now().as_secs_f64();
        assert!(
            (150.0..245.0).contains(&rate),
            "aggregate rate {rate:.0} MB/s"
        );
    }

    #[test]
    fn concurrent_streams_share_members() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let raid = Raid0::paper_array(&h);
        for s in 0..4u64 {
            let r = raid.clone();
            sim.spawn(async move {
                // Disjoint regions, same member set.
                let base = s * (64 << 20);
                let mut addr = base;
                while addr < base + (16 << 20) {
                    r.transfer(addr, 1 << 20).await;
                    addr += 1 << 20;
                }
            });
        }
        sim.run();
        // 64 MiB total at ≈ 200+ MB/s aggregate.
        let secs = sim.now().as_secs_f64();
        assert!(secs < 0.6, "{secs}s");
        assert!(raid.utilization() > 0.5);
    }
}
