//! End-to-end behavioural tests of the simulated verbs layer: data
//! movement, protection enforcement, IB ordering semantics, and
//! registration cost accounting.

use std::rc::Rc;

use ib_verbs::{
    connect, Access, Fabric, Hca, HcaConfig, HostMem, NodeId, Opcode, PhysLayout, VerbsError, WrId,
};
use sim_core::{Cpu, CpuCosts, Payload, Sim, SimDuration, Simulation};

struct Host {
    hca: Hca,
    mem: Rc<HostMem>,
}

fn host(sim: &Sim, fabric: &Fabric<ib_verbs::WireMsg>, id: u32, cfg: HcaConfig) -> Host {
    let node = NodeId(id);
    let cpu = Cpu::new(sim, format!("cpu{id}"), 2, CpuCosts::default());
    let mem = Rc::new(HostMem::new(node, PhysLayout::default(), sim.fork_rng()));
    let hca = Hca::new(sim, node, cfg, cpu, mem.clone(), fabric);
    Host { hca, mem }
}

fn two_hosts(sim: &Sim) -> (Host, Host) {
    let fabric = Fabric::new(sim);
    let a = host(sim, &fabric, 0, HcaConfig::sdr());
    let b = host(sim, &fabric, 1, HcaConfig::sdr());
    (a, b)
}

#[test]
fn send_recv_roundtrip_delivers_bytes() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, qb) = connect(&a.hca, &b.hca);

    let rbuf = b.mem.alloc(4096);
    qb.post_recv(rbuf.clone(), 0, 4096, WrId(100)).unwrap();
    qa.post_send(Payload::real(vec![7u8; 256]), WrId(1), true)
        .unwrap();

    let (recv, send) = sim.block_on(async move {
        let r = qb.recv_cq().next().await;
        let s = qa.send_cq().next().await;
        (r, s)
    });
    assert_eq!(recv.wr_id, WrId(100));
    assert_eq!(recv.opcode, Opcode::Recv);
    assert_eq!(recv.result, Ok(256));
    assert_eq!(&rbuf.read(0, 256).materialize()[..], &[7u8; 256]);
    assert_eq!(send.result, Ok(256));
}

#[test]
fn send_without_posted_recv_errors_both_sides() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, qb) = connect(&a.hca, &b.hca);

    qa.post_send(Payload::real(vec![1u8; 64]), WrId(1), true)
        .unwrap();
    let s = sim.block_on({
        let qa = qa.clone();
        async move { qa.send_cq().next().await }
    });
    assert_eq!(s.result, Err(VerbsError::ReceiverNotReady));
    assert!(qa.is_error());
    assert!(qb.is_error());
    // Subsequent posts are rejected.
    assert!(matches!(
        qa.post_send(Payload::empty(), WrId(2), true),
        Err(VerbsError::Flushed)
    ));
}

#[test]
fn rdma_write_places_data_without_remote_cpu() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);

    let target = b.mem.alloc(8192);
    let b_cpu_before = b.hca.cpu().busy_time();
    let (mr, comp) = sim.block_on({
        let bh = b.hca.clone();
        let target = target.clone();
        let qa = qa.clone();
        async move {
            let mr = bh.register(&target, 0, 8192, Access::REMOTE_WRITE).await;
            qa.post_rdma_write(
                Payload::real(vec![9u8; 1024]),
                mr.addr() + 100,
                mr.rkey(),
                WrId(5),
                true,
            )
            .unwrap();
            let c = qa.send_cq().next().await;
            (mr, c)
        }
    });
    assert_eq!(comp.result, Ok(1024));
    assert_eq!(&target.read(100, 1024).materialize()[..], &[9u8; 1024]);
    // Remote CPU did only the registration work, nothing per-byte.
    let reg_cost = b.hca.cpu().busy_time() - b_cpu_before;
    assert!(reg_cost < SimDuration::from_micros(10));
    drop(mr);
}

#[test]
fn rdma_read_fetches_remote_data() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);

    let src = b.mem.alloc(4096);
    src.write(0, Payload::real((0u8..=255).collect::<Vec<_>>()));
    let dst = a.mem.alloc(4096);

    let comp = sim.block_on({
        let bh = b.hca.clone();
        let src = src.clone();
        let dst = dst.clone();
        let qa = qa.clone();
        async move {
            let mr = bh.register(&src, 0, 4096, Access::REMOTE_READ).await;
            qa.post_rdma_read(dst.clone(), 0, mr.addr(), mr.rkey(), 256, WrId(9))
                .unwrap();
            let c = qa.send_cq().next().await;
            mr.deregister().await;
            c
        }
    });
    assert_eq!(comp.result, Ok(256));
    assert_eq!(
        dst.read(0, 256).materialize(),
        src.read(0, 256).materialize()
    );
}

#[test]
fn rdma_read_with_guessed_rkey_is_rejected_and_audited() {
    let mut sim = Simulation::new(42);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);

    // The server holds a remotely-readable secret.
    let secret = b.mem.alloc(4096);
    secret.write(0, Payload::real(vec![0x5a; 64]));
    let dst = a.mem.alloc(4096);

    let comp = sim.block_on({
        let bh = b.hca.clone();
        let secret = secret.clone();
        let dst = dst.clone();
        let qa = qa.clone();
        async move {
            let mr = bh.register(&secret, 0, 4096, Access::REMOTE_READ).await;
            // Attacker guesses a steering tag.
            let guess = ib_verbs::Rkey(mr.rkey().0 ^ 0x1357_9bdf);
            qa.post_rdma_read(dst.clone(), 0, mr.addr(), guess, 64, WrId(66))
                .unwrap();
            let c = qa.send_cq().next().await;
            mr.deregister().await;
            c
        }
    });
    assert!(matches!(comp.result, Err(VerbsError::RemoteAccess { .. })));
    assert!(qa.is_error(), "attacker connection must be torn down");
    assert_eq!(b.hca.exposure_report().violations, 1);
    // No data leaked.
    assert_eq!(&dst.read(0, 64).materialize()[..], &[0u8; 64]);
}

#[test]
fn write_send_ordering_guarantee_holds() {
    // The Read-Write design's correctness: when the RPC Reply (Send)
    // arrives, the preceding RDMA Write data must already be placed.
    let mut sim = Simulation::new(7);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, qb) = connect(&a.hca, &b.hca);

    let data_buf = b.mem.alloc(1 << 20);
    let reply_buf = b.mem.alloc(4096);
    qb.post_recv(reply_buf, 0, 4096, WrId(200)).unwrap();

    let observed = sim.block_on({
        let bh = b.hca.clone();
        let data_buf = data_buf.clone();
        let qa = qa.clone();
        let qb = qb.clone();
        async move {
            let mr = bh
                .register(&data_buf, 0, 1 << 20, Access::REMOTE_WRITE)
                .await;
            // Large write followed immediately by a small send.
            qa.post_rdma_write(
                Payload::synthetic(3, 1 << 20),
                mr.addr(),
                mr.rkey(),
                WrId(1),
                false,
            )
            .unwrap();
            qa.post_send(Payload::real(vec![1]), WrId(2), true).unwrap();
            // Receiver: at the instant the Send arrives, check the data.
            let _ = qb.recv_cq().next().await;
            let got = data_buf.read(0, 1 << 20);
            mr.deregister().await;
            got
        }
    });
    assert!(
        observed.content_eq(&Payload::synthetic(3, 1 << 20)),
        "send overtook the RDMA write"
    );
}

#[test]
fn read_then_send_has_no_ordering_guarantee() {
    // Paper §4.1: the requester of an RDMA Read must NOT assume a
    // subsequent Send waits for the read data. We verify the hazard is
    // modelled: the send arrives at the peer before the read completes
    // locally.
    let mut sim = Simulation::new(7);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, qb) = connect(&a.hca, &b.hca);

    let src = b.mem.alloc(1 << 20); // 1 MiB read: slow
    let dst = a.mem.alloc(1 << 20);
    let notice = b.mem.alloc(64);
    qb.post_recv(notice, 0, 64, WrId(300)).unwrap();

    let (send_arrival, read_done) = sim.block_on({
        let bh = b.hca.clone();
        let h2 = h.clone();
        let src = src.clone();
        let dst = dst.clone();
        let qa = qa.clone();
        let qb = qb.clone();
        async move {
            let mr = bh.register(&src, 0, 1 << 20, Access::REMOTE_READ).await;
            qa.post_rdma_read(dst, 0, mr.addr(), mr.rkey(), 1 << 20, WrId(1))
                .unwrap();
            qa.post_send(Payload::real(vec![1]), WrId(2), false)
                .unwrap();
            let _ = qb.recv_cq().next().await;
            let send_arrival = h2.now();
            let c = qa.send_cq().next().await;
            assert_eq!(c.opcode, Opcode::RdmaRead);
            let read_done = h2.now();
            mr.deregister().await;
            (send_arrival, read_done)
        }
    });
    assert!(
        send_arrival < read_done,
        "expected the send to overtake the read response"
    );
}

#[test]
fn ord_limit_stalls_send_queue() {
    // With max_ord outstanding reads, the next WQE (even a Send) waits.
    let mut sim = Simulation::new(7);
    let h = sim.handle();
    let fabric = Fabric::new(&h);
    let mut cfg = HcaConfig::sdr();
    cfg.max_ord = 2;
    cfg.max_ird = 2;
    // Huge turnaround so reads visibly serialize.
    cfg.read_turnaround = SimDuration::from_micros(500);
    let a = host(&h, &fabric, 0, cfg);
    let b = host(&h, &fabric, 1, cfg);
    let (qa, _qb) = connect(&a.hca, &b.hca);

    let src = b.mem.alloc(1 << 20);
    let dst = a.mem.alloc(1 << 20);

    let completion_times = sim.block_on({
        let bh = b.hca.clone();
        let h2 = h.clone();
        let src = src.clone();
        let dst = dst.clone();
        let qa = qa.clone();
        async move {
            let mr = bh.register(&src, 0, 1 << 20, Access::REMOTE_READ).await;
            for i in 0..6u64 {
                qa.post_rdma_read(
                    dst.clone(),
                    i * 1024,
                    mr.addr() + i * 1024,
                    mr.rkey(),
                    1024,
                    WrId(i),
                )
                .unwrap();
            }
            let mut times = Vec::new();
            for _ in 0..6 {
                let c = qa.send_cq().next().await;
                assert!(c.result.is_ok());
                times.push(h2.now());
            }
            mr.deregister().await;
            times
        }
    });
    // 6 reads with window 2 and 500us turnaround: finish in ~3 waves.
    let span = completion_times[5].saturating_since(completion_times[0]);
    assert!(
        span >= SimDuration::from_micros(900),
        "reads did not serialize under the ORD/IRD window: span {span}"
    );
}

#[test]
fn registration_pays_tpt_and_pin_costs() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, _b) = two_hosts(&h);
    let buf = a.mem.alloc(128 * 1024);
    let cfg = *a.hca.config();

    sim.block_on({
        let hca = a.hca.clone();
        let buf = buf.clone();
        async move {
            let mr = hca
                .register(&buf, 0, 128 * 1024, Access::REMOTE_WRITE)
                .await;
            mr.deregister().await;
        }
    });
    // TPT engine: one register + one invalidate transaction.
    let expect_tpt = cfg.reg_cost(32) + cfg.dereg_cost(32);
    let stats = a.hca.reg_stats();
    assert_eq!(stats.dynamic_regs, 1);
    assert_eq!(stats.deregs, 1);
    assert_eq!(stats.pages_pinned, 32);
    assert!(sim.now().as_nanos() >= expect_tpt.as_nanos());
}

#[test]
fn fmr_map_is_cheaper_than_dynamic_registration() {
    // On the Solaris/SDR profile FMR is only marginally cheaper (the
    // paper's Figure 7 finding); on the Linux/DDR profile the gap is
    // large (Figure 9). Both orderings must hold.
    fn measure(cfg: HcaConfig) -> (SimDuration, SimDuration) {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fabric = Fabric::new(&h);
        let a = host(&h, &fabric, 0, cfg);
        let buf = a.mem.alloc(128 * 1024);
        sim.block_on({
            let hca = a.hca.clone();
            let h2 = h.clone();
            async move {
                let t0 = h2.now();
                let mr = hca
                    .register(&buf, 0, 128 * 1024, Access::REMOTE_WRITE)
                    .await;
                mr.deregister().await;
                let t_dynamic = h2.now().saturating_since(t0);

                let pool = ib_verbs::FmrPool::from_config(&hca);
                let t1 = h2.now();
                let mr = pool
                    .map(&buf, 0, 128 * 1024, Access::REMOTE_WRITE)
                    .await
                    .unwrap();
                mr.deregister().await;
                let t_fmr = h2.now().saturating_since(t1);
                (t_dynamic, t_fmr)
            }
        })
    }
    let (dyn_sdr, fmr_sdr) = measure(HcaConfig::sdr());
    assert!(
        fmr_sdr < dyn_sdr,
        "SDR: FMR ({fmr_sdr}) must beat dynamic ({dyn_sdr})"
    );
    let (dyn_ddr, fmr_ddr) = measure(HcaConfig::ddr());
    assert!(
        fmr_ddr.as_nanos() * 4 < dyn_ddr.as_nanos() * 3,
        "DDR: FMR ({fmr_ddr}) should be clearly cheaper than dynamic ({dyn_ddr})"
    );
    // The relative FMR advantage is larger on the Linux/DDR profile.
    let ratio_sdr = fmr_sdr.as_nanos() as f64 / dyn_sdr.as_nanos() as f64;
    let ratio_ddr = fmr_ddr.as_nanos() as f64 / dyn_ddr.as_nanos() as f64;
    assert!(
        ratio_ddr < ratio_sdr,
        "DDR ratio {ratio_ddr:.2} should beat SDR ratio {ratio_sdr:.2}"
    );
}

#[test]
fn fmr_pool_exhaustion_and_oversize_fall_back() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, _b) = two_hosts(&h);
    let buf = a.mem.alloc(4 << 20);

    sim.block_on({
        let hca = a.hca.clone();
        let buf = buf.clone();
        async move {
            let pool = ib_verbs::FmrPool::new(&hca, 2, 1 << 20);
            // Oversize region: immediate fallback.
            let e = pool.map(&buf, 0, 2 << 20, Access::REMOTE_READ).await;
            assert!(matches!(e, Err(VerbsError::FmrUnavailable(_))));
            // Exhaust the pool.
            let m1 = pool.map(&buf, 0, 4096, Access::REMOTE_READ).await.unwrap();
            let m2 = pool
                .map(&buf, 4096, 4096, Access::REMOTE_READ)
                .await
                .unwrap();
            assert_eq!(pool.available(), 0);
            let e = pool.map(&buf, 8192, 4096, Access::REMOTE_READ).await;
            assert!(matches!(e, Err(VerbsError::FmrUnavailable(_))));
            assert_eq!(pool.fallbacks(), 2);
            // Unmapping returns entries to the pool.
            m1.deregister().await;
            m2.deregister().await;
            assert_eq!(pool.available(), 2);
            let m3 = pool.map(&buf, 8192, 4096, Access::REMOTE_READ).await;
            assert!(m3.is_ok());
            m3.unwrap().deregister().await;
        }
    });
}

#[test]
fn dropped_mr_is_counted_as_leak_and_invalidated() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);
    let buf = b.mem.alloc(4096);
    let dst = a.mem.alloc(4096);

    let comp = sim.block_on({
        let bh = b.hca.clone();
        let buf = buf.clone();
        let qa = qa.clone();
        let dst = dst.clone();
        async move {
            let mr = bh.register(&buf, 0, 4096, Access::REMOTE_READ).await;
            let rkey = mr.rkey();
            let addr = mr.addr();
            drop(mr); // leak: no deregister() call
            qa.post_rdma_read(dst, 0, addr, rkey, 64, WrId(1)).unwrap();
            qa.send_cq().next().await
        }
    });
    assert!(comp.is_err(), "dropped MR must not remain accessible");
    assert_eq!(b.hca.reg_stats().leaked_mrs, 1);
}

#[test]
fn all_physical_global_rkey_reaches_memory_without_tpt_cost() {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);

    let src = b.mem.alloc(8192);
    src.write(0, Payload::real(vec![0xAB; 128]));
    let dst = a.mem.alloc(8192);
    let g = b.hca.enable_all_physical();

    let comp = sim.block_on({
        let qa = qa.clone();
        let dst = dst.clone();
        let src = src.clone();
        async move {
            qa.post_rdma_read(dst, 0, src.addr(), g, 128, WrId(1))
                .unwrap();
            qa.send_cq().next().await
        }
    });
    assert_eq!(comp.result, Ok(128));
    assert_eq!(&dst.read(0, 128).materialize()[..], &[0xAB; 128]);
    // No dynamic registration happened on the responder.
    assert_eq!(b.hca.reg_stats().dynamic_regs, 0);
}

#[test]
fn exposure_ledger_distinguishes_designs() {
    // Read-Read style (server exposes, remote-read) accumulates
    // exposure; Read-Write style (server registers local-only for its
    // RDMA Writes) accumulates none.
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (_a, b) = two_hosts(&h);
    let buf = b.mem.alloc(1 << 20);

    sim.block_on({
        let bh = b.hca.clone();
        let h2 = h.clone();
        let buf = buf.clone();
        async move {
            // "Read-Read": exposed for 1ms.
            let mr = bh.register(&buf, 0, 1 << 20, Access::REMOTE_READ).await;
            h2.sleep(SimDuration::from_millis(1)).await;
            mr.deregister().await;
            // "Read-Write": local-only for the same duration.
            let mr = bh.register(&buf, 0, 1 << 20, Access::LOCAL).await;
            h2.sleep(SimDuration::from_millis(1)).await;
            mr.deregister().await;
        }
    });
    let rep = b.hca.exposure_report();
    assert_eq!(rep.exposures, 1, "only the remote-read reg is an exposure");
    assert!(rep.byte_ns >= (1 << 20) as u128 * 1_000_000);
    assert_eq!(rep.current_bytes, 0);
}

#[test]
fn srq_shares_buffers_across_connections() {
    // Two clients, one server SRQ: sends from both consume the shared
    // pool, in arrival order, and completions land on each QP's own
    // receive CQ.
    let mut sim = Simulation::new(51);
    let h = sim.handle();
    let fabric = Fabric::new(&h);
    let server = host(&h, &fabric, 0, HcaConfig::sdr());
    let c1 = host(&h, &fabric, 1, HcaConfig::sdr());
    let c2 = host(&h, &fabric, 2, HcaConfig::sdr());

    let (q1, s1) = connect(&c1.hca, &server.hca);
    let (q2, s2) = connect(&c2.hca, &server.hca);
    let srq = ib_verbs::Srq::new();
    s1.set_srq(srq.clone());
    s2.set_srq(srq.clone());
    // Only 3 shared buffers serve both connections.
    for i in 0..3 {
        let buf = server.mem.alloc(4096);
        srq.post_recv(buf, 0, 4096, WrId(100 + i)).unwrap();
    }
    srq.set_limit(2);

    sim.block_on({
        let s1 = s1.clone();
        let s2 = s2.clone();
        async move {
            q1.post_send(Payload::real(vec![1u8; 64]), WrId(1), false)
                .unwrap();
            q2.post_send(Payload::real(vec![2u8; 64]), WrId(2), false)
                .unwrap();
            q1.post_send(Payload::real(vec![3u8; 64]), WrId(3), false)
                .unwrap();
            // Each connection's arrivals complete on its own recv CQ.
            let a = s1.recv_cq().next().await;
            let b = s2.recv_cq().next().await;
            let c = s1.recv_cq().next().await;
            assert!(a.result.is_ok() && b.result.is_ok() && c.result.is_ok());
            assert_eq!(a.payload.unwrap().materialize()[0], 1);
            assert_eq!(b.payload.unwrap().materialize()[0], 2);
            assert_eq!(c.payload.unwrap().materialize()[0], 3);
        }
    });
    assert_eq!(srq.posted(), 0);
    assert_eq!(srq.consumed(), 3);
    assert!(srq.limit_events() >= 1, "low-water mark never tripped");
}

#[test]
fn srq_exhaustion_is_receiver_not_ready() {
    let mut sim = Simulation::new(52);
    let h = sim.handle();
    let fabric = Fabric::new(&h);
    let server = host(&h, &fabric, 0, HcaConfig::sdr());
    let c1 = host(&h, &fabric, 1, HcaConfig::sdr());
    let (q1, s1) = connect(&c1.hca, &server.hca);
    let srq = ib_verbs::Srq::new();
    s1.set_srq(srq.clone());
    // Empty SRQ: the send must fail exactly like an unposted receive.
    let comp = sim.block_on({
        let q1 = q1.clone();
        async move {
            q1.post_send(Payload::real(vec![9u8; 16]), WrId(1), true)
                .unwrap();
            q1.send_cq().next().await
        }
    });
    assert_eq!(comp.result, Err(VerbsError::ReceiverNotReady));
    assert!(q1.is_error());
}

#[test]
fn concurrent_registrations_queue_on_tpt_engine() {
    // Eight "server threads" registering concurrently serialize on the
    // single TPT engine — the contention behind Figure 7.
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let (a, _b) = two_hosts(&h);
    let cfg = *a.hca.config();

    for _ in 0..8 {
        let hca = a.hca.clone();
        let buf = a.mem.alloc(128 * 1024);
        sim.spawn(async move {
            let mr = hca.register(&buf, 0, 128 * 1024, Access::LOCAL).await;
            mr.deregister().await;
        });
    }
    sim.run();
    let serialized = (cfg.reg_cost(32) + cfg.dereg_cost(32)).as_nanos() * 8;
    assert!(
        sim.now().as_nanos() >= serialized,
        "TPT transactions must serialize: {} < {}",
        sim.now().as_nanos(),
        serialized
    );
    assert!(a.hca.tpt_engine_utilization() > 0.9);
}

#[test]
fn vectored_write_gathers_pieces_contiguously() {
    // One WQE carrying three SGEs places the pieces back to back at
    // the remote address — and rings exactly one doorbell.
    let mut sim = Simulation::new(11);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);

    let target = b.mem.alloc(8192);
    let src = a.mem.alloc(4096);
    let comp = sim.block_on({
        let ah = a.hca.clone();
        let bh = b.hca.clone();
        let target = target.clone();
        let qa = qa.clone();
        async move {
            let lmr = ah.register(&src, 0, 4096, Access::LOCAL).await;
            let mr = bh.register(&target, 0, 8192, Access::REMOTE_WRITE).await;
            let sges = vec![
                ib_verbs::Sge {
                    data: Payload::real(vec![1u8; 100]),
                    lkey: lmr.rkey(),
                },
                ib_verbs::Sge {
                    data: Payload::real(vec![2u8; 200]),
                    lkey: lmr.rkey(),
                },
                ib_verbs::Sge {
                    data: Payload::real(vec![3u8; 300]),
                    lkey: lmr.rkey(),
                },
            ];
            qa.post_rdma_write_vec(sges, mr.addr(), mr.rkey(), WrId(9), true)
                .unwrap();
            qa.send_cq().next().await
        }
    });
    assert_eq!(comp.result, Ok(600));
    let placed = target.read(0, 600).materialize();
    assert!(placed[..100].iter().all(|&x| x == 1));
    assert!(placed[100..300].iter().all(|&x| x == 2));
    assert!(placed[300..600].iter().all(|&x| x == 3));
    assert_eq!(qa.doorbells(), 1);
}

#[test]
fn sg_list_limits_are_enforced() {
    let sim = Simulation::new(12);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);
    let lkey = ib_verbs::Rkey(0x5151);
    let max = a.hca.config().max_send_sge;

    let sge = |n: usize| {
        (0..n)
            .map(|_| ib_verbs::Sge {
                data: Payload::real(vec![0u8; 8]),
                lkey,
            })
            .collect::<Vec<_>>()
    };
    assert!(matches!(
        qa.post_rdma_write_vec(sge(0), 0, lkey, WrId(1), true),
        Err(VerbsError::InvalidRequest(_))
    ));
    assert!(matches!(
        qa.post_rdma_write_vec(sge(max + 1), 0, lkey, WrId(2), true),
        Err(VerbsError::InvalidRequest(_))
    ));
    drop(sim);
    drop(b);
}

#[test]
fn all_physical_refuses_local_scatter_gather() {
    // The global steering tag addresses memory by physical run; the
    // HCA cannot gather across runs in one WQE (paper §4.3). A
    // multi-SGE post whose entries carry the global tag must fail with
    // a local protection error before anything reaches the wire, while
    // a single all-physical SGE per WQE remains legal.
    let mut sim = Simulation::new(13);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);
    let global = a.hca.enable_all_physical();

    let target = b.mem.alloc(4096);
    let comp = sim.block_on({
        let bh = b.hca.clone();
        let target = target.clone();
        let qa = qa.clone();
        async move {
            let mr = bh.register(&target, 0, 4096, Access::REMOTE_WRITE).await;
            let two = vec![
                ib_verbs::Sge {
                    data: Payload::real(vec![4u8; 64]),
                    lkey: global,
                },
                ib_verbs::Sge {
                    data: Payload::real(vec![5u8; 64]),
                    lkey: global,
                },
            ];
            let err = qa
                .post_rdma_write_vec(two, mr.addr(), mr.rkey(), WrId(1), true)
                .unwrap_err();
            assert!(matches!(err, VerbsError::LocalProtection(_)), "{err:?}");
            assert!(!qa.is_error(), "a refused post must not tear down the QP");

            // One physical run per WQE is the legal all-physical shape.
            let one = vec![ib_verbs::Sge {
                data: Payload::real(vec![6u8; 64]),
                lkey: global,
            }];
            qa.post_rdma_write_vec(one, mr.addr(), mr.rkey(), WrId(2), true)
                .unwrap();
            qa.send_cq().next().await
        }
    });
    assert_eq!(comp.result, Ok(64));
    assert_eq!(&target.read(0, 64).materialize()[..], &[6u8; 64]);
}

#[test]
fn doorbell_batching_rings_once_per_batch() {
    let mut sim = Simulation::new(14);
    let h = sim.handle();
    let (a, b) = two_hosts(&h);
    let (qa, _qb) = connect(&a.hca, &b.hca);
    qa.set_doorbell_batch(4);

    let target = b.mem.alloc(64 * 1024);
    sim.block_on({
        let bh = b.hca.clone();
        let target = target.clone();
        let qa = qa.clone();
        async move {
            let mr = bh
                .register(&target, 0, 64 * 1024, Access::REMOTE_WRITE)
                .await;
            // Four posts fill the batch: the doorbell rings itself.
            for i in 0..4u64 {
                qa.post_rdma_write(
                    Payload::synthetic(3, 1024),
                    mr.addr() + i * 1024,
                    mr.rkey(),
                    WrId(i),
                    true,
                )
                .unwrap();
            }
            for _ in 0..4 {
                assert_eq!(qa.send_cq().next().await.result, Ok(1024));
            }
            assert_eq!(qa.doorbells(), 1, "full batch is one doorbell");

            // A partial batch stays pending until an explicit flush —
            // the operation-boundary contract for batched callers.
            for i in 4..6u64 {
                qa.post_rdma_write(
                    Payload::synthetic(3, 1024),
                    mr.addr() + i * 1024,
                    mr.rkey(),
                    WrId(i),
                    true,
                )
                .unwrap();
            }
            assert_eq!(qa.doorbells(), 1, "partial batch must not ring");
            qa.flush();
            for _ in 0..2 {
                assert_eq!(qa.send_cq().next().await.result, Ok(1024));
            }
            assert_eq!(qa.doorbells(), 2);
        }
    });
    assert_eq!(a.hca.doorbells(), 2);
}
