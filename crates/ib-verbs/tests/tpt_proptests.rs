//! Model-based property tests for the Translation & Protection Table:
//! an arbitrary interleaving of register / invalidate / access-check
//! operations must agree with a naive reference model, and protection
//! must never leak across invalidation.

use proptest::prelude::*;
use std::collections::HashMap;

use ib_verbs::tpt::{RemoteOp, Tpt};
use ib_verbs::{Access, HostMem, NodeId, PhysLayout, Rkey};
use sim_core::{SimRng, SimTime};

#[derive(Clone, Debug)]
enum Op {
    Register {
        len: u64,
        read: bool,
        write: bool,
    },
    Invalidate {
        slot: usize,
    },
    Check {
        slot: usize,
        op_is_read: bool,
        off: u64,
        len: u64,
    },
    CheckBogus {
        key: u32,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..16384, any::<bool>(), any::<bool>()).prop_map(|(len, read, write)| Op::Register {
            len,
            read,
            write
        }),
        (0usize..8).prop_map(|slot| Op::Invalidate { slot }),
        (0usize..8, any::<bool>(), 0u64..20000, 1u64..4096).prop_map(
            |(slot, op_is_read, off, len)| Op::Check {
                slot,
                op_is_read,
                off,
                len
            }
        ),
        any::<u32>().prop_map(|key| Op::CheckBogus { key }),
    ]
}

#[derive(Clone)]
struct ModelEntry {
    base: u64,
    len: u64,
    read: bool,
    write: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tpt_agrees_with_reference_model(ops in proptest::collection::vec(arb_op(), 1..128)) {
        let mem = HostMem::new(NodeId(0), PhysLayout::default(), SimRng::new(11));
        let mut tpt = Tpt::new(SimRng::new(13));
        let t = SimTime::ZERO;
        // Live registrations in creation order (slots index into this).
        let mut live: Vec<(Rkey, ModelEntry)> = Vec::new();
        let mut model: HashMap<u32, ModelEntry> = HashMap::new();

        for op in ops {
            match op {
                Op::Register { len, read, write } => {
                    let buf = mem.alloc(len);
                    let mut access = Access::LOCAL;
                    if read {
                        access = access | Access::REMOTE_READ;
                    }
                    if write {
                        access = access | Access::REMOTE_WRITE;
                    }
                    let rkey = tpt.insert(buf.clone(), buf.addr(), len, access, t);
                    prop_assert!(!model.contains_key(&rkey.0), "steering tag reuse");
                    let entry = ModelEntry { base: buf.addr(), len, read, write };
                    model.insert(rkey.0, entry.clone());
                    live.push((rkey, entry));
                }
                Op::Invalidate { slot } => {
                    if live.is_empty() { continue; }
                    let (rkey, _) = live.remove(slot % live.len());
                    prop_assert!(tpt.invalidate(rkey, t).is_some());
                    model.remove(&rkey.0);
                }
                Op::Check { slot, op_is_read, off, len } => {
                    if live.is_empty() { continue; }
                    let (rkey, entry) = live[slot % live.len()].clone();
                    let addr = entry.base.wrapping_add(off);
                    let op = if op_is_read { RemoteOp::Read } else { RemoteOp::Write };
                    let got = tpt
                        .check_remote(rkey, addr, len, op, t, |_, _| None)
                        .is_ok();
                    let in_bounds = off + len <= entry.len;
                    let allowed = if op_is_read { entry.read } else { entry.write };
                    prop_assert_eq!(got, in_bounds && allowed,
                        "rkey={:?} off={} len={} entry_len={} read={} write={} op_read={}",
                        rkey, off, len, entry.len, entry.read, entry.write, op_is_read);
                }
                Op::CheckBogus { key } => {
                    // A key that is not currently live must always fail.
                    if !model.contains_key(&key) {
                        let r = tpt.check_remote(
                            Rkey(key), 0x1000_0000, 1, RemoteOp::Read, t, |_, _| None);
                        prop_assert!(r.is_err(), "bogus key {key:#x} accepted");
                    }
                }
            }
        }

        // Exposure accounting: current_bytes equals the sum of live
        // remotely-exposed registrations.
        let expect: u64 = model
            .values()
            .filter(|e| e.read || e.write)
            .map(|e| e.len)
            .sum();
        prop_assert_eq!(tpt.exposure_report(t).current_bytes, expect);
    }

    /// After invalidation a steering tag never grants access again,
    /// even to formerly valid ranges.
    #[test]
    fn invalidated_tags_stay_dead(len in 1u64..65536, probes in 1usize..16) {
        let mem = HostMem::new(NodeId(0), PhysLayout::default(), SimRng::new(3));
        let mut tpt = Tpt::new(SimRng::new(5));
        let t = SimTime::ZERO;
        let buf = mem.alloc(len);
        let rkey = tpt.insert(
            buf.clone(), buf.addr(), len,
            Access::REMOTE_READ | Access::REMOTE_WRITE, t);
        prop_assert!(tpt
            .check_remote(rkey, buf.addr(), 1, RemoteOp::Read, t, |_, _| None)
            .is_ok());
        tpt.invalidate(rkey, t).unwrap();
        for i in 0..probes {
            let off = (i as u64 * 37) % len;
            prop_assert!(tpt
                .check_remote(rkey, buf.addr() + off, 1, RemoteOp::Read, t, |_, _| None)
                .is_err());
        }
        prop_assert_eq!(tpt.exposure_report(t).violations as usize, probes);
    }
}
