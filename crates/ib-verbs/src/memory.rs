//! Simulated host memory: virtual address allocation, buffers, and the
//! physical-page layout that matters for all-physical registration.
//!
//! Each host owns a [`HostMem`]: a bump allocator of virtual addresses
//! and a set of live [`Buffer`]s. A buffer is a contiguous *virtual*
//! range; physically it is a sequence of runs of contiguous pages whose
//! lengths the allocator draws from the host profile. With normal
//! (virtual) registration one steering tag covers the whole buffer; in
//! all-physical mode DMA must follow physical runs, so a transfer from
//! the buffer fans out into one segment per run — exactly the effect
//! that degrades NFS WRITE in the paper's Figure 9(b).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::{Rc, Weak};

use sim_core::{Payload, SimRng};

use crate::types::NodeId;
use sim_core::ExtentMap;

/// Default small page size (bytes).
pub const PAGE_SIZE: u64 = 4096;

struct BufferInner {
    data: RefCell<ExtentMap>,
    /// Byte lengths of the physically-contiguous runs making up the
    /// buffer, in order. Sums to `len` (rounded up to pages).
    phys_runs: Vec<u64>,
}

/// A virtually contiguous, physically fragmented memory buffer.
#[derive(Clone)]
pub struct Buffer {
    // Debug impl below keeps output compact (no content dump).
    inner: Rc<BufferInner>,
    host: NodeId,
    addr: u64,
    len: u64,
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Buffer(host={}, addr={:#x}, len={})",
            self.host.0, self.addr, self.len
        )
    }
}

impl Buffer {
    /// Host that owns this memory.
    pub fn host(&self) -> NodeId {
        self.host
    }

    /// Starting virtual address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 4 KiB pages spanned (what pinning pays for).
    pub fn pages(&self) -> u64 {
        self.len.div_ceil(PAGE_SIZE)
    }

    /// Read `len` bytes at byte `offset` within the buffer.
    pub fn read(&self, offset: u64, len: u64) -> Payload {
        assert!(offset + len <= self.len, "buffer read out of bounds");
        self.inner.data.borrow().read(offset, len)
    }

    /// Read `len` bytes at byte `offset` as a scatter/gather list: one
    /// piece per stored extent, no flattening. This is the receive-side
    /// scatter primitive — data RDMA-Read in as separate chunks comes
    /// back out as the same refcounted pieces, ready to land in
    /// page-cache pages without a pull-up copy.
    pub fn read_sg(&self, offset: u64, len: u64) -> sim_core::SgList {
        assert!(offset + len <= self.len, "buffer read out of bounds");
        sim_core::SgList::from_pieces(self.inner.data.borrow().read_sg(offset, len))
    }

    /// Write a payload at byte `offset` within the buffer.
    pub fn write(&self, offset: u64, data: Payload) {
        assert!(
            offset + data.len() <= self.len,
            "buffer write out of bounds ({} + {} > {})",
            offset,
            data.len(),
            self.len
        );
        self.inner.data.borrow_mut().write(offset, data);
    }

    /// The physically contiguous runs overlapping `[offset, offset+len)`,
    /// as `(buffer_offset, run_len)` pairs. All-physical registration
    /// must emit one RDMA segment per returned run.
    pub fn phys_runs(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        assert!(offset + len <= self.len, "phys_runs out of bounds");
        let mut out = Vec::new();
        let mut run_start = 0u64;
        for &run_len in &self.inner.phys_runs {
            let run_end = run_start + run_len;
            let lo = offset.max(run_start);
            let hi = (offset + len).min(run_end);
            if lo < hi {
                out.push((lo, hi - lo));
            }
            run_start = run_end;
            if run_start >= offset + len {
                break;
            }
        }
        out
    }

    /// True if `[addr, addr+len)` (virtual addresses) lies inside this
    /// buffer.
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.addr && addr + len <= self.addr + self.len
    }

    /// Translate a virtual address to a byte offset within the buffer.
    pub fn offset_of(&self, addr: u64) -> u64 {
        debug_assert!(addr >= self.addr);
        addr - self.addr
    }
}

/// Physical-layout policy for buffer allocation.
#[derive(Clone, Copy, Debug)]
pub struct PhysLayout {
    /// Mean length of a physically contiguous run, bytes. Real
    /// mid-2000s kernels allocating page-at-a-time produce short runs;
    /// slab buffers are more contiguous.
    pub mean_run_bytes: u64,
}

impl Default for PhysLayout {
    fn default() -> Self {
        PhysLayout {
            mean_run_bytes: 64 * 1024,
        }
    }
}

/// Per-host memory manager.
pub struct HostMem {
    host: NodeId,
    next_addr: Cell<u64>,
    layout: PhysLayout,
    rng: RefCell<SimRng>,
    allocated: Cell<u64>,
    /// Live buffers by start address, for global-steering-tag lookup.
    registry: RefCell<BTreeMap<u64, (u64, Weak<BufferInner>)>>,
}

impl HostMem {
    /// Create the memory manager for `host`.
    pub fn new(host: NodeId, layout: PhysLayout, rng: SimRng) -> Self {
        HostMem {
            host,
            // Start away from zero so a zero address is always a bug.
            next_addr: Cell::new(0x1000_0000),
            layout,
            rng: RefCell::new(rng),
            allocated: Cell::new(0),
            registry: RefCell::new(BTreeMap::new()),
        }
    }

    /// Allocate a buffer of `len` bytes.
    pub fn alloc(&self, len: u64) -> Buffer {
        assert!(len > 0, "zero-length allocation");
        let addr = self.next_addr.get();
        // Page-align the next allocation.
        let span = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.next_addr.set(addr + span + PAGE_SIZE); // guard page
        self.allocated.set(self.allocated.get() + span);

        let phys_runs = self.draw_runs(span);
        let inner = Rc::new(BufferInner {
            data: RefCell::new(ExtentMap::new()),
            phys_runs,
        });
        self.registry
            .borrow_mut()
            .insert(addr, (len, Rc::downgrade(&inner)));
        Buffer {
            inner,
            host: self.host,
            addr,
            len,
        }
    }

    /// Resolve a virtual address range to a live buffer (the view the
    /// privileged all-physical steering tag grants). Returns `None` for
    /// unmapped or freed memory, or ranges spanning buffer boundaries.
    pub fn lookup(&self, addr: u64, len: u64) -> Option<Buffer> {
        let registry = self.registry.borrow();
        let (&start, (blen, weak)) = registry.range(..=addr).next_back()?;
        if addr + len > start + blen {
            return None;
        }
        let inner = weak.upgrade()?;
        Some(Buffer {
            inner,
            host: self.host,
            addr: start,
            len: *blen,
        })
    }

    /// Allocate and fill with a payload.
    pub fn alloc_from(&self, data: Payload) -> Buffer {
        let b = self.alloc(data.len().max(1));
        if !data.is_empty() {
            b.write(0, data);
        }
        b
    }

    /// Total bytes allocated so far (diagnostic).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated.get()
    }

    fn draw_runs(&self, span: u64) -> Vec<u64> {
        let mut rng = self.rng.borrow_mut();
        let mut runs = Vec::new();
        let mut left = span;
        while left > 0 {
            // Geometric-ish run lengths in whole pages with the
            // configured mean, at least one page.
            let mean_pages = (self.layout.mean_run_bytes / PAGE_SIZE).max(1);
            let pages = 1 + rng.gen_range(2 * mean_pages);
            let run = (pages * PAGE_SIZE).min(left);
            runs.push(run);
            left -= run;
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> HostMem {
        HostMem::new(NodeId(0), PhysLayout::default(), SimRng::new(7))
    }

    #[test]
    fn alloc_rw_roundtrip() {
        let m = mem();
        let b = m.alloc(1000);
        b.write(10, Payload::real(vec![5; 100]));
        assert_eq!(&b.read(10, 100).materialize()[..], &[5; 100]);
        assert_eq!(&b.read(0, 10).materialize()[..], &[0; 10]);
    }

    #[test]
    fn distinct_buffers_do_not_overlap() {
        let m = mem();
        let a = m.alloc(4096);
        let b = m.alloc(4096);
        assert!(a.addr() + a.len() <= b.addr());
        a.write(0, Payload::real(vec![1; 16]));
        assert_eq!(&b.read(0, 16).materialize()[..], &[0; 16]);
    }

    #[test]
    fn phys_runs_cover_range_exactly() {
        let m = mem();
        let b = m.alloc(1 << 20);
        let runs = b.phys_runs(0, b.len());
        let total: u64 = runs.iter().map(|(_, l)| l).sum();
        assert_eq!(total, b.len());
        // Runs are in order and adjacent.
        let mut expect = 0;
        for (off, len) in runs {
            assert_eq!(off, expect);
            expect = off + len;
        }
    }

    #[test]
    fn phys_runs_subrange() {
        let m = mem();
        let b = m.alloc(1 << 20);
        let runs = b.phys_runs(100_000, 300_000);
        let total: u64 = runs.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 300_000);
        assert_eq!(runs.first().unwrap().0, 100_000);
    }

    #[test]
    fn contains_and_offset() {
        let m = mem();
        let b = m.alloc(4096);
        assert!(b.contains(b.addr(), 4096));
        assert!(b.contains(b.addr() + 100, 100));
        assert!(!b.contains(b.addr() + 4000, 200));
        assert_eq!(b.offset_of(b.addr() + 7), 7);
    }

    #[test]
    fn pages_rounds_up() {
        let m = mem();
        assert_eq!(m.alloc(1).pages(), 1);
        assert_eq!(m.alloc(4096).pages(), 1);
        assert_eq!(m.alloc(4097).pages(), 2);
    }

    #[test]
    fn lookup_resolves_live_buffers() {
        let m = mem();
        let a = m.alloc(4096);
        let b = m.alloc(8192);
        let hit = m.lookup(b.addr() + 100, 200).unwrap();
        assert_eq!(hit.addr(), b.addr());
        assert!(m.lookup(a.addr(), 4096).is_some());
        // Range spanning past the buffer end fails.
        assert!(m.lookup(b.addr() + 8000, 400).is_none());
        // Freed buffers are unreachable.
        drop(a);
        assert!(m.lookup(b.addr(), 1).is_some());
        // (a's address may still be in the registry but can't upgrade)
    }

    #[test]
    fn lookup_after_free_fails() {
        let m = mem();
        let a = m.alloc(4096);
        let addr = a.addr();
        drop(a);
        assert!(m.lookup(addr, 16).is_none());
    }

    #[test]
    fn contiguous_layout_gives_few_runs() {
        let m = HostMem::new(
            NodeId(0),
            PhysLayout {
                mean_run_bytes: 1 << 30,
            },
            SimRng::new(7),
        );
        let b = m.alloc(1 << 20);
        assert!(b.phys_runs(0, b.len()).len() <= 2);
    }
}
