//! The Host Channel Adapter: TPT, registration engine, QP management
//! and the inbound-message dispatcher.
//!
//! Cost structure (paper §4.3): a dynamic registration pins pages on
//! the host CPU, then performs one serialized transaction against the
//! HCA's TPT engine across the I/O bus; deregistration reverses both.
//! The TPT engine is a single-slot [`Resource`], so concurrent
//! registrations from many server threads queue — this contention is
//! the dominant bottleneck the paper's registration strategies attack.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use sim_core::sync::{Receiver, Sender};
use sim_core::{Cpu, Payload, Resource, Sim, SimDuration};

use crate::config::HcaConfig;
use crate::cq::{Completion, Cq};
use crate::fabric::Fabric;
use crate::memory::{Buffer, HostMem};
use crate::qp::{sender_loop, Qp, WireMsg};
use crate::tpt::{ExposureReport, RemoteOp, Tpt};
use crate::types::{Access, NodeId, Opcode, QpNum, Rkey, VerbsError};

/// Registration statistics, for tests and the experiment reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegStats {
    /// Dynamic registrations performed.
    pub dynamic_regs: u64,
    /// Dynamic deregistrations performed.
    pub deregs: u64,
    /// FMR map operations performed.
    pub fmr_maps: u64,
    /// FMR unmap operations performed.
    pub fmr_unmaps: u64,
    /// Memory regions dropped while still valid (leaks — each one is a
    /// protocol bug or an injected failure).
    pub leaked_mrs: u64,
    /// Pages pinned (all modes).
    pub pages_pinned: u64,
}

pub(crate) struct HcaInner {
    pub(crate) sim: Sim,
    pub(crate) node: NodeId,
    pub(crate) cfg: HcaConfig,
    pub(crate) cpu: Cpu,
    pub(crate) mem: Rc<HostMem>,
    pub(crate) tpt: RefCell<Tpt>,
    /// The serialized TPT-update engine (one I/O bus transaction at a
    /// time).
    pub(crate) tpt_engine: Resource,
    pub(crate) fabric: Fabric<WireMsg>,
    pub(crate) qps: RefCell<HashMap<u32, Qp>>,
    next_qpn: Cell<u32>,
    pub(crate) stats: RefCell<RegStats>,
    /// Mirror of the TPT's global (all-physical) steering tag, shared
    /// with every QP so post-time SG checks see enablement regardless
    /// of ordering between `enable_all_physical` and `connect`.
    global_rkey_cell: Rc<Cell<Option<Rkey>>>,
    /// Placement watches: per-rkey subscribers notified `(raddr, len)`
    /// the instant an inbound RDMA Write lands in that region. Models
    /// a host consumer polling its own memory for one-sided arrivals
    /// (a replication log ring) without burning simulated CPU — the
    /// poll hit coincides with DMA placement, which is exactly the
    /// ordering a real poller observes.
    watches: RefCell<HashMap<Rkey, Sender<(u64, u64)>>>,
}

/// Handle to a simulated HCA.
#[derive(Clone)]
pub struct Hca {
    pub(crate) inner: Rc<HcaInner>,
}

impl Hca {
    /// Create an HCA for `node`, attach it to `fabric` and start its
    /// inbound dispatcher.
    pub fn new(
        sim: &Sim,
        node: NodeId,
        cfg: HcaConfig,
        cpu: Cpu,
        mem: Rc<HostMem>,
        fabric: &Fabric<WireMsg>,
    ) -> Hca {
        let inbox = fabric.attach(node, cfg.link_bandwidth, cfg.link_latency);
        // The security ledger's violation/revocation counters feed the
        // shared `tpt.*` registry series from day one, so chaos and
        // adversary snapshots always carry them.
        let mut tpt = Tpt::new(sim.fork_rng());
        tpt.bind_metrics(&sim.metrics());
        let hca = Hca {
            inner: Rc::new(HcaInner {
                sim: sim.clone(),
                node,
                cfg,
                cpu,
                mem,
                tpt: RefCell::new(tpt),
                tpt_engine: Resource::new(sim, format!("hca{}.tpt", node.0), 1),
                fabric: fabric.clone(),
                qps: RefCell::new(HashMap::new()),
                next_qpn: Cell::new(1),
                stats: RefCell::new(RegStats::default()),
                global_rkey_cell: Rc::new(Cell::new(None)),
                watches: RefCell::new(HashMap::new()),
            }),
        };
        let h2 = hca.clone();
        sim.spawn(async move { dispatch_loop(h2, inbox).await });
        hca
    }

    /// The node this HCA serves.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The simulation this HCA lives in (for spans and metrics).
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Configuration in force.
    pub fn config(&self) -> &HcaConfig {
        &self.inner.cfg
    }

    /// The host CPU this HCA charges driver work to.
    pub fn cpu(&self) -> &Cpu {
        &self.inner.cpu
    }

    /// The host memory manager.
    pub fn mem(&self) -> &Rc<HostMem> {
        &self.inner.mem
    }

    /// The fabric this HCA is attached to.
    pub fn fabric(&self) -> &Fabric<WireMsg> {
        &self.inner.fabric
    }

    /// Registration statistics snapshot.
    pub fn reg_stats(&self) -> RegStats {
        *self.inner.stats.borrow()
    }

    /// Security ledger snapshot.
    pub fn exposure_report(&self) -> ExposureReport {
        self.inner
            .tpt
            .borrow()
            .exposure_report(self.inner.sim.now())
    }

    /// Probability a uniformly guessed steering tag grants a read.
    pub fn guess_hit_probability(&self) -> f64 {
        self.inner.tpt.borrow().guess_hit_probability()
    }

    /// Live TPT entries.
    pub fn tpt_entries(&self) -> usize {
        self.inner.tpt.borrow().len()
    }

    /// Utilization of the TPT engine since its window opened.
    pub fn tpt_engine_utilization(&self) -> f64 {
        self.inner.tpt_engine.utilization()
    }

    /// Reset per-run accounting (TPT engine window).
    pub fn reset_accounting(&self) {
        self.inner.tpt_engine.reset_accounting();
    }

    // -- Registration --------------------------------------------------

    /// Dynamically register `[offset, offset+len)` of `buffer`: pin the
    /// pages (host CPU) and run one TPT transaction (serialized engine).
    pub async fn register(
        &self,
        buffer: &Buffer,
        offset: u64,
        len: u64,
        access: Access,
    ) -> crate::mr::Mr {
        assert!(offset + len <= buffer.len(), "register out of bounds");
        let _span = self.inner.sim.span("hca", "reg");
        let pages = len.div_ceil(crate::memory::PAGE_SIZE).max(1);
        self.pin_pages(pages).await;
        self.inner
            .tpt_engine
            .use_for(self.inner.cfg.reg_cost(pages))
            .await;
        let base = buffer.addr() + offset;
        let rkey = self.inner.tpt.borrow_mut().insert(
            buffer.clone(),
            base,
            len,
            access,
            self.inner.sim.now(),
        );
        self.inner.stats.borrow_mut().dynamic_regs += 1;
        self.inner.sim.trace("reg", || {
            format!(
                "node{} register {len}B ({pages} pages) -> {rkey:?} exposed={}",
                self.inner.node.0,
                access.remotely_exposed()
            )
        });
        crate::mr::Mr::new_dynamic(self.clone(), rkey, buffer.clone(), base, len, access, pages)
    }

    /// Charge the CPU for pinning `pages` pages.
    pub async fn pin_pages(&self, pages: u64) {
        self.inner.stats.borrow_mut().pages_pinned += pages;
        self.inner
            .cpu
            .execute(SimDuration::from_nanos(
                self.inner.cfg.pin_per_page.as_nanos() * pages,
            ))
            .await;
    }

    /// Charge the CPU for unpinning `pages` pages (half the pin cost).
    pub async fn unpin_pages(&self, pages: u64) {
        self.inner
            .cpu
            .execute(SimDuration::from_nanos(
                self.inner.cfg.pin_per_page.as_nanos() * pages / 2,
            ))
            .await;
    }

    /// Record a forced teardown of a registration that has no TPT entry
    /// of its own (all-physical pinnings ride the global steering tag).
    /// Keeps the revocation ledger honest for every strategy.
    pub fn note_forced_revocation(&self) {
        self.inner.tpt.borrow_mut().note_revocation();
    }

    /// Enable the privileged all-physical (global) steering tag.
    /// Kernel consumers only (paper §4.3, "All Physical Memory
    /// Registration").
    pub fn enable_all_physical(&self) -> Rkey {
        let rkey = self.inner.tpt.borrow_mut().enable_global_rkey();
        self.inner.global_rkey_cell.set(Some(rkey));
        rkey
    }

    /// The global steering tag, if enabled.
    pub fn global_rkey(&self) -> Option<Rkey> {
        self.inner.tpt.borrow().global_rkey()
    }

    // -- Queue pairs ----------------------------------------------------

    pub(crate) fn alloc_qp(&self, send_cq: Cq, recv_cq: Cq) -> (Qp, Receiver<Vec<crate::qp::Wqe>>) {
        let qpn = QpNum(self.inner.next_qpn.get());
        self.inner.next_qpn.set(qpn.0 + 1);
        let (qp, wqe_rx) = Qp::new(
            self.inner.sim.clone(),
            self.inner.cfg,
            self.inner.node,
            qpn,
            self.inner.fabric.clone(),
            send_cq,
            recv_cq,
            self.inner.global_rkey_cell.clone(),
        );
        qp.bind_doorbell_metric(self.inner.sim.metrics().counter("hca.doorbells"));
        self.inner.qps.borrow_mut().insert(qpn.0, qp.clone());
        (qp, wqe_rx)
    }

    /// A fresh CQ on this HCA's host CPU, honoring the configured
    /// interrupt moderation and bound to the shared `cq.*` metrics.
    pub(crate) fn make_cq(&self) -> Cq {
        let cq = Cq::with_coalescing(
            self.inner.cpu.clone(),
            &self.inner.sim,
            self.inner.cfg.cq_coalesce_count,
            self.inner.cfg.cq_coalesce_delay,
        );
        let metrics = self.inner.sim.metrics();
        cq.bind_metrics(
            metrics.counter("cq.interrupts"),
            metrics.counter("cq.coalesced"),
        );
        cq
    }

    /// Total doorbells rung across this HCA's QPs.
    pub fn doorbells(&self) -> u64 {
        self.inner
            .qps
            .borrow()
            .values()
            .map(|q| q.doorbells())
            .sum()
    }

    /// Total CQ interrupts taken across this HCA's QPs' completion
    /// queues (each distinct CQ counted once, even when QPs share one).
    pub fn cq_interrupts(&self) -> u64 {
        self.fold_cqs(|cq| cq.interrupts())
    }

    /// Total completions that shared an interrupt across this HCA's
    /// completion queues.
    pub fn cq_coalesced(&self) -> u64 {
        self.fold_cqs(|cq| cq.coalesced())
    }

    /// Subscribe to RDMA Write placements into the region behind
    /// `rkey`: every accepted inbound Write sends `(raddr, len)` on
    /// `tx` at placement time. One subscriber per rkey (a later call
    /// replaces the earlier one); dropping the paired receiver simply
    /// discards notifications. This is how a replication log ring's
    /// owner learns that the primary deposited a record without any
    /// two-sided traffic.
    pub fn watch_writes(&self, rkey: Rkey, tx: Sender<(u64, u64)>) {
        self.inner.watches.borrow_mut().insert(rkey, tx);
    }

    /// Remove a placement watch installed by [`Hca::watch_writes`].
    pub fn unwatch_writes(&self, rkey: Rkey) {
        self.inner.watches.borrow_mut().remove(&rkey);
    }

    fn fold_cqs(&self, f: impl Fn(&Cq) -> u64) -> u64 {
        let mut seen = Vec::new();
        let mut total = 0;
        for qp in self.inner.qps.borrow().values() {
            for cq in [qp.send_cq(), qp.recv_cq()] {
                let id = cq.id();
                if !seen.contains(&id) {
                    seen.push(id);
                    total += f(cq);
                }
            }
        }
        total
    }
}

/// Create and connect a reliable-connection queue pair between two
/// HCAs. Each side gets fresh send/recv CQs bound to its host CPU,
/// with the interrupt moderation its [`HcaConfig`] asks for.
pub fn connect(a: &Hca, b: &Hca) -> (Qp, Qp) {
    let (qa, rx_a) = a.alloc_qp(a.make_cq(), a.make_cq());
    let (qb, rx_b) = b.alloc_qp(b.make_cq(), b.make_cq());
    qa.inner.peer_node.set(b.inner.node);
    qa.inner.peer_qpn.set(qb.qpn());
    qa.inner.connected.set(true);
    qb.inner.peer_node.set(a.inner.node);
    qb.inner.peer_qpn.set(qa.qpn());
    qb.inner.connected.set(true);
    a.inner.sim.spawn(sender_loop(qa.inner.clone(), rx_a));
    b.inner.sim.spawn(sender_loop(qb.inner.clone(), rx_b));
    (qa, qb)
}

/// Inbound message dispatcher: the responder side of every operation.
async fn dispatch_loop(hca: Hca, mut inbox: Receiver<WireMsg>) {
    while let Ok(msg) = inbox.recv().await {
        match msg {
            WireMsg::Send { dst_qpn, data, ack } => {
                let qp = hca.inner.qps.borrow().get(&dst_qpn.0).cloned();
                let Some(qp) = qp else {
                    ack.send(Err(VerbsError::NotConnected));
                    continue;
                };
                let posted = qp.take_recv();
                let Some(recv) = posted else {
                    qp.inner.set_error();
                    ack.send(Err(VerbsError::ReceiverNotReady));
                    continue;
                };
                if data.len() > recv.len {
                    qp.inner.set_error();
                    ack.send(Err(VerbsError::ReceiveTooSmall {
                        needed: data.len(),
                        have: recv.len,
                    }));
                    continue;
                }
                // DMA placement into the posted buffer: no host CPU.
                recv.buffer.write(recv.offset, data.clone());
                qp.inner.recv_cq.push(Completion {
                    wr_id: recv.wr_id,
                    opcode: Opcode::Recv,
                    result: Ok(data.len()),
                    payload: Some(data),
                });
                ack.send(Ok(()));
            }
            WireMsg::Write {
                dst_qpn,
                raddr,
                rkey,
                data,
                ack,
            } => {
                let mem = hca.inner.mem.clone();
                let total: u64 = data.iter().map(|p| p.len()).sum();
                // One protection check covers the whole gathered range;
                // the pieces then DMA back to back, each placed without
                // flattening (zero-copy on both ends).
                let check = hca.inner.tpt.borrow_mut().check_remote(
                    rkey,
                    raddr,
                    total,
                    RemoteOp::Write,
                    hca.inner.sim.now(),
                    move |a, l| mem.lookup(a, l),
                );
                match check {
                    Ok((buffer, off)) => {
                        let mut at = off;
                        for piece in data {
                            let n = piece.len();
                            buffer.write(at, piece);
                            at += n;
                        }
                        // Placement watch: wake any local consumer
                        // polling this region (see `watch_writes`).
                        if !hca.inner.watches.borrow().is_empty() {
                            if let Some(tx) = hca.inner.watches.borrow().get(&rkey) {
                                // A gone consumer just stops polling.
                                let _ = tx.send((raddr, total));
                            }
                        }
                        ack.send(Ok(()));
                    }
                    Err(e) => {
                        if let Some(qp) = hca.inner.qps.borrow().get(&dst_qpn.0) {
                            qp.inner.set_error();
                        }
                        ack.send(Err(e));
                    }
                }
            }
            WireMsg::ReadReq {
                dst_qpn,
                raddr,
                rkey,
                len,
                resp,
            } => {
                let mem = hca.inner.mem.clone();
                let check = hca.inner.tpt.borrow_mut().check_remote(
                    rkey,
                    raddr,
                    len,
                    RemoteOp::Read,
                    hca.inner.sim.now(),
                    move |a, l| mem.lookup(a, l),
                );
                let qp = hca.inner.qps.borrow().get(&dst_qpn.0).cloned();
                match (check, qp) {
                    (Ok((buffer, off)), Some(qp)) => {
                        // Service the read concurrently, bounded by IRD.
                        let hca2 = hca.clone();
                        hca.inner.sim.spawn(async move {
                            let _slot = qp.inner.read_engine.acquire().await;
                            hca2.inner.sim.sleep(hca2.inner.cfg.read_turnaround).await;
                            let payload = buffer.read(off, len);
                            let requester = qp.inner.peer_node.get();
                            hca2.inner
                                .fabric
                                .raw_transfer(
                                    hca2.inner.node,
                                    requester,
                                    hca2.inner.cfg.wire_header_bytes + len,
                                )
                                .await;
                            resp.send(Ok(payload));
                        });
                    }
                    (Err(e), qp) => {
                        if let Some(qp) = qp {
                            qp.inner.set_error();
                        }
                        // Nak propagation delay.
                        let hca2 = hca.clone();
                        hca.inner.sim.spawn(async move {
                            hca2.inner.sim.sleep(hca2.inner.cfg.link_latency).await;
                            resp.send(Err(e));
                        });
                    }
                    (Ok(_), None) => {
                        resp.send(Err(VerbsError::NotConnected));
                    }
                }
            }
        }
    }
}

/// Convenience: materialize a payload for assertions in tests.
pub fn payload_bytes(p: &Payload) -> Vec<u8> {
    p.materialize().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PhysLayout;
    use crate::qp::sender_loop;
    use crate::types::{Access, NodeId, WrId};
    use sim_core::{CpuCosts, Simulation};

    /// Satellite 6 determinism guarantee: when several QPs share one
    /// CQ, coalesced completions drain strictly in CQ push order, each
    /// QP's completions stay in its own post order, and the whole drain
    /// sequence (and interrupt count) is identical for identical seeds.
    #[test]
    fn shared_cq_drains_coalesced_completions_in_post_order() {
        let run = |seed: u64| -> (Vec<u64>, u64) {
            let mut sim = Simulation::new(seed);
            let h = sim.handle();
            let fabric = Fabric::new(&h);
            let mut cfg = HcaConfig::sdr();
            cfg.cq_coalesce_count = 4;
            cfg.cq_coalesce_delay = SimDuration::from_micros(100);
            let mk = |id: u32| {
                let node = NodeId(id);
                let cpu = Cpu::new(&h, format!("cpu{id}"), 2, CpuCosts::default());
                let mem = Rc::new(HostMem::new(node, PhysLayout::default(), h.fork_rng()));
                (Hca::new(&h, node, cfg, cpu, mem.clone(), &fabric), mem)
            };
            let (a, _amem) = mk(0);
            let (b, bmem) = mk(1);
            // Two requester QPs on `a` share one send CQ.
            let shared = a.make_cq();
            let (q1, rx1) = a.alloc_qp(shared.clone(), a.make_cq());
            let (q2, rx2) = a.alloc_qp(shared.clone(), a.make_cq());
            let (p1, rxp1) = b.alloc_qp(b.make_cq(), b.make_cq());
            let (p2, rxp2) = b.alloc_qp(b.make_cq(), b.make_cq());
            for (q, p) in [(&q1, &p1), (&q2, &p2)] {
                q.inner.peer_node.set(b.inner.node);
                q.inner.peer_qpn.set(p.qpn());
                q.inner.connected.set(true);
                p.inner.peer_node.set(a.inner.node);
                p.inner.peer_qpn.set(q.qpn());
                p.inner.connected.set(true);
            }
            h.spawn(sender_loop(q1.inner.clone(), rx1));
            h.spawn(sender_loop(q2.inner.clone(), rx2));
            h.spawn(sender_loop(p1.inner.clone(), rxp1));
            h.spawn(sender_loop(p2.inner.clone(), rxp2));

            let target = bmem.alloc(1 << 20);
            let drain_cq = shared.clone();
            let order = sim.block_on(async move {
                let mr = b.register(&target, 0, 1 << 20, Access::REMOTE_WRITE).await;
                for i in 0..8u64 {
                    let q = if i % 2 == 0 { &q1 } else { &q2 };
                    q.post_rdma_write(
                        Payload::synthetic(9, 512),
                        mr.addr() + i * 512,
                        mr.rkey(),
                        WrId(i),
                        true,
                    )
                    .unwrap();
                }
                let mut order = Vec::with_capacity(8);
                for _ in 0..8 {
                    order.push(drain_cq.next().await.wr_id.0);
                }
                order
            });
            (order, shared.interrupts())
        };
        let (o1, i1) = run(7);
        let (o2, i2) = run(7);
        assert_eq!(o1, o2, "same seed must drain in the same order");
        assert_eq!(i1, i2, "same seed must take the same interrupts");
        assert!(i1 < 8, "coalescing must amortize interrupts, got {i1}");
        // Per-QP completion order == post order, even interleaved in
        // the shared queue (evens posted on q1, odds on q2).
        let evens: Vec<u64> = o1.iter().copied().filter(|w| w % 2 == 0).collect();
        let odds: Vec<u64> = o1.iter().copied().filter(|w| w % 2 == 1).collect();
        assert!(evens.windows(2).all(|w| w[0] < w[1]), "q1 order: {o1:?}");
        assert!(odds.windows(2).all(|w| w[0] < w[1]), "q2 order: {o1:?}");
    }
}
