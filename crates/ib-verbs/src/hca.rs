//! The Host Channel Adapter: TPT, registration engine, QP management
//! and the inbound-message dispatcher.
//!
//! Cost structure (paper §4.3): a dynamic registration pins pages on
//! the host CPU, then performs one serialized transaction against the
//! HCA's TPT engine across the I/O bus; deregistration reverses both.
//! The TPT engine is a single-slot [`Resource`], so concurrent
//! registrations from many server threads queue — this contention is
//! the dominant bottleneck the paper's registration strategies attack.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use sim_core::sync::Receiver;
use sim_core::{Cpu, Payload, Resource, Sim, SimDuration};

use crate::config::HcaConfig;
use crate::cq::{Completion, Cq};
use crate::fabric::Fabric;
use crate::memory::{Buffer, HostMem};
use crate::qp::{sender_loop, Qp, WireMsg};
use crate::tpt::{ExposureReport, RemoteOp, Tpt};
use crate::types::{Access, NodeId, Opcode, QpNum, Rkey, VerbsError};

/// Registration statistics, for tests and the experiment reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegStats {
    /// Dynamic registrations performed.
    pub dynamic_regs: u64,
    /// Dynamic deregistrations performed.
    pub deregs: u64,
    /// FMR map operations performed.
    pub fmr_maps: u64,
    /// FMR unmap operations performed.
    pub fmr_unmaps: u64,
    /// Memory regions dropped while still valid (leaks — each one is a
    /// protocol bug or an injected failure).
    pub leaked_mrs: u64,
    /// Pages pinned (all modes).
    pub pages_pinned: u64,
}

pub(crate) struct HcaInner {
    pub(crate) sim: Sim,
    pub(crate) node: NodeId,
    pub(crate) cfg: HcaConfig,
    pub(crate) cpu: Cpu,
    pub(crate) mem: Rc<HostMem>,
    pub(crate) tpt: RefCell<Tpt>,
    /// The serialized TPT-update engine (one I/O bus transaction at a
    /// time).
    pub(crate) tpt_engine: Resource,
    pub(crate) fabric: Fabric<WireMsg>,
    pub(crate) qps: RefCell<HashMap<u32, Qp>>,
    next_qpn: Cell<u32>,
    pub(crate) stats: RefCell<RegStats>,
}

/// Handle to a simulated HCA.
#[derive(Clone)]
pub struct Hca {
    pub(crate) inner: Rc<HcaInner>,
}

impl Hca {
    /// Create an HCA for `node`, attach it to `fabric` and start its
    /// inbound dispatcher.
    pub fn new(
        sim: &Sim,
        node: NodeId,
        cfg: HcaConfig,
        cpu: Cpu,
        mem: Rc<HostMem>,
        fabric: &Fabric<WireMsg>,
    ) -> Hca {
        let inbox = fabric.attach(node, cfg.link_bandwidth, cfg.link_latency);
        // The security ledger's violation/revocation counters feed the
        // shared `tpt.*` registry series from day one, so chaos and
        // adversary snapshots always carry them.
        let mut tpt = Tpt::new(sim.fork_rng());
        tpt.bind_metrics(&sim.metrics());
        let hca = Hca {
            inner: Rc::new(HcaInner {
                sim: sim.clone(),
                node,
                cfg,
                cpu,
                mem,
                tpt: RefCell::new(tpt),
                tpt_engine: Resource::new(sim, format!("hca{}.tpt", node.0), 1),
                fabric: fabric.clone(),
                qps: RefCell::new(HashMap::new()),
                next_qpn: Cell::new(1),
                stats: RefCell::new(RegStats::default()),
            }),
        };
        let h2 = hca.clone();
        sim.spawn(async move { dispatch_loop(h2, inbox).await });
        hca
    }

    /// The node this HCA serves.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The simulation this HCA lives in (for spans and metrics).
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Configuration in force.
    pub fn config(&self) -> &HcaConfig {
        &self.inner.cfg
    }

    /// The host CPU this HCA charges driver work to.
    pub fn cpu(&self) -> &Cpu {
        &self.inner.cpu
    }

    /// The host memory manager.
    pub fn mem(&self) -> &Rc<HostMem> {
        &self.inner.mem
    }

    /// The fabric this HCA is attached to.
    pub fn fabric(&self) -> &Fabric<WireMsg> {
        &self.inner.fabric
    }

    /// Registration statistics snapshot.
    pub fn reg_stats(&self) -> RegStats {
        *self.inner.stats.borrow()
    }

    /// Security ledger snapshot.
    pub fn exposure_report(&self) -> ExposureReport {
        self.inner
            .tpt
            .borrow()
            .exposure_report(self.inner.sim.now())
    }

    /// Probability a uniformly guessed steering tag grants a read.
    pub fn guess_hit_probability(&self) -> f64 {
        self.inner.tpt.borrow().guess_hit_probability()
    }

    /// Live TPT entries.
    pub fn tpt_entries(&self) -> usize {
        self.inner.tpt.borrow().len()
    }

    /// Utilization of the TPT engine since its window opened.
    pub fn tpt_engine_utilization(&self) -> f64 {
        self.inner.tpt_engine.utilization()
    }

    /// Reset per-run accounting (TPT engine window).
    pub fn reset_accounting(&self) {
        self.inner.tpt_engine.reset_accounting();
    }

    // -- Registration --------------------------------------------------

    /// Dynamically register `[offset, offset+len)` of `buffer`: pin the
    /// pages (host CPU) and run one TPT transaction (serialized engine).
    pub async fn register(
        &self,
        buffer: &Buffer,
        offset: u64,
        len: u64,
        access: Access,
    ) -> crate::mr::Mr {
        assert!(offset + len <= buffer.len(), "register out of bounds");
        let _span = self.inner.sim.span("hca", "reg");
        let pages = len.div_ceil(crate::memory::PAGE_SIZE).max(1);
        self.pin_pages(pages).await;
        self.inner
            .tpt_engine
            .use_for(self.inner.cfg.reg_cost(pages))
            .await;
        let base = buffer.addr() + offset;
        let rkey = self.inner.tpt.borrow_mut().insert(
            buffer.clone(),
            base,
            len,
            access,
            self.inner.sim.now(),
        );
        self.inner.stats.borrow_mut().dynamic_regs += 1;
        self.inner.sim.trace("reg", || {
            format!(
                "node{} register {len}B ({pages} pages) -> {rkey:?} exposed={}",
                self.inner.node.0,
                access.remotely_exposed()
            )
        });
        crate::mr::Mr::new_dynamic(self.clone(), rkey, buffer.clone(), base, len, access, pages)
    }

    /// Charge the CPU for pinning `pages` pages.
    pub async fn pin_pages(&self, pages: u64) {
        self.inner.stats.borrow_mut().pages_pinned += pages;
        self.inner
            .cpu
            .execute(SimDuration::from_nanos(
                self.inner.cfg.pin_per_page.as_nanos() * pages,
            ))
            .await;
    }

    /// Charge the CPU for unpinning `pages` pages (half the pin cost).
    pub async fn unpin_pages(&self, pages: u64) {
        self.inner
            .cpu
            .execute(SimDuration::from_nanos(
                self.inner.cfg.pin_per_page.as_nanos() * pages / 2,
            ))
            .await;
    }

    /// Record a forced teardown of a registration that has no TPT entry
    /// of its own (all-physical pinnings ride the global steering tag).
    /// Keeps the revocation ledger honest for every strategy.
    pub fn note_forced_revocation(&self) {
        self.inner.tpt.borrow_mut().note_revocation();
    }

    /// Enable the privileged all-physical (global) steering tag.
    /// Kernel consumers only (paper §4.3, "All Physical Memory
    /// Registration").
    pub fn enable_all_physical(&self) -> Rkey {
        self.inner.tpt.borrow_mut().enable_global_rkey()
    }

    /// The global steering tag, if enabled.
    pub fn global_rkey(&self) -> Option<Rkey> {
        self.inner.tpt.borrow().global_rkey()
    }

    // -- Queue pairs ----------------------------------------------------

    pub(crate) fn alloc_qp(&self, send_cq: Cq, recv_cq: Cq) -> (Qp, Receiver<crate::qp::Wqe>) {
        let qpn = QpNum(self.inner.next_qpn.get());
        self.inner.next_qpn.set(qpn.0 + 1);
        let (qp, wqe_rx) = Qp::new(
            self.inner.sim.clone(),
            self.inner.cfg,
            self.inner.node,
            qpn,
            self.inner.fabric.clone(),
            send_cq,
            recv_cq,
        );
        self.inner.qps.borrow_mut().insert(qpn.0, qp.clone());
        (qp, wqe_rx)
    }
}

/// Create and connect a reliable-connection queue pair between two
/// HCAs. Each side gets fresh send/recv CQs bound to its host CPU.
pub fn connect(a: &Hca, b: &Hca) -> (Qp, Qp) {
    let (qa, rx_a) = a.alloc_qp(Cq::new(a.inner.cpu.clone()), Cq::new(a.inner.cpu.clone()));
    let (qb, rx_b) = b.alloc_qp(Cq::new(b.inner.cpu.clone()), Cq::new(b.inner.cpu.clone()));
    qa.inner.peer_node.set(b.inner.node);
    qa.inner.peer_qpn.set(qb.qpn());
    qa.inner.connected.set(true);
    qb.inner.peer_node.set(a.inner.node);
    qb.inner.peer_qpn.set(qa.qpn());
    qb.inner.connected.set(true);
    a.inner.sim.spawn(sender_loop(qa.inner.clone(), rx_a));
    b.inner.sim.spawn(sender_loop(qb.inner.clone(), rx_b));
    (qa, qb)
}

/// Inbound message dispatcher: the responder side of every operation.
async fn dispatch_loop(hca: Hca, mut inbox: Receiver<WireMsg>) {
    while let Ok(msg) = inbox.recv().await {
        match msg {
            WireMsg::Send { dst_qpn, data, ack } => {
                let qp = hca.inner.qps.borrow().get(&dst_qpn.0).cloned();
                let Some(qp) = qp else {
                    ack.send(Err(VerbsError::NotConnected));
                    continue;
                };
                let posted = qp.take_recv();
                let Some(recv) = posted else {
                    qp.inner.set_error();
                    ack.send(Err(VerbsError::ReceiverNotReady));
                    continue;
                };
                if data.len() > recv.len {
                    qp.inner.set_error();
                    ack.send(Err(VerbsError::ReceiveTooSmall {
                        needed: data.len(),
                        have: recv.len,
                    }));
                    continue;
                }
                // DMA placement into the posted buffer: no host CPU.
                recv.buffer.write(recv.offset, data.clone());
                qp.inner.recv_cq.push(Completion {
                    wr_id: recv.wr_id,
                    opcode: Opcode::Recv,
                    result: Ok(data.len()),
                    payload: Some(data),
                });
                ack.send(Ok(()));
            }
            WireMsg::Write {
                dst_qpn,
                raddr,
                rkey,
                data,
                ack,
            } => {
                let mem = hca.inner.mem.clone();
                let check = hca.inner.tpt.borrow_mut().check_remote(
                    rkey,
                    raddr,
                    data.len(),
                    RemoteOp::Write,
                    hca.inner.sim.now(),
                    move |a, l| mem.lookup(a, l),
                );
                match check {
                    Ok((buffer, off)) => {
                        buffer.write(off, data);
                        ack.send(Ok(()));
                    }
                    Err(e) => {
                        if let Some(qp) = hca.inner.qps.borrow().get(&dst_qpn.0) {
                            qp.inner.set_error();
                        }
                        ack.send(Err(e));
                    }
                }
            }
            WireMsg::ReadReq {
                dst_qpn,
                raddr,
                rkey,
                len,
                resp,
            } => {
                let mem = hca.inner.mem.clone();
                let check = hca.inner.tpt.borrow_mut().check_remote(
                    rkey,
                    raddr,
                    len,
                    RemoteOp::Read,
                    hca.inner.sim.now(),
                    move |a, l| mem.lookup(a, l),
                );
                let qp = hca.inner.qps.borrow().get(&dst_qpn.0).cloned();
                match (check, qp) {
                    (Ok((buffer, off)), Some(qp)) => {
                        // Service the read concurrently, bounded by IRD.
                        let hca2 = hca.clone();
                        hca.inner.sim.spawn(async move {
                            let _slot = qp.inner.read_engine.acquire().await;
                            hca2.inner.sim.sleep(hca2.inner.cfg.read_turnaround).await;
                            let payload = buffer.read(off, len);
                            let requester = qp.inner.peer_node.get();
                            hca2.inner
                                .fabric
                                .raw_transfer(
                                    hca2.inner.node,
                                    requester,
                                    hca2.inner.cfg.wire_header_bytes + len,
                                )
                                .await;
                            resp.send(Ok(payload));
                        });
                    }
                    (Err(e), qp) => {
                        if let Some(qp) = qp {
                            qp.inner.set_error();
                        }
                        // Nak propagation delay.
                        let hca2 = hca.clone();
                        hca.inner.sim.spawn(async move {
                            hca2.inner.sim.sleep(hca2.inner.cfg.link_latency).await;
                            resp.send(Err(e));
                        });
                    }
                    (Ok(_), None) => {
                        resp.send(Err(VerbsError::NotConnected));
                    }
                }
            }
        }
    }
}

/// Convenience: materialize a payload for assertions in tests.
pub fn payload_bytes(p: &Payload) -> Vec<u8> {
    p.materialize().to_vec()
}
