//! The switched fabric: per-node uplink/downlink with cut-through
//! forwarding.
//!
//! Every node owns a transmit wire and a receive wire of equal rate
//! (full duplex). A transfer holds the source's transmit wire and the
//! destination's receive wire simultaneously for one serialization time
//! (cut-through, as IB switches do), then experiences propagation
//! latency. The receive wire of a busy server is therefore the shared
//! bottleneck across clients — the effect behind Figure 10.
//!
//! Deadlock freedom: a transfer holds exactly one tx resource while
//! waiting for one rx resource; no holder of an rx resource ever waits
//! on a tx resource, so no cycle can form.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use sim_core::sync::{channel, Receiver, Sender};
use sim_core::{transfer_time, Resource, Sim, SimDuration};

use crate::types::NodeId;

struct Port<M> {
    tx: Resource,
    rx: Resource,
    bandwidth: u64,
    latency: SimDuration,
    inbox: Sender<M>,
    rx_bytes: Cell<u64>,
    tx_bytes: Cell<u64>,
}

struct FabricInner<M> {
    sim: Sim,
    ports: RefCell<HashMap<NodeId, Rc<Port<M>>>>,
}

/// A fabric carrying messages of type `M` between nodes.
pub struct Fabric<M> {
    inner: Rc<FabricInner<M>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            inner: self.inner.clone(),
        }
    }
}

impl<M: 'static> Fabric<M> {
    /// Create an empty fabric.
    pub fn new(sim: &Sim) -> Self {
        Fabric {
            inner: Rc::new(FabricInner {
                sim: sim.clone(),
                ports: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// Attach `node` with the given port rate (bytes/s) and one-way
    /// latency. Returns the node's inbound message stream.
    pub fn attach(&self, node: NodeId, bandwidth: u64, latency: SimDuration) -> Receiver<M> {
        let (inbox, rx_inbox) = channel();
        let port = Rc::new(Port {
            tx: Resource::new(&self.inner.sim, format!("node{}.tx", node.0), 1),
            rx: Resource::new(&self.inner.sim, format!("node{}.rx", node.0), 1),
            bandwidth,
            latency,
            inbox,
            rx_bytes: Cell::new(0),
            tx_bytes: Cell::new(0),
        });
        let prev = self.inner.ports.borrow_mut().insert(node, port);
        assert!(prev.is_none(), "node {node:?} attached twice");
        rx_inbox
    }

    fn port(&self, node: NodeId) -> Rc<Port<M>> {
        self.inner
            .ports
            .borrow()
            .get(&node)
            .unwrap_or_else(|| panic!("node {node:?} not attached"))
            .clone()
    }

    /// Move `wire_bytes` from `from` to `to` and deliver `msg` to the
    /// destination inbox when the last byte lands.
    pub async fn send(&self, from: NodeId, to: NodeId, wire_bytes: u64, msg: M) {
        self.raw_transfer(from, to, wire_bytes).await;
        // Receiver may have shut down (e.g. crash-injection tests).
        let _ = self.port(to).inbox.send(msg);
    }

    /// Occupy the wire for a transfer without delivering a message
    /// (used for RDMA Read response data, which completes a waiting
    /// requester directly).
    pub async fn raw_transfer(&self, from: NodeId, to: NodeId, wire_bytes: u64) {
        let src = self.port(from);
        let dst = self.port(to);
        let bw = src.bandwidth.min(dst.bandwidth);
        let occupancy = transfer_time(wire_bytes, bw);
        if !occupancy.is_zero() {
            // Cut-through: hold tx, then rx, for one serialization time.
            let _tx_slot = src.tx.acquire().await;
            let _rx_slot = dst.rx.acquire().await;
            self.inner.sim.sleep(occupancy).await;
            src.tx.charge(occupancy);
            dst.rx.charge(occupancy);
            src.tx_bytes.set(src.tx_bytes.get() + wire_bytes);
            dst.rx_bytes.set(dst.rx_bytes.get() + wire_bytes);
        }
        if !dst.latency.is_zero() {
            self.inner.sim.sleep(dst.latency).await;
        }
    }

    /// One-way latency into `node`.
    pub fn latency_to(&self, node: NodeId) -> SimDuration {
        self.port(node).latency
    }

    /// Transmit-side wire utilization of a node's port.
    pub fn tx_utilization(&self, node: NodeId) -> f64 {
        self.port(node).tx.utilization()
    }

    /// Receive-side wire utilization of a node's port.
    pub fn rx_utilization(&self, node: NodeId) -> f64 {
        self.port(node).rx.utilization()
    }

    /// Bytes received by a node since its accounting window opened.
    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.port(node).rx_bytes.get()
    }

    /// Bytes transmitted by a node since its accounting window opened.
    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.port(node).tx_bytes.get()
    }

    /// Reset port accounting for all nodes (exclude warmup).
    pub fn reset_accounting(&self) {
        for p in self.inner.ports.borrow().values() {
            p.tx.reset_accounting();
            p.rx.reset_accounting();
            p.rx_bytes.set(0);
            p.tx_bytes.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{SimTime, Simulation};

    const GB: u64 = 1_000_000_000;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn point_to_point_delivery_time() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<u32> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, us(2));
        let mut inbox = fab.attach(NodeId(1), GB, us(2));
        let f2 = fab.clone();
        sim.spawn(async move {
            f2.send(NodeId(0), NodeId(1), 1_000_000, 7).await;
        });
        let msg = sim.block_on(async move { inbox.recv().await.unwrap() });
        assert_eq!(msg, 7);
        // 1 MB at 1 GB/s = 1 ms serialization + 2 us latency.
        assert_eq!(sim.now(), SimTime::from_nanos(1_002_000));
    }

    #[test]
    fn cut_through_does_not_double_serialization() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        let _i = fab.attach(NodeId(1), GB, SimDuration::ZERO);
        let f2 = fab.clone();
        sim.block_on(async move { f2.raw_transfer(NodeId(0), NodeId(1), 1_000_000).await });
        // One serialization, not two.
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn server_rx_is_shared_bottleneck() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        let server = NodeId(0);
        let _si = fab.attach(server, GB, SimDuration::ZERO);
        for c in 1..=4 {
            fab.attach(NodeId(c), GB, SimDuration::ZERO);
        }
        for c in 1..=4u32 {
            let f = fab.clone();
            sim.spawn(async move {
                f.raw_transfer(NodeId(c), server, 1_000_000).await;
            });
        }
        sim.run();
        // Four 1 MB transfers share the server's 1 GB/s rx wire: 4 ms.
        assert_eq!(sim.now(), SimTime::from_nanos(4_000_000));
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(1), GB, SimDuration::ZERO);
        let f1 = fab.clone();
        let f2 = fab.clone();
        sim.spawn(async move { f1.raw_transfer(NodeId(0), NodeId(1), 1_000_000).await });
        sim.spawn(async move { f2.raw_transfer(NodeId(1), NodeId(0), 1_000_000).await });
        sim.run();
        // Opposite directions overlap fully.
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn mismatched_rates_use_slower() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(1), 125_000_000, SimDuration::ZERO); // GigE-ish
        let f = fab.clone();
        sim.block_on(async move { f.raw_transfer(NodeId(0), NodeId(1), 1_000_000).await });
        assert_eq!(sim.now(), SimTime::from_nanos(8_000_000));
    }

    #[test]
    fn byte_accounting() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(1), GB, SimDuration::ZERO);
        let f = fab.clone();
        sim.block_on(async move {
            f.raw_transfer(NodeId(0), NodeId(1), 500).await;
            f.raw_transfer(NodeId(0), NodeId(1), 250).await;
        });
        assert_eq!(fab.rx_bytes(NodeId(1)), 750);
        assert_eq!(fab.tx_bytes(NodeId(0)), 750);
        assert_eq!(fab.rx_bytes(NodeId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let sim = Simulation::new(1);
        let fab: Fabric<()> = Fabric::new(&sim.handle());
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
    }
}
