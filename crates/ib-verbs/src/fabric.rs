//! The switched fabric: per-node uplink/downlink with cut-through
//! forwarding.
//!
//! Every node owns a transmit wire and a receive wire of equal rate
//! (full duplex). A transfer holds the source's transmit wire and the
//! destination's receive wire simultaneously for one serialization time
//! (cut-through, as IB switches do), then experiences propagation
//! latency. The receive wire of a busy server is therefore the shared
//! bottleneck across clients — the effect behind Figure 10.
//!
//! Deadlock freedom: a transfer holds exactly one tx resource while
//! waiting for one rx resource; no holder of an rx resource ever waits
//! on a tx resource, so no cycle can form.
//!
//! ## Fault injection
//!
//! The fabric doubles as the chaos layer: once [`Fabric::enable_faults`]
//! hands it a seeded [`SimRng`] stream, each link (keyed by the
//! *receiving* node) can be given a drop probability, delay jitter, and
//! flap windows ([`FaultConfig`], [`Fabric::flap_link`]). Faults are
//! decided at arrival time — a dropped message still paid its wire
//! occupancy, as a corrupted packet does in hardware. With faults
//! disabled (the default) the fabric draws **zero** random numbers and
//! behaves bit-for-bit as before, so existing schedules are unchanged.
//!
//! Two delivery disciplines are offered on top of the verdict:
//!
//! * [`Fabric::send`] hands a dropped message back to the caller
//!   (`Some(msg)`) — used for two-sided Sends, where loss is surfaced
//!   to the ULP and recovered by RPC retransmission.
//! * [`Fabric::send_reliable`] retransmits at link level until
//!   delivery — used for RDMA Write/Read requests, whose data-placement
//!   guarantees the RC transport provides in hardware.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use sim_core::stats::Counter;
use sim_core::sync::{channel, Receiver, Sender};
use sim_core::{transfer_time, Resource, Sim, SimDuration, SimRng, SimTime};

use crate::types::NodeId;

/// Per-link fault parameters (the link is keyed by its receiving node).
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability that a message arriving on this link is dropped.
    pub drop_probability: f64,
    /// Extra uniformly-distributed delay `[0, delay_jitter]` added to
    /// every transfer into this node.
    pub delay_jitter: SimDuration,
    /// Link-level retransmission timeout used by
    /// [`Fabric::send_reliable`] after a drop.
    pub retry_delay: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            delay_jitter: SimDuration::ZERO,
            retry_delay: DEFAULT_RETRY_DELAY,
        }
    }
}

/// Link-level retry timeout when no per-link config overrides it
/// (order of an IB end-to-end timeout tick at SDR rates).
const DEFAULT_RETRY_DELAY: SimDuration = SimDuration::from_micros(10);

struct FaultState {
    rng: SimRng,
    links: HashMap<NodeId, FaultConfig>,
    /// Outage windows per receiving node: everything arriving inside
    /// `[from, until)` is dropped.
    flaps: HashMap<NodeId, Vec<(SimTime, SimTime)>>,
    /// One-shot forced drops per receiving node (deterministic fault
    /// targeting for tests; consumes no randomness).
    forced: HashMap<NodeId, u64>,
}

struct Port<M> {
    tx: Resource,
    rx: Resource,
    bandwidth: u64,
    latency: SimDuration,
    inbox: Sender<M>,
    rx_bytes: Cell<u64>,
    tx_bytes: Cell<u64>,
    /// Messages dropped on arrival at this port (cumulative; not reset
    /// by accounting windows). Registered as `fabric.port{N}.dropped`.
    dropped: Rc<Counter>,
    /// Link-level retransmissions into this port (cumulative).
    /// Registered as `fabric.port{N}.retransmits`.
    retransmits: Rc<Counter>,
}

struct FabricInner<M> {
    sim: Sim,
    ports: RefCell<HashMap<NodeId, Rc<Port<M>>>>,
    faults: RefCell<Option<FaultState>>,
    /// Mirrors `faults.is_some()` so the per-arrival checks stay off
    /// the hot path entirely until the fault layer is armed.
    faults_armed: Cell<bool>,
}

/// A fabric carrying messages of type `M` between nodes.
pub struct Fabric<M> {
    inner: Rc<FabricInner<M>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            inner: self.inner.clone(),
        }
    }
}

impl<M: 'static> Fabric<M> {
    /// Create an empty fabric.
    pub fn new(sim: &Sim) -> Self {
        Fabric {
            inner: Rc::new(FabricInner {
                sim: sim.clone(),
                ports: RefCell::new(HashMap::new()),
                faults: RefCell::new(None),
                faults_armed: Cell::new(false),
            }),
        }
    }

    /// Attach `node` with the given port rate (bytes/s) and one-way
    /// latency. Returns the node's inbound message stream.
    pub fn attach(&self, node: NodeId, bandwidth: u64, latency: SimDuration) -> Receiver<M> {
        let (inbox, rx_inbox) = channel();
        let metrics = self.inner.sim.metrics();
        let port = Rc::new(Port {
            tx: Resource::new(&self.inner.sim, format!("node{}.tx", node.0), 1),
            rx: Resource::new(&self.inner.sim, format!("node{}.rx", node.0), 1),
            bandwidth,
            latency,
            inbox,
            rx_bytes: Cell::new(0),
            tx_bytes: Cell::new(0),
            dropped: metrics.counter(&format!("fabric.port{}.dropped", node.0)),
            retransmits: metrics.counter(&format!("fabric.port{}.retransmits", node.0)),
        });
        let prev = self.inner.ports.borrow_mut().insert(node, port);
        assert!(prev.is_none(), "node {node:?} attached twice");
        rx_inbox
    }

    fn port(&self, node: NodeId) -> Rc<Port<M>> {
        self.inner
            .ports
            .borrow()
            .get(&node)
            .unwrap_or_else(|| panic!("node {node:?} not attached"))
            .clone()
    }

    /// Move `wire_bytes` from `from` to `to` and deliver `msg` to the
    /// destination inbox when the last byte lands.
    ///
    /// Returns `None` on delivery. If the fault layer drops the message
    /// on arrival the message is handed **back** (`Some(msg)`) so the
    /// caller decides the recovery discipline — complete anyway (ULP
    /// loss, as for two-sided Sends) or retransmit
    /// ([`Fabric::send_reliable`]).
    pub async fn send(&self, from: NodeId, to: NodeId, wire_bytes: u64, msg: M) -> Option<M> {
        self.raw_transfer(from, to, wire_bytes).await;
        if self.arrival_dropped(to) {
            self.port(to).dropped.inc();
            self.inner.sim.trace("fault", || {
                format!("drop {wire_bytes}B node{} -> node{}", from.0, to.0)
            });
            return Some(msg);
        }
        // Receiver may have shut down (e.g. crash-injection tests).
        let _ = self.port(to).inbox.send(msg);
        None
    }

    /// [`Fabric::send`] with link-level retransmission: on a drop, wait
    /// the link's retry delay and transmit again (paying serialization
    /// each time) until the message is delivered. Models the RC
    /// transport's guarantee for one-sided operations.
    pub async fn send_reliable(&self, from: NodeId, to: NodeId, wire_bytes: u64, msg: M) {
        let mut msg = msg;
        loop {
            match self.send(from, to, wire_bytes, msg).await {
                None => return,
                Some(returned) => {
                    msg = returned;
                    self.port(to).retransmits.inc();
                    self.inner.sim.sleep(self.retry_delay(to)).await;
                }
            }
        }
    }

    /// Occupy the wire for a transfer without delivering a message
    /// (used for RDMA Read response data, which completes a waiting
    /// requester directly).
    pub async fn raw_transfer(&self, from: NodeId, to: NodeId, wire_bytes: u64) {
        let src = self.port(from);
        let dst = self.port(to);
        let bw = src.bandwidth.min(dst.bandwidth);
        let occupancy = transfer_time(wire_bytes, bw);
        if !occupancy.is_zero() {
            // Cut-through: hold tx, then rx, for one serialization time.
            let _tx_slot = src.tx.acquire().await;
            let _rx_slot = dst.rx.acquire().await;
            self.inner.sim.sleep(occupancy).await;
            src.tx.charge(occupancy);
            dst.rx.charge(occupancy);
            src.tx_bytes.set(src.tx_bytes.get() + wire_bytes);
            dst.rx_bytes.set(dst.rx_bytes.get() + wire_bytes);
        }
        if !dst.latency.is_zero() {
            self.inner.sim.sleep(dst.latency).await;
        }
        let jitter = self.extra_delay(to);
        if !jitter.is_zero() {
            self.inner.sim.sleep(jitter).await;
        }
    }

    // --- Fault injection. --------------------------------------------

    /// Arm the fault layer with a seeded random stream (idempotent;
    /// typically `sim.fork_rng()`). Until this is called the fabric
    /// draws no randomness and delivers every message.
    pub fn enable_faults(&self, rng: SimRng) {
        let mut f = self.inner.faults.borrow_mut();
        if f.is_none() {
            *f = Some(FaultState {
                rng,
                links: HashMap::new(),
                flaps: HashMap::new(),
                forced: HashMap::new(),
            });
            self.inner.faults_armed.set(true);
        }
    }

    /// True once [`Fabric::enable_faults`] has run.
    pub fn faults_enabled(&self) -> bool {
        self.inner.faults.borrow().is_some()
    }

    fn with_faults<T>(&self, f: impl FnOnce(&mut FaultState) -> T) -> T {
        let mut g = self.inner.faults.borrow_mut();
        let state = g.get_or_insert_with(|| FaultState {
            // Deterministic fallback stream for callers that only use
            // draw-free faults (forced drops, flaps).
            rng: SimRng::new(0xFA_B0_17),
            links: HashMap::new(),
            flaps: HashMap::new(),
            forced: HashMap::new(),
        });
        self.inner.faults_armed.set(true);
        f(state)
    }

    /// Set the fault parameters of the link into `node`.
    pub fn set_link_faults(&self, node: NodeId, cfg: FaultConfig) {
        self.with_faults(|f| {
            f.links.insert(node, cfg);
        });
    }

    /// Drop everything arriving at `node` within `[from, until)` — a
    /// link flap / cable-pull window.
    pub fn flap_link(&self, node: NodeId, from: SimTime, until: SimTime) {
        self.with_faults(|f| f.flaps.entry(node).or_default().push((from, until)));
    }

    /// Force the next `count` messages arriving at `node` to be
    /// dropped (deterministic, draw-free fault targeting for tests).
    pub fn drop_next_to(&self, node: NodeId, count: u64) {
        self.with_faults(|f| *f.forced.entry(node).or_insert(0) += count);
    }

    /// Decide whether a message arriving at `to` now is lost.
    fn arrival_dropped(&self, to: NodeId) -> bool {
        if !self.inner.faults_armed.get() {
            return false;
        }
        let mut g = self.inner.faults.borrow_mut();
        let Some(f) = g.as_mut() else { return false };
        if let Some(n) = f.forced.get_mut(&to) {
            if *n > 0 {
                *n -= 1;
                return true;
            }
        }
        let now = self.inner.sim.now();
        if let Some(windows) = f.flaps.get(&to) {
            if windows.iter().any(|(a, b)| now >= *a && now < *b) {
                return true;
            }
        }
        match f.links.get(&to) {
            Some(cfg) if cfg.drop_probability > 0.0 => f.rng.gen_bool(cfg.drop_probability),
            _ => false,
        }
    }

    fn extra_delay(&self, to: NodeId) -> SimDuration {
        if !self.inner.faults_armed.get() {
            return SimDuration::ZERO;
        }
        let mut g = self.inner.faults.borrow_mut();
        let Some(f) = g.as_mut() else {
            return SimDuration::ZERO;
        };
        let Some(cfg) = f.links.get(&to) else {
            return SimDuration::ZERO;
        };
        if cfg.delay_jitter.is_zero() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(f.rng.gen_range(cfg.delay_jitter.as_nanos() + 1))
    }

    fn retry_delay(&self, to: NodeId) -> SimDuration {
        self.inner
            .faults
            .borrow()
            .as_ref()
            .and_then(|f| f.links.get(&to).map(|c| c.retry_delay))
            .unwrap_or(DEFAULT_RETRY_DELAY)
    }

    /// Messages dropped on arrival at `node` (cumulative). Fabric-wide
    /// totals come from the metrics registry:
    /// `sim.metrics().sum_matching("fabric.", ".dropped")`.
    pub fn dropped(&self, node: NodeId) -> u64 {
        self.port(node).dropped.get()
    }

    /// Link-level retransmissions into `node` (cumulative). Fabric-wide
    /// totals come from the metrics registry:
    /// `sim.metrics().sum_matching("fabric.", ".retransmits")`.
    pub fn retransmits(&self, node: NodeId) -> u64 {
        self.port(node).retransmits.get()
    }

    /// One-way latency into `node`.
    pub fn latency_to(&self, node: NodeId) -> SimDuration {
        self.port(node).latency
    }

    /// Transmit-side wire utilization of a node's port.
    pub fn tx_utilization(&self, node: NodeId) -> f64 {
        self.port(node).tx.utilization()
    }

    /// Receive-side wire utilization of a node's port.
    pub fn rx_utilization(&self, node: NodeId) -> f64 {
        self.port(node).rx.utilization()
    }

    /// Bytes received by a node since its accounting window opened.
    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.port(node).rx_bytes.get()
    }

    /// Bytes transmitted by a node since its accounting window opened.
    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.port(node).tx_bytes.get()
    }

    /// Reset port accounting for all nodes (exclude warmup).
    pub fn reset_accounting(&self) {
        for p in self.inner.ports.borrow().values() {
            p.tx.reset_accounting();
            p.rx.reset_accounting();
            p.rx_bytes.set(0);
            p.tx_bytes.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{SimTime, Simulation};

    const GB: u64 = 1_000_000_000;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn point_to_point_delivery_time() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<u32> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, us(2));
        let mut inbox = fab.attach(NodeId(1), GB, us(2));
        let f2 = fab.clone();
        sim.spawn(async move {
            f2.send(NodeId(0), NodeId(1), 1_000_000, 7).await;
        });
        let msg = sim.block_on(async move { inbox.recv().await.unwrap() });
        assert_eq!(msg, 7);
        // 1 MB at 1 GB/s = 1 ms serialization + 2 us latency.
        assert_eq!(sim.now(), SimTime::from_nanos(1_002_000));
    }

    #[test]
    fn cut_through_does_not_double_serialization() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        let _i = fab.attach(NodeId(1), GB, SimDuration::ZERO);
        let f2 = fab.clone();
        sim.block_on(async move { f2.raw_transfer(NodeId(0), NodeId(1), 1_000_000).await });
        // One serialization, not two.
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn server_rx_is_shared_bottleneck() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        let server = NodeId(0);
        let _si = fab.attach(server, GB, SimDuration::ZERO);
        for c in 1..=4 {
            fab.attach(NodeId(c), GB, SimDuration::ZERO);
        }
        for c in 1..=4u32 {
            let f = fab.clone();
            sim.spawn(async move {
                f.raw_transfer(NodeId(c), server, 1_000_000).await;
            });
        }
        sim.run();
        // Four 1 MB transfers share the server's 1 GB/s rx wire: 4 ms.
        assert_eq!(sim.now(), SimTime::from_nanos(4_000_000));
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(1), GB, SimDuration::ZERO);
        let f1 = fab.clone();
        let f2 = fab.clone();
        sim.spawn(async move { f1.raw_transfer(NodeId(0), NodeId(1), 1_000_000).await });
        sim.spawn(async move { f2.raw_transfer(NodeId(1), NodeId(0), 1_000_000).await });
        sim.run();
        // Opposite directions overlap fully.
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn mismatched_rates_use_slower() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(1), 125_000_000, SimDuration::ZERO); // GigE-ish
        let f = fab.clone();
        sim.block_on(async move { f.raw_transfer(NodeId(0), NodeId(1), 1_000_000).await });
        assert_eq!(sim.now(), SimTime::from_nanos(8_000_000));
    }

    #[test]
    fn byte_accounting() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<()> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(1), GB, SimDuration::ZERO);
        let f = fab.clone();
        sim.block_on(async move {
            f.raw_transfer(NodeId(0), NodeId(1), 500).await;
            f.raw_transfer(NodeId(0), NodeId(1), 250).await;
        });
        assert_eq!(fab.rx_bytes(NodeId(1)), 750);
        assert_eq!(fab.tx_bytes(NodeId(0)), 750);
        assert_eq!(fab.rx_bytes(NodeId(0)), 0);
    }

    #[test]
    fn forced_drops_hit_exactly_n_messages() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<u32> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        let mut inbox = fab.attach(NodeId(1), GB, SimDuration::ZERO);
        fab.drop_next_to(NodeId(1), 2);
        let f = fab.clone();
        sim.spawn(async move {
            for i in 0..4u32 {
                f.send(NodeId(0), NodeId(1), 100, i).await;
            }
        });
        sim.run();
        let mut got = Vec::new();
        while let Some(m) = inbox.try_recv() {
            got.push(m);
        }
        assert_eq!(got, vec![2, 3]);
        assert_eq!(fab.dropped(NodeId(1)), 2);
        assert_eq!(h.metrics().get("fabric.port1.dropped"), Some(2));
        assert_eq!(h.metrics().sum_matching("fabric.", ".dropped"), 2);
    }

    #[test]
    fn send_reliable_retransmits_until_delivered() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<u32> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        let mut inbox = fab.attach(NodeId(1), GB, SimDuration::ZERO);
        fab.drop_next_to(NodeId(1), 3);
        let f = fab.clone();
        sim.spawn(async move {
            f.send_reliable(NodeId(0), NodeId(1), 1000, 9).await;
        });
        sim.run();
        assert_eq!(inbox.try_recv(), Some(9));
        assert_eq!(fab.retransmits(NodeId(1)), 3);
        // 4 serializations of 1000 B at 1 GB/s + 3 retry delays.
        assert_eq!(
            sim.now(),
            SimTime::ZERO + SimDuration::from_micros(4) + SimDuration::from_micros(30)
        );
    }

    #[test]
    fn flap_window_drops_everything_inside_it() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<u32> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        let mut inbox = fab.attach(NodeId(1), GB, SimDuration::ZERO);
        // 1000 B serialize in 1 us; messages land at t=1,2,3,4 us.
        fab.flap_link(
            NodeId(1),
            SimTime::from_nanos(1_500),
            SimTime::from_nanos(3_500),
        );
        let f = fab.clone();
        sim.spawn(async move {
            for i in 0..4u32 {
                f.send(NodeId(0), NodeId(1), 1000, i).await;
            }
        });
        sim.run();
        let mut got = Vec::new();
        while let Some(m) = inbox.try_recv() {
            got.push(m);
        }
        assert_eq!(got, vec![0, 3]);
    }

    #[test]
    fn random_drops_replay_identically_for_same_seed() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(seed);
            let h = sim.handle();
            let fab: Fabric<u32> = Fabric::new(&h);
            fab.attach(NodeId(0), GB, SimDuration::ZERO);
            let mut inbox = fab.attach(NodeId(1), GB, SimDuration::ZERO);
            fab.enable_faults(h.fork_rng());
            fab.set_link_faults(
                NodeId(1),
                FaultConfig {
                    drop_probability: 0.3,
                    delay_jitter: SimDuration::from_nanos(200),
                    ..FaultConfig::default()
                },
            );
            let f = fab.clone();
            sim.spawn(async move {
                for i in 0..64u32 {
                    f.send(NodeId(0), NodeId(1), 100, i).await;
                }
            });
            sim.run();
            let mut got = Vec::new();
            while let Some(m) = inbox.try_recv() {
                got.push(m);
            }
            (got, fab.dropped(NodeId(1)), sim.now())
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        let c = run(8);
        assert_ne!(a.0, c.0);
        assert!(a.1 > 0, "0.3 drop rate over 64 messages lost none");
    }

    #[test]
    fn disabled_faults_change_nothing_and_draw_nothing() {
        let mut sim = Simulation::new(1);
        let h = sim.handle();
        let fab: Fabric<u32> = Fabric::new(&h);
        fab.attach(NodeId(0), GB, us(2));
        let mut inbox = fab.attach(NodeId(1), GB, us(2));
        let f2 = fab.clone();
        sim.spawn(async move {
            f2.send(NodeId(0), NodeId(1), 1_000_000, 7).await;
        });
        let msg = sim.block_on(async move { inbox.recv().await.unwrap() });
        assert_eq!(msg, 7);
        assert!(!fab.faults_enabled());
        assert_eq!(fab.dropped(NodeId(0)) + fab.dropped(NodeId(1)), 0);
        // Same arrival time as `point_to_point_delivery_time`.
        assert_eq!(sim.now(), SimTime::from_nanos(1_002_000));
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let sim = Simulation::new(1);
        let fab: Fabric<()> = Fabric::new(&sim.handle());
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
        fab.attach(NodeId(0), GB, SimDuration::ZERO);
    }
}
