//! Reliable-Connection queue pairs.
//!
//! A [`Qp`] processes work-queue elements strictly in post order on a
//! per-QP sender task (as an HCA's send queue does). The ordering rules
//! the paper's designs depend on fall out of the model:
//!
//! * **RDMA Write → Send**: both travel the same FIFO wire in post
//!   order, so the Send's arrival guarantees the Write's data is placed
//!   at the responder — the Read-Write design's correctness argument.
//! * **RDMA Read ↛ Send**: a Read WQE only occupies the send queue for
//!   its *request*; the response returns later. A Send posted after a
//!   Read can therefore arrive at the peer before the Read data has
//!   been placed locally — the requester must block on the Read's
//!   completion first (paper §4.1, "Synchronous RDMA Read").
//! * **ORD head-of-line blocking**: when `max_ord` Reads are in flight,
//!   the next Read WQE stalls the entire send queue.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use sim_core::sync::{channel, oneshot, OneshotSender, Receiver, Semaphore, Sender};
use sim_core::{Payload, Sim};

use crate::config::HcaConfig;
use crate::cq::{Completion, Cq};
use crate::fabric::Fabric;
use crate::memory::Buffer;
use crate::types::{NodeId, Opcode, QpNum, Rkey, VerbsError, WrId};

/// Messages on the fabric between HCAs.
pub enum WireMsg {
    /// Two-sided Send: channel semantics, consumes a posted receive.
    Send {
        /// Destination queue pair.
        dst_qpn: QpNum,
        /// Message body.
        data: Payload,
        /// Ack/nak path back to the requester.
        ack: OneshotSender<Result<(), VerbsError>>,
    },
    /// One-sided RDMA Write.
    Write {
        /// Destination queue pair (for error propagation only).
        dst_qpn: QpNum,
        /// Target virtual address at the responder.
        raddr: u64,
        /// Steering tag authorizing the access.
        rkey: Rkey,
        /// Data to place.
        data: Payload,
        /// Ack/nak path back to the requester.
        ack: OneshotSender<Result<(), VerbsError>>,
    },
    /// RDMA Read request (the response returns via `resp`).
    ReadReq {
        /// Destination queue pair (IRD accounting, error propagation).
        dst_qpn: QpNum,
        /// Source virtual address at the responder.
        raddr: u64,
        /// Steering tag authorizing the access.
        rkey: Rkey,
        /// Bytes to read.
        len: u64,
        /// Response path carrying the data (or a nak).
        resp: OneshotSender<Result<Payload, VerbsError>>,
    },
}

/// A posted receive buffer.
pub struct PostedRecv {
    /// Buffer the payload will be DMA'd into.
    pub buffer: Buffer,
    /// Offset within the buffer.
    pub offset: u64,
    /// Capacity available.
    pub len: u64,
    /// Echoed in the receive completion.
    pub wr_id: WrId,
}

pub(crate) enum Wqe {
    Send {
        wr_id: WrId,
        data: Payload,
        signaled: bool,
    },
    Write {
        wr_id: WrId,
        data: Payload,
        raddr: u64,
        rkey: Rkey,
        signaled: bool,
    },
    Read {
        wr_id: WrId,
        dst: Buffer,
        dst_off: u64,
        raddr: u64,
        rkey: Rkey,
        len: u64,
    },
}

pub(crate) struct QpInner {
    pub(crate) sim: Sim,
    pub(crate) cfg: HcaConfig,
    pub(crate) node: NodeId,
    pub(crate) qpn: QpNum,
    pub(crate) peer_node: Cell<NodeId>,
    pub(crate) peer_qpn: Cell<QpNum>,
    pub(crate) connected: Cell<bool>,
    pub(crate) error: Cell<bool>,
    pub(crate) fabric: Fabric<WireMsg>,
    pub(crate) send_cq: Cq,
    pub(crate) recv_cq: Cq,
    pub(crate) recv_queue: RefCell<VecDeque<PostedRecv>>,
    /// Shared receive queue; when set, arrivals consume from it instead
    /// of the per-QP queue.
    pub(crate) srq: RefCell<Option<crate::srq::Srq>>,
    /// Outstanding outbound RDMA Reads (requester side).
    pub(crate) ord: Semaphore,
    /// Responder-side read execution engine. RC responders return read
    /// responses strictly in PSN order, so execution is serial per QP;
    /// IRD only bounds how many requests may be queued (enforced by the
    /// peer's ORD in this workspace's configurations).
    pub(crate) read_engine: Semaphore,
    wqe_tx: Sender<Wqe>,
}

impl QpInner {
    pub(crate) fn set_error(&self) {
        self.error.set(true);
    }
}

/// Handle to a reliable-connection queue pair.
#[derive(Clone)]
pub struct Qp {
    pub(crate) inner: Rc<QpInner>,
}

impl Qp {
    pub(crate) fn new(
        sim: Sim,
        cfg: HcaConfig,
        node: NodeId,
        qpn: QpNum,
        fabric: Fabric<WireMsg>,
        send_cq: Cq,
        recv_cq: Cq,
    ) -> (Qp, Receiver<Wqe>) {
        let (wqe_tx, wqe_rx) = channel();
        let qp = Qp {
            inner: Rc::new(QpInner {
                sim,
                cfg,
                node,
                qpn,
                peer_node: Cell::new(NodeId(u32::MAX)),
                peer_qpn: Cell::new(QpNum(u32::MAX)),
                connected: Cell::new(false),
                error: Cell::new(false),
                fabric,
                send_cq,
                recv_cq,
                recv_queue: RefCell::new(VecDeque::new()),
                srq: RefCell::new(None),
                ord: Semaphore::new(cfg.max_ord),
                read_engine: Semaphore::new(1),
                wqe_tx,
            }),
        };
        (qp, wqe_rx)
    }

    /// This QP's number.
    pub fn qpn(&self) -> QpNum {
        self.inner.qpn
    }

    /// The node this QP lives on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The connected peer's node (`NodeId(u32::MAX)` until
    /// [`crate::hca::connect`] pairs this QP).
    pub fn peer_node(&self) -> NodeId {
        self.inner.peer_node.get()
    }

    /// True once [`crate::hca::connect`] has paired this QP.
    pub fn is_connected(&self) -> bool {
        self.inner.connected.get()
    }

    /// True if the QP has transitioned to the error state.
    pub fn is_error(&self) -> bool {
        self.inner.error.get()
    }

    /// The send-side completion queue.
    pub fn send_cq(&self) -> &Cq {
        &self.inner.send_cq
    }

    /// The receive-side completion queue.
    pub fn recv_cq(&self) -> &Cq {
        &self.inner.recv_cq
    }

    /// Number of receives currently posted (per-QP queue only; SRQ
    /// buffers are counted by [`crate::srq::Srq::posted`]).
    pub fn posted_recvs(&self) -> usize {
        self.inner.recv_queue.borrow().len()
    }

    /// Attach a shared receive queue: subsequent arrivals consume SRQ
    /// buffers. Real verbs fix this at creation time; attach before
    /// any traffic for the same effect.
    pub fn set_srq(&self, srq: crate::srq::Srq) {
        *self.inner.srq.borrow_mut() = Some(srq);
    }

    /// Take the next posted receive: SRQ first if attached.
    pub(crate) fn take_recv(&self) -> Option<PostedRecv> {
        if let Some(srq) = self.inner.srq.borrow().as_ref() {
            return srq.pop();
        }
        self.inner.recv_queue.borrow_mut().pop_front()
    }

    /// Force the QP into the error state (failure injection: peer
    /// crash, retry-count exceeded, cable pull). As on real hardware,
    /// posted receives are flushed with error completions, which is
    /// how consumers blocked on the receive CQ learn about the
    /// teardown.
    pub fn force_error(&self) {
        self.inner.set_error();
        let flushed: Vec<PostedRecv> = self.inner.recv_queue.borrow_mut().drain(..).collect();
        for r in flushed {
            self.inner.recv_cq.push(Completion {
                wr_id: r.wr_id,
                opcode: Opcode::Recv,
                result: Err(VerbsError::Flushed),
                payload: None,
            });
        }
    }

    fn check_postable(&self) -> Result<(), VerbsError> {
        if self.inner.error.get() {
            return Err(VerbsError::Flushed);
        }
        if !self.inner.connected.get() {
            return Err(VerbsError::NotConnected);
        }
        Ok(())
    }

    /// Post a receive buffer.
    pub fn post_recv(
        &self,
        buffer: Buffer,
        offset: u64,
        len: u64,
        wr_id: WrId,
    ) -> Result<(), VerbsError> {
        if self.inner.error.get() {
            return Err(VerbsError::Flushed);
        }
        if offset + len > buffer.len() {
            return Err(VerbsError::LocalProtection("recv range out of buffer"));
        }
        self.inner.recv_queue.borrow_mut().push_back(PostedRecv {
            buffer,
            offset,
            len,
            wr_id,
        });
        Ok(())
    }

    /// Post a two-sided Send of `data`.
    pub fn post_send(&self, data: Payload, wr_id: WrId, signaled: bool) -> Result<(), VerbsError> {
        self.check_postable()?;
        self.inner
            .wqe_tx
            .send(Wqe::Send {
                wr_id,
                data,
                signaled,
            })
            .map_err(|_| VerbsError::Flushed)
    }

    /// Post an RDMA Write of `data` to `(raddr, rkey)` at the peer.
    pub fn post_rdma_write(
        &self,
        data: Payload,
        raddr: u64,
        rkey: Rkey,
        wr_id: WrId,
        signaled: bool,
    ) -> Result<(), VerbsError> {
        self.check_postable()?;
        self.inner
            .wqe_tx
            .send(Wqe::Write {
                wr_id,
                data,
                raddr,
                rkey,
                signaled,
            })
            .map_err(|_| VerbsError::Flushed)
    }

    /// Post an RDMA Read of `len` bytes from `(raddr, rkey)` at the
    /// peer into `dst` at `dst_off`. Always signaled (the requester
    /// must observe the completion before using the data — §4.1).
    pub fn post_rdma_read(
        &self,
        dst: Buffer,
        dst_off: u64,
        raddr: u64,
        rkey: Rkey,
        len: u64,
        wr_id: WrId,
    ) -> Result<(), VerbsError> {
        self.check_postable()?;
        if dst_off + len > dst.len() {
            return Err(VerbsError::LocalProtection("read dest out of buffer"));
        }
        self.inner
            .wqe_tx
            .send(Wqe::Read {
                wr_id,
                dst,
                dst_off,
                raddr,
                rkey,
                len,
            })
            .map_err(|_| VerbsError::Flushed)
    }
}

/// Per-QP send-queue engine: drains WQEs strictly in post order.
pub(crate) async fn sender_loop(qp: Rc<QpInner>, mut wqe_rx: Receiver<Wqe>) {
    while let Ok(wqe) = wqe_rx.recv().await {
        if qp.error.get() {
            flush_wqe(&qp, wqe);
            continue;
        }
        // HCA WQE processing (doorbell, fetch, DMA setup).
        qp.sim.sleep(qp.cfg.wqe_process).await;
        let peer = qp.peer_node.get();
        qp.sim.trace("wire", || {
            let (kind, len) = match &wqe {
                Wqe::Send { data, .. } => ("send", data.len()),
                Wqe::Write { data, .. } => ("rdma-write", data.len()),
                Wqe::Read { len, .. } => ("rdma-read", *len),
            };
            format!(
                "node{} qp{} {kind} {len}B -> node{}",
                qp.node.0, qp.qpn.0, peer.0
            )
        });
        // Span covers WQE execution up to fabric hand-off; completion
        // propagation is async and traced by the RPC-layer spans.
        let _wqe_span = qp.sim.span(
            "hca",
            match &wqe {
                Wqe::Send { .. } => "send",
                Wqe::Write { .. } => "rdma_write",
                Wqe::Read { .. } => "rdma_read",
            },
        );
        match wqe {
            Wqe::Send {
                wr_id,
                data,
                signaled,
            } => {
                let (ack_tx, ack_rx) = oneshot();
                let bytes = qp.cfg.wire_header_bytes + data.len();
                let lost = qp
                    .fabric
                    .send(
                        qp.node,
                        peer,
                        bytes,
                        WireMsg::Send {
                            dst_qpn: qp.peer_qpn.get(),
                            data: data.clone(),
                            ack: ack_tx,
                        },
                    )
                    .await;
                if let Some(WireMsg::Send { ack, .. }) = lost {
                    // Lost above the link layer: the requester still
                    // sees a successful completion while the peer's ULP
                    // never receives the message. Recovery is the RPC
                    // layer's job (timeout + retransmission).
                    ack.send(Ok(()));
                }
                let qp2 = qp.clone();
                let dlen = data.len();
                qp.sim.clone().spawn(async move {
                    let res = ack_rx.await.unwrap_or(Err(VerbsError::Flushed));
                    // Ack propagation back to the requester.
                    qp2.sim.sleep(qp2.fabric.latency_to(qp2.node)).await;
                    finish(&qp2, wr_id, Opcode::Send, res.map(|()| dlen), signaled);
                });
            }
            Wqe::Write {
                wr_id,
                data,
                raddr,
                rkey,
                signaled,
            } => {
                let (ack_tx, ack_rx) = oneshot();
                let bytes = qp.cfg.wire_header_bytes + data.len();
                let dlen = data.len();
                // RDMA data placement is guaranteed by the RC transport:
                // drops are retransmitted at link level, never surfaced.
                qp.fabric
                    .send_reliable(
                        qp.node,
                        peer,
                        bytes,
                        WireMsg::Write {
                            dst_qpn: qp.peer_qpn.get(),
                            raddr,
                            rkey,
                            data,
                            ack: ack_tx,
                        },
                    )
                    .await;
                let qp2 = qp.clone();
                qp.sim.clone().spawn(async move {
                    let res = ack_rx.await.unwrap_or(Err(VerbsError::Flushed));
                    qp2.sim.sleep(qp2.fabric.latency_to(qp2.node)).await;
                    finish(&qp2, wr_id, Opcode::RdmaWrite, res.map(|()| dlen), signaled);
                });
            }
            Wqe::Read {
                wr_id,
                dst,
                dst_off,
                raddr,
                rkey,
                len,
            } => {
                // ORD: if the outstanding-read window is full, the whole
                // send queue stalls here (head-of-line blocking).
                let permit = qp.ord.acquire().await;
                let (resp_tx, resp_rx) = oneshot();
                qp.fabric
                    .send_reliable(
                        qp.node,
                        peer,
                        qp.cfg.wire_header_bytes + 28, // request only
                        WireMsg::ReadReq {
                            dst_qpn: qp.peer_qpn.get(),
                            raddr,
                            rkey,
                            len,
                            resp: resp_tx,
                        },
                    )
                    .await;
                let qp2 = qp.clone();
                qp.sim.clone().spawn(async move {
                    let res = resp_rx.await.unwrap_or(Err(VerbsError::Flushed));
                    drop(permit);
                    match res {
                        Ok(payload) => {
                            let n = payload.len();
                            dst.write(dst_off, payload);
                            finish(&qp2, wr_id, Opcode::RdmaRead, Ok(n), true);
                        }
                        Err(e) => {
                            finish(&qp2, wr_id, Opcode::RdmaRead, Err(e), true);
                        }
                    }
                });
            }
        }
    }
}

fn finish(
    qp: &Rc<QpInner>,
    wr_id: WrId,
    opcode: Opcode,
    result: Result<u64, VerbsError>,
    signaled: bool,
) {
    let failed = result.is_err();
    if failed {
        qp.set_error();
    }
    if signaled || failed {
        qp.send_cq.push(Completion {
            wr_id,
            opcode,
            result,
            payload: None,
        });
    }
}

fn flush_wqe(qp: &Rc<QpInner>, wqe: Wqe) {
    let (wr_id, opcode) = match &wqe {
        Wqe::Send { wr_id, .. } => (*wr_id, Opcode::Send),
        Wqe::Write { wr_id, .. } => (*wr_id, Opcode::RdmaWrite),
        Wqe::Read { wr_id, .. } => (*wr_id, Opcode::RdmaRead),
    };
    qp.send_cq.push(Completion {
        wr_id,
        opcode,
        result: Err(VerbsError::Flushed),
        payload: None,
    });
}
