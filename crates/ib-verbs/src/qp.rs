//! Reliable-Connection queue pairs.
//!
//! A [`Qp`] processes work-queue elements strictly in post order on a
//! per-QP sender task (as an HCA's send queue does). The ordering rules
//! the paper's designs depend on fall out of the model:
//!
//! * **RDMA Write → Send**: both travel the same FIFO wire in post
//!   order, so the Send's arrival guarantees the Write's data is placed
//!   at the responder — the Read-Write design's correctness argument.
//! * **RDMA Read ↛ Send**: a Read WQE only occupies the send queue for
//!   its *request*; the response returns later. A Send posted after a
//!   Read can therefore arrive at the peer before the Read data has
//!   been placed locally — the requester must block on the Read's
//!   completion first (paper §4.1, "Synchronous RDMA Read").
//! * **ORD head-of-line blocking**: when `max_ord` Reads are in flight,
//!   the next Read WQE stalls the entire send queue.
//!
//! Work requests are submitted to the HCA through a software pending
//! queue that models **doorbell batching**: with
//! [`HcaConfig::doorbell_batch`] > 1, posts accumulate and one doorbell
//! ring (one WQE-processing charge) submits the whole batch. Callers
//! must [`Qp::flush`] at operation boundaries before waiting on a
//! completion; the default depth of 1 rings on every post, preserving
//! the classic behavior.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use sim_core::sync::{channel, oneshot, OneshotSender, Receiver, Semaphore, Sender};
use sim_core::{Counter, Payload, Sim};

use crate::config::HcaConfig;
use crate::cq::{Completion, Cq};
use crate::fabric::Fabric;
use crate::memory::Buffer;
use crate::types::{NodeId, Opcode, QpNum, Rkey, VerbsError, WrId};

/// Messages on the fabric between HCAs.
pub enum WireMsg {
    /// Two-sided Send: channel semantics, consumes a posted receive.
    Send {
        /// Destination queue pair.
        dst_qpn: QpNum,
        /// Message body.
        data: Payload,
        /// Ack/nak path back to the requester.
        ack: OneshotSender<Result<(), VerbsError>>,
    },
    /// One-sided RDMA Write (possibly gathered from several local
    /// pieces; placed contiguously at `raddr` in order).
    Write {
        /// Destination queue pair (for error propagation only).
        dst_qpn: QpNum,
        /// Target virtual address at the responder.
        raddr: u64,
        /// Steering tag authorizing the access.
        rkey: Rkey,
        /// Data to place, as the gather list the WQE carried. The
        /// responder places the pieces back to back — keeping them
        /// separate end to end is what makes the server READ path
        /// copy-free.
        data: Vec<Payload>,
        /// Ack/nak path back to the requester.
        ack: OneshotSender<Result<(), VerbsError>>,
    },
    /// RDMA Read request (the response returns via `resp`).
    ReadReq {
        /// Destination queue pair (IRD accounting, error propagation).
        dst_qpn: QpNum,
        /// Source virtual address at the responder.
        raddr: u64,
        /// Steering tag authorizing the access.
        rkey: Rkey,
        /// Bytes to read.
        len: u64,
        /// Response path carrying the data (or a nak).
        resp: OneshotSender<Result<Payload, VerbsError>>,
    },
}

/// A posted receive buffer.
pub struct PostedRecv {
    /// Buffer the payload will be DMA'd into.
    pub buffer: Buffer,
    /// Offset within the buffer.
    pub offset: u64,
    /// Capacity available.
    pub len: u64,
    /// Echoed in the receive completion.
    pub wr_id: WrId,
}

/// One scatter/gather entry of a vectored work request.
#[derive(Clone, Debug)]
pub struct Sge {
    /// The data this entry contributes.
    pub data: Payload,
    /// Local key of the registration covering the entry. Entries
    /// backed by the privileged all-physical registration use the
    /// global steering tag — and such a WQE may carry only one entry
    /// (the no-local-scatter/gather restriction of the paper's §4.3).
    pub lkey: Rkey,
}

pub(crate) enum Wqe {
    Send {
        wr_id: WrId,
        data: Payload,
        signaled: bool,
    },
    Write {
        wr_id: WrId,
        sgl: Vec<Payload>,
        raddr: u64,
        rkey: Rkey,
        signaled: bool,
    },
    Read {
        wr_id: WrId,
        dst: Buffer,
        dst_off: u64,
        raddr: u64,
        rkey: Rkey,
        len: u64,
    },
}

pub(crate) struct QpInner {
    pub(crate) sim: Sim,
    pub(crate) cfg: HcaConfig,
    pub(crate) node: NodeId,
    pub(crate) qpn: QpNum,
    pub(crate) peer_node: Cell<NodeId>,
    pub(crate) peer_qpn: Cell<QpNum>,
    pub(crate) connected: Cell<bool>,
    pub(crate) error: Cell<bool>,
    pub(crate) fabric: Fabric<WireMsg>,
    pub(crate) send_cq: Cq,
    pub(crate) recv_cq: Cq,
    pub(crate) recv_queue: RefCell<VecDeque<PostedRecv>>,
    /// Shared receive queue; when set, arrivals consume from it instead
    /// of the per-QP queue.
    pub(crate) srq: RefCell<Option<crate::srq::Srq>>,
    /// Outstanding outbound RDMA Reads (requester side).
    pub(crate) ord: Semaphore,
    /// Responder-side read execution engine. RC responders return read
    /// responses strictly in PSN order, so execution is serial per QP;
    /// IRD only bounds how many requests may be queued (enforced by the
    /// peer's ORD in this workspace's configurations).
    pub(crate) read_engine: Semaphore,
    /// Software pending queue: posted WQEs awaiting a doorbell ring.
    pending: RefCell<Vec<Wqe>>,
    /// Rings per doorbell batch (see [`HcaConfig::doorbell_batch`]);
    /// runtime-adjustable per QP so a server can batch while its peer
    /// stays unbatched.
    doorbell_batch: Cell<usize>,
    /// Doorbells rung on this QP.
    doorbells: Cell<u64>,
    /// Shared registry counter (bound by the owning HCA).
    doorbell_metric: RefCell<Option<Rc<Counter>>>,
    /// The HCA's all-physical global steering tag, if enabled — needed
    /// to enforce the no-local-scatter/gather rule at post time.
    pub(crate) global_rkey: Rc<Cell<Option<Rkey>>>,
    wqe_tx: Sender<Vec<Wqe>>,
}

impl QpInner {
    pub(crate) fn set_error(&self) {
        self.error.set(true);
    }
}

/// Handle to a reliable-connection queue pair.
#[derive(Clone)]
pub struct Qp {
    pub(crate) inner: Rc<QpInner>,
}

impl Qp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        sim: Sim,
        cfg: HcaConfig,
        node: NodeId,
        qpn: QpNum,
        fabric: Fabric<WireMsg>,
        send_cq: Cq,
        recv_cq: Cq,
        global_rkey: Rc<Cell<Option<Rkey>>>,
    ) -> (Qp, Receiver<Vec<Wqe>>) {
        let (wqe_tx, wqe_rx) = channel();
        let qp = Qp {
            inner: Rc::new(QpInner {
                sim,
                cfg,
                node,
                qpn,
                peer_node: Cell::new(NodeId(u32::MAX)),
                peer_qpn: Cell::new(QpNum(u32::MAX)),
                connected: Cell::new(false),
                error: Cell::new(false),
                fabric,
                send_cq,
                recv_cq,
                recv_queue: RefCell::new(VecDeque::new()),
                srq: RefCell::new(None),
                ord: Semaphore::new(cfg.max_ord),
                read_engine: Semaphore::new(1),
                pending: RefCell::new(Vec::new()),
                doorbell_batch: Cell::new(cfg.doorbell_batch.max(1)),
                doorbells: Cell::new(0),
                doorbell_metric: RefCell::new(None),
                global_rkey,
                wqe_tx,
            }),
        };
        (qp, wqe_rx)
    }

    /// This QP's number.
    pub fn qpn(&self) -> QpNum {
        self.inner.qpn
    }

    /// The node this QP lives on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The connected peer's node (`NodeId(u32::MAX)` until
    /// [`crate::hca::connect`] pairs this QP).
    pub fn peer_node(&self) -> NodeId {
        self.inner.peer_node.get()
    }

    /// True once [`crate::hca::connect`] has paired this QP.
    pub fn is_connected(&self) -> bool {
        self.inner.connected.get()
    }

    /// True if the QP has transitioned to the error state.
    pub fn is_error(&self) -> bool {
        self.inner.error.get()
    }

    /// The send-side completion queue.
    pub fn send_cq(&self) -> &Cq {
        &self.inner.send_cq
    }

    /// The receive-side completion queue.
    pub fn recv_cq(&self) -> &Cq {
        &self.inner.recv_cq
    }

    /// Number of receives currently posted (per-QP queue only; SRQ
    /// buffers are counted by [`crate::srq::Srq::posted`]).
    pub fn posted_recvs(&self) -> usize {
        self.inner.recv_queue.borrow().len()
    }

    /// Attach a shared receive queue: subsequent arrivals consume SRQ
    /// buffers. Real verbs fix this at creation time; attach before
    /// any traffic for the same effect.
    pub fn set_srq(&self, srq: crate::srq::Srq) {
        *self.inner.srq.borrow_mut() = Some(srq);
    }

    /// Take the next posted receive: SRQ first if attached.
    pub(crate) fn take_recv(&self) -> Option<PostedRecv> {
        if let Some(srq) = self.inner.srq.borrow().as_ref() {
            return srq.pop();
        }
        self.inner.recv_queue.borrow_mut().pop_front()
    }

    /// Force the QP into the error state (failure injection: peer
    /// crash, retry-count exceeded, cable pull). As on real hardware,
    /// posted receives are flushed with error completions, which is
    /// how consumers blocked on the receive CQ learn about the
    /// teardown. WQEs still sitting in the software pending queue are
    /// handed to the engine, which flushes them the same way.
    pub fn force_error(&self) {
        self.inner.set_error();
        // Ring out anything the batcher was holding so its completions
        // (error-flushed) still surface.
        self.flush();
        let flushed: Vec<PostedRecv> = self.inner.recv_queue.borrow_mut().drain(..).collect();
        for r in flushed {
            self.inner.recv_cq.push(Completion {
                wr_id: r.wr_id,
                opcode: Opcode::Recv,
                result: Err(VerbsError::Flushed),
                payload: None,
            });
        }
    }

    fn check_postable(&self) -> Result<(), VerbsError> {
        if self.inner.error.get() {
            return Err(VerbsError::Flushed);
        }
        if !self.inner.connected.get() {
            return Err(VerbsError::NotConnected);
        }
        Ok(())
    }

    /// Post a receive buffer.
    pub fn post_recv(
        &self,
        buffer: Buffer,
        offset: u64,
        len: u64,
        wr_id: WrId,
    ) -> Result<(), VerbsError> {
        if self.inner.error.get() {
            return Err(VerbsError::Flushed);
        }
        if offset + len > buffer.len() {
            return Err(VerbsError::LocalProtection("recv range out of buffer"));
        }
        self.inner.recv_queue.borrow_mut().push_back(PostedRecv {
            buffer,
            offset,
            len,
            wr_id,
        });
        Ok(())
    }

    /// Post a two-sided Send of `data`.
    pub fn post_send(&self, data: Payload, wr_id: WrId, signaled: bool) -> Result<(), VerbsError> {
        self.check_postable()?;
        self.enqueue(Wqe::Send {
            wr_id,
            data,
            signaled,
        })
    }

    /// Post an RDMA Write of `data` to `(raddr, rkey)` at the peer.
    pub fn post_rdma_write(
        &self,
        data: Payload,
        raddr: u64,
        rkey: Rkey,
        wr_id: WrId,
        signaled: bool,
    ) -> Result<(), VerbsError> {
        self.check_postable()?;
        self.enqueue(Wqe::Write {
            wr_id,
            sgl: vec![data],
            raddr,
            rkey,
            signaled,
        })
    }

    /// Post a vectored RDMA Write: one WQE gathers `sges` and places
    /// them contiguously at `(raddr, rkey)`.
    ///
    /// Enforces the hardware SG limits: at most
    /// [`HcaConfig::max_send_sge`] entries, and an entry backed by the
    /// privileged all-physical registration (its lkey is the global
    /// steering tag) must be the *only* entry — all-physical addresses
    /// memory by physical run and the HCA cannot locally scatter/gather
    /// across runs (paper §4.3); such callers post one WQE per run and
    /// lean on doorbell batching instead.
    pub fn post_rdma_write_vec(
        &self,
        sges: Vec<Sge>,
        raddr: u64,
        rkey: Rkey,
        wr_id: WrId,
        signaled: bool,
    ) -> Result<(), VerbsError> {
        self.check_postable()?;
        if sges.is_empty() {
            return Err(VerbsError::InvalidRequest("empty scatter/gather list"));
        }
        if sges.len() > self.inner.cfg.max_send_sge {
            return Err(VerbsError::InvalidRequest("scatter/gather list too long"));
        }
        if sges.len() > 1 {
            if let Some(global) = self.inner.global_rkey.get() {
                if sges.iter().any(|s| s.lkey == global) {
                    return Err(VerbsError::LocalProtection(
                        "all-physical registration cannot local scatter/gather",
                    ));
                }
            }
        }
        self.enqueue(Wqe::Write {
            wr_id,
            sgl: sges.into_iter().map(|s| s.data).collect(),
            raddr,
            rkey,
            signaled,
        })
    }

    /// Post an RDMA Read of `len` bytes from `(raddr, rkey)` at the
    /// peer into `dst` at `dst_off`. Always signaled (the requester
    /// must observe the completion before using the data — §4.1).
    pub fn post_rdma_read(
        &self,
        dst: Buffer,
        dst_off: u64,
        raddr: u64,
        rkey: Rkey,
        len: u64,
        wr_id: WrId,
    ) -> Result<(), VerbsError> {
        self.check_postable()?;
        if dst_off + len > dst.len() {
            return Err(VerbsError::LocalProtection("read dest out of buffer"));
        }
        self.enqueue(Wqe::Read {
            wr_id,
            dst,
            dst_off,
            raddr,
            rkey,
            len,
        })
    }

    /// Queue a WQE in the software pending queue, ringing the doorbell
    /// when the batch depth is reached.
    fn enqueue(&self, wqe: Wqe) -> Result<(), VerbsError> {
        let depth = {
            let mut pending = self.inner.pending.borrow_mut();
            pending.push(wqe);
            pending.len()
        };
        if depth >= self.inner.doorbell_batch.get() {
            self.flush();
        }
        Ok(())
    }

    /// Ring the doorbell: submit every pending WQE to the HCA engine as
    /// one batch. A no-op when nothing is pending. Callers running with
    /// a batch depth > 1 must flush at operation boundaries — before
    /// waiting on any completion of a pending WQE, and on connection
    /// quiesce.
    pub fn flush(&self) {
        let batch: Vec<Wqe> = std::mem::take(&mut *self.inner.pending.borrow_mut());
        if batch.is_empty() {
            return;
        }
        self.inner.doorbells.set(self.inner.doorbells.get() + 1);
        if let Some(m) = self.inner.doorbell_metric.borrow().as_ref() {
            m.inc();
        }
        // A send on a torn-down engine loses the batch; the QP is (or
        // is about to be) in the error state and receives flush there.
        let _ = self.inner.wqe_tx.send(batch);
    }

    /// Override the doorbell batch depth for this QP (takes effect for
    /// subsequent posts; depth 0 is clamped to 1).
    pub fn set_doorbell_batch(&self, depth: usize) {
        self.inner.doorbell_batch.set(depth.max(1));
    }

    /// Doorbells rung on this QP so far.
    pub fn doorbells(&self) -> u64 {
        self.inner.doorbells.get()
    }

    /// Report doorbell rings into a shared registry counter.
    pub fn bind_doorbell_metric(&self, counter: Rc<Counter>) {
        *self.inner.doorbell_metric.borrow_mut() = Some(counter);
    }
}

/// Per-QP send-queue engine: drains doorbell batches strictly in post
/// order. The WQE-processing charge (doorbell write, WQE fetch, DMA
/// setup) is paid once per doorbell ring — amortizing it across the
/// batch is the point of doorbell batching.
pub(crate) async fn sender_loop(qp: Rc<QpInner>, mut wqe_rx: Receiver<Vec<Wqe>>) {
    while let Ok(batch) = wqe_rx.recv().await {
        // HCA processing for this doorbell (skipped when the QP is
        // already flushing errors).
        if !qp.error.get() {
            qp.sim.sleep(qp.cfg.wqe_process).await;
        }
        for wqe in batch {
            run_wqe(&qp, wqe).await;
        }
    }
}

/// Execute one WQE (fabric hand-off plus async completion).
async fn run_wqe(qp: &Rc<QpInner>, wqe: Wqe) {
    if qp.error.get() {
        flush_wqe(qp, wqe);
        return;
    }
    let peer = qp.peer_node.get();
    qp.sim.trace("wire", || {
        let (kind, len) = match &wqe {
            Wqe::Send { data, .. } => ("send", data.len()),
            Wqe::Write { sgl, .. } => ("rdma-write", sgl.iter().map(|p| p.len()).sum()),
            Wqe::Read { len, .. } => ("rdma-read", *len),
        };
        format!(
            "node{} qp{} {kind} {len}B -> node{}",
            qp.node.0, qp.qpn.0, peer.0
        )
    });
    // Span covers WQE execution up to fabric hand-off; completion
    // propagation is async and traced by the RPC-layer spans.
    let _wqe_span = qp.sim.span(
        "hca",
        match &wqe {
            Wqe::Send { .. } => "send",
            Wqe::Write { .. } => "rdma_write",
            Wqe::Read { .. } => "rdma_read",
        },
    );
    match wqe {
        Wqe::Send {
            wr_id,
            data,
            signaled,
        } => {
            let (ack_tx, ack_rx) = oneshot();
            let bytes = qp.cfg.wire_header_bytes + data.len();
            let lost = qp
                .fabric
                .send(
                    qp.node,
                    peer,
                    bytes,
                    WireMsg::Send {
                        dst_qpn: qp.peer_qpn.get(),
                        data: data.clone(),
                        ack: ack_tx,
                    },
                )
                .await;
            if let Some(WireMsg::Send { ack, .. }) = lost {
                // Lost above the link layer: the requester still
                // sees a successful completion while the peer's ULP
                // never receives the message. Recovery is the RPC
                // layer's job (timeout + retransmission).
                ack.send(Ok(()));
            }
            let qp2 = qp.clone();
            let dlen = data.len();
            qp.sim.clone().spawn(async move {
                let res = ack_rx.await.unwrap_or(Err(VerbsError::Flushed));
                // Ack propagation back to the requester.
                qp2.sim.sleep(qp2.fabric.latency_to(qp2.node)).await;
                finish(&qp2, wr_id, Opcode::Send, res.map(|()| dlen), signaled);
            });
        }
        Wqe::Write {
            wr_id,
            sgl,
            raddr,
            rkey,
            signaled,
        } => {
            let (ack_tx, ack_rx) = oneshot();
            let dlen: u64 = sgl.iter().map(|p| p.len()).sum();
            let bytes = qp.cfg.wire_header_bytes + dlen;
            // RDMA data placement is guaranteed by the RC transport:
            // drops are retransmitted at link level, never surfaced.
            qp.fabric
                .send_reliable(
                    qp.node,
                    peer,
                    bytes,
                    WireMsg::Write {
                        dst_qpn: qp.peer_qpn.get(),
                        raddr,
                        rkey,
                        data: sgl,
                        ack: ack_tx,
                    },
                )
                .await;
            let qp2 = qp.clone();
            qp.sim.clone().spawn(async move {
                let res = ack_rx.await.unwrap_or(Err(VerbsError::Flushed));
                qp2.sim.sleep(qp2.fabric.latency_to(qp2.node)).await;
                finish(&qp2, wr_id, Opcode::RdmaWrite, res.map(|()| dlen), signaled);
            });
        }
        Wqe::Read {
            wr_id,
            dst,
            dst_off,
            raddr,
            rkey,
            len,
        } => {
            // ORD: if the outstanding-read window is full, the whole
            // send queue stalls here (head-of-line blocking).
            let permit = qp.ord.acquire().await;
            let (resp_tx, resp_rx) = oneshot();
            qp.fabric
                .send_reliable(
                    qp.node,
                    peer,
                    qp.cfg.wire_header_bytes + 28, // request only
                    WireMsg::ReadReq {
                        dst_qpn: qp.peer_qpn.get(),
                        raddr,
                        rkey,
                        len,
                        resp: resp_tx,
                    },
                )
                .await;
            let qp2 = qp.clone();
            qp.sim.clone().spawn(async move {
                let res = resp_rx.await.unwrap_or(Err(VerbsError::Flushed));
                drop(permit);
                match res {
                    Ok(payload) => {
                        let n = payload.len();
                        dst.write(dst_off, payload);
                        finish(&qp2, wr_id, Opcode::RdmaRead, Ok(n), true);
                    }
                    Err(e) => {
                        finish(&qp2, wr_id, Opcode::RdmaRead, Err(e), true);
                    }
                }
            });
        }
    }
}

fn finish(
    qp: &Rc<QpInner>,
    wr_id: WrId,
    opcode: Opcode,
    result: Result<u64, VerbsError>,
    signaled: bool,
) {
    let failed = result.is_err();
    if failed {
        qp.set_error();
    }
    if signaled || failed {
        qp.send_cq.push(Completion {
            wr_id,
            opcode,
            result,
            payload: None,
        });
    }
}

fn flush_wqe(qp: &Rc<QpInner>, wqe: Wqe) {
    let (wr_id, opcode) = match &wqe {
        Wqe::Send { wr_id, .. } => (*wr_id, Opcode::Send),
        Wqe::Write { wr_id, .. } => (*wr_id, Opcode::RdmaWrite),
        Wqe::Read { wr_id, .. } => (*wr_id, Opcode::RdmaRead),
    };
    qp.send_cq.push(Completion {
        wr_id,
        opcode,
        result: Err(VerbsError::Flushed),
        payload: None,
    });
}
