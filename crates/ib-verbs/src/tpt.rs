//! The HCA's Translation & Protection Table.
//!
//! Every RDMA operation targeting this HCA is checked against the TPT:
//! the steering tag must exist and be valid, the address range must lie
//! inside the registered region, and the op must match the region's
//! access rights — exactly the checks a real HCA performs, and exactly
//! what a malicious client probes when it guesses steering tags
//! (paper §4.1, "Server buffers exposed").
//!
//! The TPT also keeps the workspace's security ledger: how many bytes
//! were remotely exposed for how long. The Read-Read vs Read-Write
//! security comparison in the `security_audit` example reads straight
//! from it.

use std::collections::HashMap;
use std::rc::Rc;

use sim_core::stats::Counter;
use sim_core::{MetricsRegistry, SimRng, SimTime};

use crate::memory::Buffer;
use crate::types::{Access, Rkey, VerbsError};

/// One registered region.
#[derive(Clone)]
pub struct TptEntry {
    /// Backing buffer.
    pub buffer: Buffer,
    /// First registered virtual address.
    pub base: u64,
    /// Registered length, bytes.
    pub len: u64,
    /// Access rights.
    pub access: Access,
    /// When the entry became valid (for exposure accounting).
    pub since: SimTime,
}

/// The kind of remote operation being validated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RemoteOp {
    /// Peer reads our memory (RDMA Read responder side).
    Read,
    /// Peer writes our memory (RDMA Write target side).
    Write,
}

/// Cumulative security ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExposureReport {
    /// Integral of remotely-exposed bytes over time (byte·ns), counting
    /// closed exposure windows only — call [`Tpt::exposure_report`] to
    /// fold in currently-open windows.
    pub byte_ns: u128,
    /// Bytes exposed right now.
    pub current_bytes: u64,
    /// Number of registrations that ever granted remote access.
    pub exposures: u64,
    /// Remote-access validation failures (attack probes, bugs).
    pub violations: u64,
    /// Registrations force-invalidated by policy (exposure TTL expiry,
    /// quarantine teardown) rather than by their owner's deregister.
    pub revocations: u64,
}

/// Translation & Protection Table for one HCA.
pub struct Tpt {
    entries: HashMap<u32, TptEntry>,
    /// Steering tags pre-allocated to FMR pools; dynamic registration
    /// must never mint one of these.
    reserved: std::collections::HashSet<u32>,
    rng: SimRng,
    global_rkey: Rkey,
    /// Whether the privileged all-physical steering tag is enabled.
    global_enabled: bool,
    closed_byte_ns: u128,
    exposures: u64,
    violations: u64,
    revocations: u64,
    /// Registry-backed mirrors of the ledger counters (shared series
    /// across every HCA in the simulation), bound by
    /// [`Tpt::bind_metrics`].
    metrics: Option<TptMetrics>,
}

struct TptMetrics {
    violations: Rc<Counter>,
    revocations: Rc<Counter>,
}

impl Tpt {
    /// Create a TPT with randomized steering tags drawn from `rng`.
    pub fn new(mut rng: SimRng) -> Self {
        let global_rkey = Rkey(rng.next_u32() | 1);
        Tpt {
            entries: HashMap::new(),
            reserved: std::collections::HashSet::new(),
            rng,
            global_rkey,
            global_enabled: false,
            closed_byte_ns: 0,
            exposures: 0,
            violations: 0,
            revocations: 0,
            metrics: None,
        }
    }

    /// Mirror the ledger's violation/revocation counters onto the
    /// simulation's metrics registry (`tpt.violations`,
    /// `tpt.revocations`). Counters are shared by name, so every HCA
    /// in a simulation feeds the same series and `chaos`/`adversary`
    /// snapshots carry them without extra plumbing.
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(TptMetrics {
            violations: registry.counter("tpt.violations"),
            revocations: registry.counter("tpt.revocations"),
        });
    }

    fn count_violation(&mut self) {
        self.violations += 1;
        if let Some(m) = &self.metrics {
            m.violations.inc();
        }
    }

    /// Record a forced invalidation that bypasses the TPT (all-physical
    /// registrations have no entry to remove; the pinning still had to
    /// be torn down by policy).
    pub fn note_revocation(&mut self) {
        self.revocations += 1;
        if let Some(m) = &self.metrics {
            m.revocations.inc();
        }
    }

    /// Force-invalidate an entry by policy (TTL expiry, quarantine):
    /// closes the exposure window like [`Tpt::invalidate`] and records
    /// the revocation in the ledger.
    pub fn revoke(&mut self, rkey: Rkey, now: SimTime) -> Option<TptEntry> {
        let e = self.invalidate(rkey, now)?;
        self.note_revocation();
        Some(e)
    }

    /// Install a new entry and return its steering tag.
    pub fn insert(
        &mut self,
        buffer: Buffer,
        base: u64,
        len: u64,
        access: Access,
        now: SimTime,
    ) -> Rkey {
        let rkey = loop {
            let k = self.rng.next_u32();
            // Never collide with the global key, a live entry, or a
            // steering tag pre-allocated to an FMR pool.
            if k != self.global_rkey.0
                && !self.entries.contains_key(&k)
                && !self.reserved.contains(&k)
            {
                break Rkey(k);
            }
        };
        self.insert_with_key(rkey, buffer, base, len, access, now);
        rkey
    }

    /// Install an entry under a pre-allocated steering tag (FMR remap).
    pub fn insert_with_key(
        &mut self,
        rkey: Rkey,
        buffer: Buffer,
        base: u64,
        len: u64,
        access: Access,
        now: SimTime,
    ) {
        if access.remotely_exposed() {
            self.exposures += 1;
        }
        let prev = self.entries.insert(
            rkey.0,
            TptEntry {
                buffer,
                base,
                len,
                access,
                since: now,
            },
        );
        assert!(prev.is_none(), "steering tag reuse while valid: {rkey:?}");
    }

    /// Invalidate an entry, closing its exposure window.
    pub fn invalidate(&mut self, rkey: Rkey, now: SimTime) -> Option<TptEntry> {
        let e = self.entries.remove(&rkey.0)?;
        if e.access.remotely_exposed() {
            self.closed_byte_ns += e.len as u128 * now.saturating_since(e.since).as_nanos() as u128;
        }
        Some(e)
    }

    /// Pre-allocate `n` unique steering tags for an FMR pool. The tags
    /// are excluded from dynamic allocation for the TPT's lifetime.
    pub fn reserve_keys(&mut self, n: usize) -> Vec<Rkey> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let k = self.rng.next_u32();
            if k != self.global_rkey.0 && !self.entries.contains_key(&k) && self.reserved.insert(k)
            {
                out.push(Rkey(k));
            }
        }
        out
    }

    /// Enable the privileged all-physical steering tag and return it.
    /// Only "kernel" consumers should call this (paper §4.3).
    pub fn enable_global_rkey(&mut self) -> Rkey {
        self.global_enabled = true;
        self.global_rkey
    }

    /// The privileged steering tag, if enabled.
    pub fn global_rkey(&self) -> Option<Rkey> {
        self.global_enabled.then_some(self.global_rkey)
    }

    /// Validate a remote operation. On success returns the target buffer
    /// and the byte offset within it. `lookup_any` resolves an address
    /// through the host's full memory map for the global steering tag.
    pub fn check_remote(
        &mut self,
        rkey: Rkey,
        addr: u64,
        len: u64,
        op: RemoteOp,
        now: SimTime,
        lookup_any: impl FnOnce(u64, u64) -> Option<Buffer>,
    ) -> Result<(Buffer, u64), VerbsError> {
        let _ = now;
        if self.global_enabled && rkey == self.global_rkey {
            // All-physical mode: any valid host memory is reachable.
            return match lookup_any(addr, len) {
                Some(buf) => {
                    let off = buf.offset_of(addr);
                    Ok((buf, off))
                }
                None => {
                    self.count_violation();
                    Err(VerbsError::RemoteAccess {
                        rkey,
                        reason: "global rkey: address not mapped",
                    })
                }
            };
        }
        let Some(e) = self.entries.get(&rkey.0) else {
            self.count_violation();
            return Err(VerbsError::RemoteAccess {
                rkey,
                reason: "no such steering tag",
            });
        };
        if addr < e.base || addr + len > e.base + e.len {
            self.count_violation();
            return Err(VerbsError::RemoteAccess {
                rkey,
                reason: "out of registered bounds",
            });
        }
        let allowed = match op {
            RemoteOp::Read => e.access.allows_remote_read(),
            RemoteOp::Write => e.access.allows_remote_write(),
        };
        if !allowed {
            self.count_violation();
            return Err(VerbsError::RemoteAccess {
                rkey,
                reason: "access rights do not permit operation",
            });
        }
        let off = e.buffer.offset_of(addr);
        Ok((e.buffer.clone(), off))
    }

    /// Snapshot the security ledger, folding still-open exposure windows
    /// up to `now`.
    pub fn exposure_report(&self, now: SimTime) -> ExposureReport {
        let mut byte_ns = self.closed_byte_ns;
        let mut current = 0u64;
        for e in self.entries.values() {
            if e.access.remotely_exposed() {
                current += e.len;
                byte_ns += e.len as u128 * now.saturating_since(e.since).as_nanos() as u128;
            }
        }
        ExposureReport {
            byte_ns,
            current_bytes: current,
            exposures: self.exposures,
            violations: self.violations,
            revocations: self.revocations,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probability that a uniformly guessed 32-bit steering tag hits a
    /// live remotely-readable entry (used by the security audit).
    pub fn guess_hit_probability(&self) -> f64 {
        let readable = self
            .entries
            .values()
            .filter(|e| e.access.allows_remote_read())
            .count() as f64;
        let global = if self.global_enabled { 1.0 } else { 0.0 };
        (readable + global) / 2f64.powi(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{HostMem, PhysLayout};
    use crate::types::NodeId;

    fn setup() -> (Tpt, Buffer) {
        let mem = HostMem::new(NodeId(0), PhysLayout::default(), SimRng::new(3));
        let buf = mem.alloc(8192);
        (Tpt::new(SimRng::new(5)), buf)
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn valid_access_succeeds() {
        let (mut tpt, buf) = setup();
        let rkey = tpt.insert(buf.clone(), buf.addr(), 4096, Access::REMOTE_READ, t(0));
        let (b, off) = tpt
            .check_remote(rkey, buf.addr() + 100, 200, RemoteOp::Read, t(1), |_, _| {
                None
            })
            .unwrap();
        assert_eq!(off, 100);
        assert_eq!(b.addr(), buf.addr());
    }

    #[test]
    fn unknown_rkey_rejected_and_counted() {
        let (mut tpt, _) = setup();
        let err = tpt
            .check_remote(Rkey(0x1234), 0, 1, RemoteOp::Read, t(0), |_, _| None)
            .unwrap_err();
        assert!(matches!(err, VerbsError::RemoteAccess { .. }));
        assert_eq!(tpt.exposure_report(t(0)).violations, 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (mut tpt, buf) = setup();
        let rkey = tpt.insert(buf.clone(), buf.addr(), 4096, Access::REMOTE_READ, t(0));
        assert!(tpt
            .check_remote(
                rkey,
                buf.addr() + 4000,
                200,
                RemoteOp::Read,
                t(0),
                |_, _| None
            )
            .is_err());
        // Below base too.
        assert!(tpt
            .check_remote(
                rkey,
                buf.addr().wrapping_sub(4),
                4,
                RemoteOp::Read,
                t(0),
                |_, _| None
            )
            .is_err());
    }

    #[test]
    fn rights_are_enforced_per_op() {
        let (mut tpt, buf) = setup();
        let r = tpt.insert(buf.clone(), buf.addr(), 4096, Access::REMOTE_WRITE, t(0));
        assert!(tpt
            .check_remote(r, buf.addr(), 4, RemoteOp::Write, t(0), |_, _| None)
            .is_ok());
        assert!(tpt
            .check_remote(r, buf.addr(), 4, RemoteOp::Read, t(0), |_, _| None)
            .is_err());
    }

    #[test]
    fn local_only_regions_never_remotely_accessible() {
        let (mut tpt, buf) = setup();
        let r = tpt.insert(buf.clone(), buf.addr(), 4096, Access::LOCAL, t(0));
        assert!(tpt
            .check_remote(r, buf.addr(), 4, RemoteOp::Read, t(0), |_, _| None)
            .is_err());
        assert!(tpt
            .check_remote(r, buf.addr(), 4, RemoteOp::Write, t(0), |_, _| None)
            .is_err());
        // Local-only registration is not an exposure.
        assert_eq!(tpt.exposure_report(t(0)).current_bytes, 0);
        assert_eq!(tpt.exposure_report(t(0)).exposures, 0);
    }

    #[test]
    fn invalidated_key_stops_working() {
        let (mut tpt, buf) = setup();
        let r = tpt.insert(buf.clone(), buf.addr(), 4096, Access::REMOTE_READ, t(0));
        tpt.invalidate(r, t(10)).unwrap();
        assert!(tpt
            .check_remote(r, buf.addr(), 4, RemoteOp::Read, t(11), |_, _| None)
            .is_err());
    }

    #[test]
    fn exposure_accounting_integrates_bytes_over_time() {
        let (mut tpt, buf) = setup();
        let r = tpt.insert(buf.clone(), buf.addr(), 1000, Access::REMOTE_READ, t(100));
        // Open window at t=600: 1000 bytes * 500ns.
        let rep = tpt.exposure_report(t(600));
        assert_eq!(rep.byte_ns, 500_000);
        assert_eq!(rep.current_bytes, 1000);
        tpt.invalidate(r, t(1100)).unwrap();
        let rep = tpt.exposure_report(t(9999));
        assert_eq!(rep.byte_ns, 1_000_000); // closed at 1000ns duration
        assert_eq!(rep.current_bytes, 0);
        assert_eq!(rep.exposures, 1);
    }

    #[test]
    fn revocation_closes_window_and_counts() {
        let (mut tpt, buf) = setup();
        let r = tpt.insert(buf.clone(), buf.addr(), 1000, Access::REMOTE_READ, t(0));
        let e = tpt.revoke(r, t(500)).expect("live entry revokes");
        assert_eq!(e.len, 1000);
        // The steering tag is dead and the ledger shows one revocation
        // with the exposure window closed at 500ns.
        assert!(tpt
            .check_remote(r, buf.addr(), 4, RemoteOp::Read, t(501), |_, _| None)
            .is_err());
        let rep = tpt.exposure_report(t(9999));
        assert_eq!(rep.revocations, 1);
        assert_eq!(rep.byte_ns, 500_000);
        assert_eq!(rep.current_bytes, 0);
        // Revoking an already-dead tag is a no-op, not a double count.
        assert!(tpt.revoke(r, t(600)).is_none());
        assert_eq!(tpt.exposure_report(t(9999)).revocations, 1);
    }

    #[test]
    fn bound_metrics_mirror_ledger() {
        let (mut tpt, buf) = setup();
        let registry = sim_core::MetricsRegistry::new();
        tpt.bind_metrics(&registry);
        let r = tpt.insert(buf.clone(), buf.addr(), 64, Access::REMOTE_READ, t(0));
        let _ = tpt.check_remote(Rkey(1), buf.addr(), 4, RemoteOp::Read, t(1), |_, _| None);
        tpt.revoke(r, t(2)).unwrap();
        tpt.note_revocation();
        assert_eq!(registry.get("tpt.violations"), Some(1));
        assert_eq!(registry.get("tpt.revocations"), Some(2));
        let rep = tpt.exposure_report(t(3));
        assert_eq!(rep.violations, 1);
        assert_eq!(rep.revocations, 2);
    }

    #[test]
    fn global_rkey_reaches_any_mapped_buffer() {
        let mem = HostMem::new(NodeId(0), PhysLayout::default(), SimRng::new(3));
        let buf = mem.alloc(4096);
        let mut tpt = Tpt::new(SimRng::new(5));
        let g = tpt.enable_global_rkey();
        let buf2 = buf.clone();
        let (b, off) = tpt
            .check_remote(g, buf.addr() + 8, 16, RemoteOp::Read, t(0), move |a, l| {
                buf2.contains(a, l).then_some(buf2.clone())
            })
            .unwrap();
        assert_eq!(off, 8);
        assert_eq!(b.addr(), buf.addr());
        // Unmapped address fails even with the global key.
        assert!(tpt
            .check_remote(g, 0x42, 16, RemoteOp::Read, t(0), |_, _| None)
            .is_err());
    }

    #[test]
    fn global_rkey_disabled_by_default() {
        let (mut tpt, buf) = setup();
        // Guessing the (disabled) global key value must fail.
        let g = Rkey(tpt.global_rkey.0);
        assert!(tpt.global_rkey().is_none());
        let b2 = buf.clone();
        assert!(tpt
            .check_remote(g, buf.addr(), 4, RemoteOp::Read, t(0), move |a, l| b2
                .contains(a, l)
                .then_some(b2.clone()))
            .is_err());
    }

    #[test]
    fn guess_probability_scales_with_entries() {
        let (mut tpt, buf) = setup();
        assert_eq!(tpt.guess_hit_probability(), 0.0);
        let _r1 = tpt.insert(buf.clone(), buf.addr(), 128, Access::REMOTE_READ, t(0));
        let _r2 = tpt.insert(
            buf.clone(),
            buf.addr() + 128,
            128,
            Access::REMOTE_READ,
            t(0),
        );
        let _rw = tpt.insert(
            buf.clone(),
            buf.addr() + 256,
            128,
            Access::REMOTE_WRITE,
            t(0),
        );
        let p = tpt.guess_hit_probability();
        assert!((p - 2.0 / 2f64.powi(32)).abs() < 1e-18);
    }

    #[test]
    fn steering_tags_are_unpredictable_across_rng_streams() {
        let (mut t1, buf) = setup();
        let mut t2 = Tpt::new(SimRng::new(999));
        let a = t1.insert(buf.clone(), buf.addr(), 64, Access::REMOTE_READ, t(0));
        let b = t2.insert(buf.clone(), buf.addr(), 64, Access::REMOTE_READ, t(0));
        assert_ne!(a, b);
    }
}
