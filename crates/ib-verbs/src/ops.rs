//! Communication-primitive property matrix (paper Table 1).
//!
//! The paper classifies InfiniBand operations into *Channel primitives*
//! (Send/Receive, two-sided) and *Memory primitives* (RDMA Read/Write,
//! one-sided) along four security/involvement axes. This module states
//! the matrix as data so the `table1` bench target can print it and the
//! test suite can verify each property against the simulator's actual
//! behaviour.

/// Properties of a communication-primitive class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrimitiveProperties {
    /// Human-readable class name.
    pub name: &'static str,
    /// Is the receive-side buffer exposed to the remote peer (can the
    /// peer target arbitrary offsets in it)?
    pub receive_buffer_exposed: bool,
    /// Must the receiver pre-post a buffer before the data can land?
    pub receive_buffer_pre_posted: bool,
    /// Does the operation carry a steering tag naming remote memory?
    pub steering_tag: bool,
    /// Does using the primitive require a prior message exchange to
    /// communicate the buffer address and steering tag (rendezvous)?
    pub rendezvous: bool,
}

/// Channel primitives: RDMA Send + RDMA Receive.
pub const CHANNEL: PrimitiveProperties = PrimitiveProperties {
    name: "Channel Primitives (Send/Receive)",
    receive_buffer_exposed: false,
    receive_buffer_pre_posted: true,
    steering_tag: false,
    rendezvous: false,
};

/// Memory primitives: RDMA Write + RDMA Read.
pub const MEMORY: PrimitiveProperties = PrimitiveProperties {
    name: "Memory Primitives (RDMA Read/Write)",
    receive_buffer_exposed: true,
    receive_buffer_pre_posted: false,
    steering_tag: true,
    rendezvous: true,
};

/// The full Table 1 matrix, row-major: (property, channel, memory).
pub fn table1_rows() -> Vec<(&'static str, bool, bool)> {
    vec![
        (
            "Receive Buffer Exposed",
            CHANNEL.receive_buffer_exposed,
            MEMORY.receive_buffer_exposed,
        ),
        (
            "Receive Buffer Pre-Posted",
            CHANNEL.receive_buffer_pre_posted,
            MEMORY.receive_buffer_pre_posted,
        ),
        ("Steering Tag", CHANNEL.steering_tag, MEMORY.steering_tag),
        ("Rendezvous", CHANNEL.rendezvous, MEMORY.rendezvous),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn matrix_matches_paper_table1() {
        // Paper Table 1: channel primitives only tick "pre-posted";
        // memory primitives tick the other three.
        assert!(!CHANNEL.receive_buffer_exposed);
        assert!(CHANNEL.receive_buffer_pre_posted);
        assert!(!CHANNEL.steering_tag);
        assert!(!CHANNEL.rendezvous);

        assert!(MEMORY.receive_buffer_exposed);
        assert!(!MEMORY.receive_buffer_pre_posted);
        assert!(MEMORY.steering_tag);
        assert!(MEMORY.rendezvous);
    }

    #[test]
    fn rows_cover_all_four_properties() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        let ticks_channel = rows.iter().filter(|(_, c, _)| *c).count();
        let ticks_memory = rows.iter().filter(|(_, _, m)| *m).count();
        assert_eq!(ticks_channel, 1);
        assert_eq!(ticks_memory, 3);
    }
}
