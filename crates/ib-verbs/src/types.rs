//! Identifiers, access rights and error types for the simulated verbs
//! interface. Shapes follow the InfiniBand Architecture Specification
//! (rel. 1.2) closely enough that the RPC/RDMA layer above reads like
//! its kernel counterpart.

use core::fmt;

/// A node (host) on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Queue pair number, unique per HCA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QpNum(pub u32);

/// A 32-bit steering tag (remote key). Handing one of these to a peer
/// is what "exposes" a buffer — the heart of the paper's security
/// argument.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rkey(pub u32);

impl fmt::Debug for Rkey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rkey:{:08x}", self.0)
    }
}

/// Work request identifier, echoed in the matching completion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct WrId(pub u64);

/// Memory-region access rights.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Access(u8);

impl Access {
    /// Local read/write only (DMA by the owning HCA).
    pub const LOCAL: Access = Access(0);
    /// Peer may RDMA Read this region.
    pub const REMOTE_READ: Access = Access(1);
    /// Peer may RDMA Write this region.
    pub const REMOTE_WRITE: Access = Access(2);

    /// Combine rights.
    pub const fn union(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }

    /// True if the region is visible to remote peers at all.
    pub const fn remotely_exposed(self) -> bool {
        self.0 != 0
    }

    /// True if remote reads are allowed.
    pub const fn allows_remote_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if remote writes are allowed.
    pub const fn allows_remote_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// Raw flag bits (stable; usable as a map key).
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl std::ops::BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        self.union(rhs)
    }
}

/// Completion / verb errors. Mirrors the IB completion status codes the
/// modelled protocol paths can hit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerbsError {
    /// rkey unknown, out of bounds, wrong rights or already invalidated.
    RemoteAccess {
        /// The offending steering tag.
        rkey: Rkey,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Local buffer reference out of bounds or unregistered.
    LocalProtection(&'static str),
    /// A Send arrived with no posted receive buffer (receiver not ready).
    ReceiverNotReady,
    /// Posted receive buffer too small for the arriving Send.
    ReceiveTooSmall {
        /// Incoming message length.
        needed: u64,
        /// Size of the posted buffer.
        have: u64,
    },
    /// QP transitioned to the error state; work request flushed.
    Flushed,
    /// QP not connected / peer unknown.
    NotConnected,
    /// FMR pool exhausted or region larger than the pool's max size;
    /// caller must fall back to regular registration.
    FmrUnavailable(&'static str),
    /// ORD/IRD misconfiguration or other immediate post failure.
    InvalidRequest(&'static str),
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::RemoteAccess { rkey, reason } => {
                write!(f, "remote access error on {rkey:?}: {reason}")
            }
            VerbsError::LocalProtection(r) => write!(f, "local protection error: {r}"),
            VerbsError::ReceiverNotReady => write!(f, "receiver not ready (no posted receive)"),
            VerbsError::ReceiveTooSmall { needed, have } => {
                write!(f, "posted receive too small: need {needed}, have {have}")
            }
            VerbsError::Flushed => write!(f, "work request flushed (QP in error state)"),
            VerbsError::NotConnected => write!(f, "queue pair not connected"),
            VerbsError::FmrUnavailable(r) => write!(f, "FMR unavailable: {r}"),
            VerbsError::InvalidRequest(r) => write!(f, "invalid request: {r}"),
        }
    }
}

impl std::error::Error for VerbsError {}

/// Opcode recorded in completions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Opcode {
    /// Two-sided send (channel semantics).
    Send,
    /// Receive completion for an incoming Send.
    Recv,
    /// One-sided RDMA Write.
    RdmaWrite,
    /// One-sided RDMA Read.
    RdmaRead,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flags_compose() {
        let rw = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(rw.allows_remote_read());
        assert!(rw.allows_remote_write());
        assert!(rw.remotely_exposed());
        assert!(!Access::LOCAL.remotely_exposed());
        assert!(!Access::REMOTE_READ.allows_remote_write());
        assert!(!Access::REMOTE_WRITE.allows_remote_read());
    }

    #[test]
    fn errors_display() {
        let e = VerbsError::RemoteAccess {
            rkey: Rkey(0xdeadbeef),
            reason: "bounds",
        };
        assert!(e.to_string().contains("deadbeef"));
        assert!(VerbsError::ReceiverNotReady.to_string().contains("posted"));
    }
}
