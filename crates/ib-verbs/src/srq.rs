//! Shared Receive Queues.
//!
//! With per-QP receive queues, a server must pre-post a full credit
//! window of buffers for *every* client connection, even idle ones —
//! the buffer-management scaling problem the paper's future work calls
//! out. An SRQ pools posted receives across all QPs attached to it:
//! buffer demand tracks the *aggregate* arrival rate instead of the
//! connection count. (Linux's NFS/RDMA server adopted SRQs for exactly
//! this reason.)

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use sim_core::stats::Counter;

use crate::memory::Buffer;
use crate::qp::PostedRecv;
use crate::types::{VerbsError, WrId};

struct SrqInner {
    queue: RefCell<VecDeque<PostedRecv>>,
    /// Buffers consumed by arrivals (diagnostic).
    consumed: Cell<u64>,
    /// Low-water notification threshold.
    limit: Cell<usize>,
    /// Times the queue dipped below the limit after a pop.
    limit_events: Cell<u64>,
    /// Registry mirrors of `consumed` / `limit_events`, when bound:
    /// the pool's burn rate and low-water pressure become visible in
    /// metric snapshots without polling the private cells.
    metrics: RefCell<Option<(Rc<Counter>, Rc<Counter>)>>,
}

/// A shared receive queue; attach to QPs at connect time.
#[derive(Clone)]
pub struct Srq {
    inner: Rc<SrqInner>,
}

impl Default for Srq {
    fn default() -> Self {
        Self::new()
    }
}

impl Srq {
    /// An empty SRQ.
    pub fn new() -> Srq {
        Srq {
            inner: Rc::new(SrqInner {
                queue: RefCell::new(VecDeque::new()),
                consumed: Cell::new(0),
                limit: Cell::new(0),
                limit_events: Cell::new(0),
                metrics: RefCell::new(None),
            }),
        }
    }

    /// Post a receive buffer to the shared pool.
    pub fn post_recv(
        &self,
        buffer: Buffer,
        offset: u64,
        len: u64,
        wr_id: WrId,
    ) -> Result<(), VerbsError> {
        if offset + len > buffer.len() {
            return Err(VerbsError::LocalProtection("srq recv range out of buffer"));
        }
        self.inner.queue.borrow_mut().push_back(PostedRecv {
            buffer,
            offset,
            len,
            wr_id,
        });
        Ok(())
    }

    /// Arm the low-water mark: [`Srq::limit_events`] counts pops that
    /// leave fewer than `limit` buffers (consumers use this to re-post
    /// in batches, the classic SRQ-limit pattern).
    pub fn set_limit(&self, limit: usize) {
        self.inner.limit.set(limit);
    }

    /// Buffers currently posted.
    pub fn posted(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    /// Buffers consumed by arrivals so far.
    pub fn consumed(&self) -> u64 {
        self.inner.consumed.get()
    }

    /// Times the pool dipped below the armed limit.
    pub fn limit_events(&self) -> u64 {
        self.inner.limit_events.get()
    }

    /// Mirror `consumed` / `limit_events` onto registry counters
    /// (conventionally `hca.srq.consumed` / `hca.srq.limit_events`).
    /// Increments happen at pop time, so the registry stays exact
    /// without any sampling task.
    pub fn bind_metrics(&self, consumed: Rc<Counter>, limit_events: Rc<Counter>) {
        *self.inner.metrics.borrow_mut() = Some((consumed, limit_events));
    }

    pub(crate) fn pop(&self) -> Option<PostedRecv> {
        let r = self.inner.queue.borrow_mut().pop_front();
        if r.is_some() {
            self.inner.consumed.set(self.inner.consumed.get() + 1);
            let dipped = self.inner.queue.borrow().len() < self.inner.limit.get();
            if dipped {
                self.inner
                    .limit_events
                    .set(self.inner.limit_events.get() + 1);
            }
            if let Some((consumed, limit_events)) = self.inner.metrics.borrow().as_ref() {
                consumed.inc();
                if dipped {
                    limit_events.inc();
                }
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{HostMem, PhysLayout};
    use crate::types::NodeId;
    use sim_core::SimRng;

    #[test]
    fn bound_metrics_mirror_pool_counters() {
        let mem = HostMem::new(NodeId(0), PhysLayout::default(), SimRng::new(3));
        let srq = Srq::new();
        for i in 0..4u64 {
            srq.post_recv(mem.alloc(256), 0, 256, WrId(i)).unwrap();
        }
        srq.set_limit(2);
        let registry = sim_core::MetricsRegistry::new();
        srq.bind_metrics(
            registry.counter("hca.srq.consumed"),
            registry.counter("hca.srq.limit_events"),
        );
        for _ in 0..3 {
            assert!(srq.pop().is_some());
        }
        // Three buffers burned; only the pop that left 1 < limit(2)
        // posted buffers counts as a limit event.
        assert_eq!(srq.consumed(), 3);
        assert_eq!(srq.limit_events(), 1);
        assert_eq!(registry.get("hca.srq.consumed"), Some(3));
        assert_eq!(registry.get("hca.srq.limit_events"), Some(1));
    }
}
