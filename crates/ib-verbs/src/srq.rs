//! Shared Receive Queues.
//!
//! With per-QP receive queues, a server must pre-post a full credit
//! window of buffers for *every* client connection, even idle ones —
//! the buffer-management scaling problem the paper's future work calls
//! out. An SRQ pools posted receives across all QPs attached to it:
//! buffer demand tracks the *aggregate* arrival rate instead of the
//! connection count. (Linux's NFS/RDMA server adopted SRQs for exactly
//! this reason.)

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::memory::Buffer;
use crate::qp::PostedRecv;
use crate::types::{VerbsError, WrId};

struct SrqInner {
    queue: RefCell<VecDeque<PostedRecv>>,
    /// Buffers consumed by arrivals (diagnostic).
    consumed: Cell<u64>,
    /// Low-water notification threshold.
    limit: Cell<usize>,
    /// Times the queue dipped below the limit after a pop.
    limit_events: Cell<u64>,
}

/// A shared receive queue; attach to QPs at connect time.
#[derive(Clone)]
pub struct Srq {
    inner: Rc<SrqInner>,
}

impl Default for Srq {
    fn default() -> Self {
        Self::new()
    }
}

impl Srq {
    /// An empty SRQ.
    pub fn new() -> Srq {
        Srq {
            inner: Rc::new(SrqInner {
                queue: RefCell::new(VecDeque::new()),
                consumed: Cell::new(0),
                limit: Cell::new(0),
                limit_events: Cell::new(0),
            }),
        }
    }

    /// Post a receive buffer to the shared pool.
    pub fn post_recv(
        &self,
        buffer: Buffer,
        offset: u64,
        len: u64,
        wr_id: WrId,
    ) -> Result<(), VerbsError> {
        if offset + len > buffer.len() {
            return Err(VerbsError::LocalProtection("srq recv range out of buffer"));
        }
        self.inner.queue.borrow_mut().push_back(PostedRecv {
            buffer,
            offset,
            len,
            wr_id,
        });
        Ok(())
    }

    /// Arm the low-water mark: [`Srq::limit_events`] counts pops that
    /// leave fewer than `limit` buffers (consumers use this to re-post
    /// in batches, the classic SRQ-limit pattern).
    pub fn set_limit(&self, limit: usize) {
        self.inner.limit.set(limit);
    }

    /// Buffers currently posted.
    pub fn posted(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    /// Buffers consumed by arrivals so far.
    pub fn consumed(&self) -> u64 {
        self.inner.consumed.get()
    }

    /// Times the pool dipped below the armed limit.
    pub fn limit_events(&self) -> u64 {
        self.inner.limit_events.get()
    }

    pub(crate) fn pop(&self) -> Option<PostedRecv> {
        let r = self.inner.queue.borrow_mut().pop_front();
        if r.is_some() {
            self.inner.consumed.set(self.inner.consumed.get() + 1);
            if self.inner.queue.borrow().len() < self.inner.limit.get() {
                self.inner
                    .limit_events
                    .set(self.inner.limit_events.get() + 1);
            }
        }
        r
    }
}
