//! HCA and fabric timing/limit parameters.
//!
//! Everything the paper's analysis identifies as a bottleneck is a
//! number here: link rate, the serialized TPT I/O-bus transactions
//! (whose cost scales with the number of pages translated), the
//! IRD/ORD limits, and the responder's serialized RDMA Read execution.
//! Host profiles in the `workloads` crate instantiate these for the
//! paper's SDR Opteron/OpenSolaris and DDR Xeon/Linux testbeds.

use sim_core::SimDuration;

/// Configuration for one simulated HCA (and its fabric port).
#[derive(Clone, Copy, Debug)]
pub struct HcaConfig {
    /// Link payload bandwidth, bytes/second (SDR x8 PCIe ≈ 900 MB/s
    /// effective unidirectional in the paper's testbed).
    pub link_bandwidth: u64,
    /// One-way propagation + switch latency per message.
    pub link_latency: SimDuration,
    /// Per-message wire overhead (LRH/BTH headers, CRCs), bytes.
    pub wire_header_bytes: u64,
    /// HCA processing time per work-queue element (doorbell, WQE fetch,
    /// DMA setup). Serialized per QP.
    pub wqe_process: SimDuration,
    /// Outbound RDMA Read queue depth: max reads this HCA may have in
    /// flight per QP. Mellanox firmware of the era allowed 8. ORD
    /// exhaustion stalls the send queue (head-of-line blocking) — the
    /// paper's §4.1 "Outstanding RDMA Reads" limitation.
    pub max_ord: usize,
    /// Inbound RDMA Read queue depth (responder side). Requests beyond
    /// this are flow-controlled; responses are generated strictly in
    /// order, so the responder executes reads serially per QP.
    pub max_ird: usize,
    /// Responder-side execution time per serviced RDMA Read before the
    /// data flows (request decode, protection check, DMA engine
    /// turnaround). Because RC responders execute in PSN order, this is
    /// serialized per QP — the paper's "serialization of RDMA Reads".
    pub read_turnaround: SimDuration,
    /// CPU cost per page for pinning host memory (unpinning costs half).
    pub pin_per_page: SimDuration,
    /// Dynamic registration: fixed TPT transaction cost.
    pub tpt_register_base: SimDuration,
    /// Dynamic registration: additional TPT cost per page translated.
    pub tpt_register_per_page: SimDuration,
    /// Deregistration: fixed TPT invalidate cost.
    pub tpt_invalidate_base: SimDuration,
    /// Deregistration: additional invalidate cost per page.
    pub tpt_invalidate_per_page: SimDuration,
    /// FMR map: fixed cost (entries pre-allocated at pool creation).
    pub fmr_map_base: SimDuration,
    /// FMR map: per-page translation update cost.
    pub fmr_map_per_page: SimDuration,
    /// FMR unmap: fixed (batched/deferred flush, Mellanox extension).
    pub fmr_unmap: SimDuration,
    /// Number of pre-allocated FMR entries.
    pub fmr_pool_size: usize,
    /// Maximum bytes one FMR entry can map; larger regions must fall
    /// back to dynamic registration.
    pub fmr_max_len: u64,
    /// Work requests accumulated per doorbell ring. Posts collect in a
    /// software pending queue and ring the HCA once the queue reaches
    /// this depth (callers flush explicitly at operation boundaries).
    /// `1` rings on every post — the classic one-doorbell-per-WQE
    /// behavior the batching ablation measures against.
    pub doorbell_batch: usize,
    /// Maximum scatter/gather entries one WQE may carry. Posting more
    /// is an immediate `InvalidRequest`.
    pub max_send_sge: usize,
    /// CQ interrupt moderation: completions accumulated before a parked
    /// consumer is interrupted. `1` interrupts on every completion
    /// (no coalescing).
    pub cq_coalesce_count: usize,
    /// CQ interrupt moderation: longest a completion may wait for
    /// companions before the consumer is interrupted anyway. Only
    /// meaningful when `cq_coalesce_count > 1`.
    pub cq_coalesce_delay: SimDuration,
}

impl HcaConfig {
    /// Parameters approximating the paper's Mellanox SDR x8 PCIe HCA on
    /// the dual-Opteron OpenSolaris testbed.
    pub fn sdr() -> Self {
        HcaConfig {
            link_bandwidth: 900_000_000,
            link_latency: SimDuration::from_nanos(1_300),
            wire_header_bytes: 54,
            wqe_process: SimDuration::from_nanos(1_000),
            max_ord: 8,
            max_ird: 8,
            read_turnaround: SimDuration::from_micros(107),
            pin_per_page: SimDuration::from_nanos(700),
            tpt_register_base: SimDuration::from_micros(30),
            tpt_register_per_page: SimDuration::from_nanos(7_000),
            tpt_invalidate_base: SimDuration::from_micros(20),
            tpt_invalidate_per_page: SimDuration::from_nanos(2_400),
            fmr_map_base: SimDuration::from_micros(25),
            fmr_map_per_page: SimDuration::from_nanos(6_200),
            fmr_unmap: SimDuration::from_micros(80),
            fmr_pool_size: 512,
            fmr_max_len: 1 << 20,
            doorbell_batch: 1,
            max_send_sge: 16,
            cq_coalesce_count: 1,
            cq_coalesce_delay: SimDuration::from_micros(4),
        }
    }

    /// Parameters approximating the DDR HCA on the Xeon/Linux
    /// multi-client testbed (faster link, leaner driver costs).
    pub fn ddr() -> Self {
        HcaConfig {
            link_bandwidth: 1_450_000_000,
            link_latency: SimDuration::from_nanos(1_000),
            tpt_register_base: SimDuration::from_micros(25),
            tpt_register_per_page: SimDuration::from_nanos(5_000),
            tpt_invalidate_base: SimDuration::from_micros(20),
            tpt_invalidate_per_page: SimDuration::from_nanos(1_500),
            fmr_map_base: SimDuration::from_micros(20),
            fmr_map_per_page: SimDuration::from_nanos(3_500),
            fmr_unmap: SimDuration::from_micros(35),
            ..Self::sdr()
        }
    }

    /// Dynamic registration TPT transaction time for `pages`.
    pub fn reg_cost(&self, pages: u64) -> SimDuration {
        self.tpt_register_base + self.tpt_register_per_page * pages
    }

    /// Deregistration TPT transaction time for `pages`.
    pub fn dereg_cost(&self, pages: u64) -> SimDuration {
        self.tpt_invalidate_base + self.tpt_invalidate_per_page * pages
    }

    /// FMR map TPT transaction time for `pages`.
    pub fn fmr_map_cost(&self, pages: u64) -> SimDuration {
        self.fmr_map_base + self.fmr_map_per_page * pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        let sdr = HcaConfig::sdr();
        assert_eq!(sdr.max_ord, 8);
        assert_eq!(sdr.max_ird, 8);
        // FMR must be cheaper than dynamic registration at every size.
        for pages in [1u64, 8, 32, 256] {
            assert!(sdr.fmr_map_cost(pages) < sdr.reg_cost(pages));
        }
        let ddr = HcaConfig::ddr();
        assert!(ddr.link_bandwidth > sdr.link_bandwidth);
        assert!(ddr.reg_cost(32) < sdr.reg_cost(32));
    }

    #[test]
    fn costs_scale_with_pages() {
        let c = HcaConfig::sdr();
        assert!(c.reg_cost(256) > c.reg_cost(32) * 4);
        assert!(c.dereg_cost(32) > c.dereg_cost(1));
    }

    #[test]
    fn batching_defaults_are_off() {
        // Defaults must preserve the unbatched per-WQE behavior so
        // every calibrated curve is unchanged until a profile opts in.
        let c = HcaConfig::sdr();
        assert_eq!(c.doorbell_batch, 1);
        assert_eq!(c.cq_coalesce_count, 1);
        assert!(c.max_send_sge >= 2);
    }
}
