//! Memory regions and the Fast Memory Registration pool.
//!
//! An [`Mr`] is a live TPT entry with an RAII safety net: dropping a
//! still-valid region invalidates it immediately (no dangling steering
//! tags) but counts as a *leak* in [`crate::hca::RegStats`] because the
//! owner skipped the deregistration cost — protocol engines must call
//! [`Mr::deregister`] explicitly, exactly like kernel code must.
//!
//! [`FmrPool`] models the Mellanox Fast Memory Registration extension:
//! TPT entries and steering tags are allocated once at pool creation,
//! so a map operation only pins pages and updates the translation —
//! much cheaper than a dynamic registration, at the cost of a fixed
//! maximum mapping size and pool capacity (paper §4.3).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::hca::Hca;
use crate::memory::Buffer;
use crate::types::{Access, Rkey, VerbsError};

#[derive(Clone, Copy, PartialEq, Eq)]
enum MrKind {
    Dynamic,
    Fmr,
}

/// A registered memory region.
pub struct Mr {
    hca: Hca,
    rkey: Rkey,
    buffer: Buffer,
    base: u64,
    len: u64,
    access: Access,
    pages: u64,
    kind: MrKind,
    pool: Option<FmrPool>,
    valid: Cell<bool>,
}

impl Mr {
    pub(crate) fn new_dynamic(
        hca: Hca,
        rkey: Rkey,
        buffer: Buffer,
        base: u64,
        len: u64,
        access: Access,
        pages: u64,
    ) -> Mr {
        Mr {
            hca,
            rkey,
            buffer,
            base,
            len,
            access,
            pages,
            kind: MrKind::Dynamic,
            pool: None,
            valid: Cell::new(true),
        }
    }

    /// The steering tag. Sending this to a peer is what exposes the
    /// region.
    pub fn rkey(&self) -> Rkey {
        self.rkey
    }

    /// First registered virtual address.
    pub fn addr(&self) -> u64 {
        self.base
    }

    /// Registered length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the region is zero-length (never in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access rights granted at registration.
    pub fn access(&self) -> Access {
        self.access
    }

    /// The backing buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.buffer
    }

    /// True until deregistered/dropped.
    pub fn is_valid(&self) -> bool {
        self.valid.get()
    }

    /// Deregister, paying the TPT invalidate transaction and the unpin
    /// cost. FMR regions pay the (cheaper, batched) FMR unmap cost and
    /// return their steering tag to the pool.
    pub async fn deregister(self) {
        self.retire(false).await;
    }

    /// Force-invalidate by policy (exposure TTL expiry, quarantine):
    /// identical teardown costs to [`Mr::deregister`], but the TPT
    /// ledger records the invalidation as a *revocation* — the owner
    /// did not give the region up, the server took it away.
    pub async fn revoke(self) {
        self.retire(true).await;
    }

    async fn retire(self, forced: bool) {
        debug_assert!(self.valid.get(), "double deregistration");
        self.valid.set(false);
        let hca = self.hca.clone();
        hca.inner.sim.trace("reg", || {
            format!(
                "node{} {} {:?}",
                hca.inner.node.0,
                if forced { "revoke" } else { "deregister" },
                self.rkey
            )
        });
        // Remove from the TPT first (the security-relevant step), then
        // pay the costs.
        {
            let mut tpt = hca.inner.tpt.borrow_mut();
            let now = hca.inner.sim.now();
            if forced {
                tpt.revoke(self.rkey, now);
            } else {
                tpt.invalidate(self.rkey, now);
            }
        }
        match self.kind {
            MrKind::Dynamic => {
                hca.inner
                    .tpt_engine
                    .use_for(hca.inner.cfg.dereg_cost(self.pages))
                    .await;
                hca.inner.stats.borrow_mut().deregs += 1;
            }
            MrKind::Fmr => {
                hca.inner.tpt_engine.use_for(hca.inner.cfg.fmr_unmap).await;
                hca.inner.stats.borrow_mut().fmr_unmaps += 1;
                if let Some(pool) = &self.pool {
                    pool.release(self.rkey);
                }
            }
        }
        hca.unpin_pages(self.pages).await;
    }
}

impl Drop for Mr {
    fn drop(&mut self) {
        if self.valid.get() {
            // Safety net: never leave a dangling steering tag, but
            // record that the owner skipped proper deregistration.
            self.hca
                .inner
                .tpt
                .borrow_mut()
                .invalidate(self.rkey, self.hca.inner.sim.now());
            self.hca.inner.stats.borrow_mut().leaked_mrs += 1;
            if self.kind == MrKind::Fmr {
                if let Some(pool) = &self.pool {
                    pool.release(self.rkey);
                }
            }
        }
    }
}

struct FmrPoolInner {
    free: RefCell<Vec<Rkey>>,
    max_len: u64,
    fallbacks: Cell<u64>,
}

/// A pool of pre-allocated FMR entries.
#[derive(Clone)]
pub struct FmrPool {
    hca: Hca,
    inner: Rc<FmrPoolInner>,
}

impl FmrPool {
    /// Allocate `size` FMR entries able to map up to `max_len` bytes
    /// each. The allocation happens once, off the critical path.
    pub fn new(hca: &Hca, size: usize, max_len: u64) -> FmrPool {
        let free = hca.inner.tpt.borrow_mut().reserve_keys(size);
        FmrPool {
            hca: hca.clone(),
            inner: Rc::new(FmrPoolInner {
                free: RefCell::new(free),
                max_len,
                fallbacks: Cell::new(0),
            }),
        }
    }

    /// Create a pool using the HCA config's size/limit.
    pub fn from_config(hca: &Hca) -> FmrPool {
        FmrPool::new(hca, hca.config().fmr_pool_size, hca.config().fmr_max_len)
    }

    /// Map a buffer range through a pooled FMR entry. Fails (so the
    /// caller can fall back to dynamic registration) if the range
    /// exceeds `max_len` or the pool is empty.
    pub async fn map(
        &self,
        buffer: &Buffer,
        offset: u64,
        len: u64,
        access: Access,
    ) -> Result<Mr, VerbsError> {
        assert!(offset + len <= buffer.len(), "fmr map out of bounds");
        if len > self.inner.max_len {
            self.inner.fallbacks.set(self.inner.fallbacks.get() + 1);
            return Err(VerbsError::FmrUnavailable("region exceeds FMR max size"));
        }
        let rkey = {
            let mut free = self.inner.free.borrow_mut();
            match free.pop() {
                Some(k) => k,
                None => {
                    self.inner.fallbacks.set(self.inner.fallbacks.get() + 1);
                    return Err(VerbsError::FmrUnavailable("pool exhausted"));
                }
            }
        };
        let hca = &self.hca;
        let pages = len.div_ceil(crate::memory::PAGE_SIZE).max(1);
        hca.pin_pages(pages).await;
        hca.inner
            .tpt_engine
            .use_for(hca.inner.cfg.fmr_map_cost(pages))
            .await;
        let base = buffer.addr() + offset;
        hca.inner.tpt.borrow_mut().insert_with_key(
            rkey,
            buffer.clone(),
            base,
            len,
            access,
            hca.inner.sim.now(),
        );
        hca.inner.stats.borrow_mut().fmr_maps += 1;
        Ok(Mr {
            hca: hca.clone(),
            rkey,
            buffer: buffer.clone(),
            base,
            len,
            access,
            pages,
            kind: MrKind::Fmr,
            pool: Some(self.clone()),
            valid: Cell::new(true),
        })
    }

    /// Entries currently available.
    pub fn available(&self) -> usize {
        self.inner.free.borrow().len()
    }

    /// Times a caller had to fall back to dynamic registration.
    pub fn fallbacks(&self) -> u64 {
        self.inner.fallbacks.get()
    }

    /// Largest mappable region.
    pub fn max_len(&self) -> u64 {
        self.inner.max_len
    }

    fn release(&self, rkey: Rkey) {
        self.inner.free.borrow_mut().push(rkey);
    }
}
