//! # ib-verbs — a software InfiniBand verbs implementation
//!
//! A behaviourally faithful, deterministic simulation of the InfiniBand
//! Reliable Connection service as seen by a kernel ULP like RPC/RDMA:
//!
//! * **Queue pairs** ([`Qp`]) processing work requests in post order,
//!   with completion queues ([`Cq`]) that charge interrupt costs only
//!   when consumers actually park.
//! * **Memory registration** with a per-HCA Translation & Protection
//!   Table ([`tpt::Tpt`]), 32-bit randomized steering tags, serialized
//!   TPT-engine transactions (the paper's registration bottleneck),
//!   [`FmrPool`] fast registration, and the privileged all-physical
//!   global steering tag.
//! * **Enforced protection**: every RDMA op is validated against the
//!   TPT (tag, bounds, rights) and protocol violations transition the
//!   QP to the error state, exactly like real hardware. The TPT keeps a
//!   security ledger (exposed bytes × time, violation counts) used by
//!   the paper's security comparison.
//! * **IB ordering semantics** the NFS/RDMA designs depend on:
//!   Write→Send placement ordering, *no* Read→Send ordering, IRD/ORD
//!   read-depth limits with head-of-line blocking.
//! * A **cut-through switched fabric** ([`Fabric`]) whose per-port
//!   wires are the contended resources behind every bandwidth curve.
//!
//! The paper's testbed hardware (Mellanox SDR/DDR HCAs) is captured as
//! [`HcaConfig`] profiles; see `DESIGN.md` for the substitution
//! rationale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod cq;

pub mod fabric;
pub mod hca;
pub mod memory;
pub mod mr;
pub mod ops;
pub mod qp;
pub mod srq;
pub mod tpt;
pub mod types;

pub use config::HcaConfig;
pub use cq::{Completion, Cq};
pub use fabric::{Fabric, FaultConfig};
pub use hca::{connect, Hca, RegStats};
pub use memory::{Buffer, HostMem, PhysLayout, PAGE_SIZE};
pub use mr::{FmrPool, Mr};
pub use qp::{Qp, Sge, WireMsg};
pub use sim_core::extent;
pub use srq::Srq;
pub use tpt::{ExposureReport, RemoteOp};
pub use types::{Access, NodeId, Opcode, QpNum, Rkey, VerbsError, WrId};
