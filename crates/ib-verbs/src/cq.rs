//! Completion queues with interrupt-cost modelling.
//!
//! A consumer that finds the queue non-empty is *polling* and pays
//! nothing; a consumer that parks and is woken by a new completion pays
//! one interrupt on its host CPU. This is how the Read-Write design's
//! elimination of the `RDMA_DONE` message shows up as reduced server
//! CPU load (paper §4.2).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::task::Waker;

use sim_core::{Cpu, Payload};

use crate::types::{Opcode, VerbsError, WrId};

/// A work completion.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Echo of the work request id.
    pub wr_id: WrId,
    /// Which operation completed.
    pub opcode: Opcode,
    /// Byte count on success, error status otherwise.
    pub result: Result<u64, VerbsError>,
    /// For receive completions: the arrived data (also placed in the
    /// posted buffer).
    pub payload: Option<Payload>,
}

impl Completion {
    /// True if the completion carries an error status.
    pub fn is_err(&self) -> bool {
        self.result.is_err()
    }
}

struct CqInner {
    queue: VecDeque<Completion>,
    waker: Option<Waker>,
    pushed: u64,
    interrupts: u64,
}

/// A completion queue bound to a host CPU for interrupt accounting.
#[derive(Clone)]
pub struct Cq {
    inner: Rc<RefCell<CqInner>>,
    cpu: Cpu,
}

impl Cq {
    /// Create a CQ whose interrupts are charged to `cpu`.
    pub fn new(cpu: Cpu) -> Self {
        Cq {
            inner: Rc::new(RefCell::new(CqInner {
                queue: VecDeque::new(),
                waker: None,
                pushed: 0,
                interrupts: 0,
            })),
            cpu,
        }
    }

    /// Deliver a completion (called by the HCA).
    pub fn push(&self, c: Completion) {
        let mut inner = self.inner.borrow_mut();
        inner.queue.push_back(c);
        inner.pushed += 1;
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
    }

    /// Take the next completion without blocking (polling mode, no
    /// interrupt cost).
    pub fn poll(&self) -> Option<Completion> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Await the next completion. If the queue was empty and this task
    /// parked, the wakeup costs one interrupt on the host CPU.
    pub async fn next(&self) -> Completion {
        if let Some(c) = self.poll() {
            return c;
        }
        // Park until a push wakes us.
        std::future::poll_fn(|cx| {
            let mut inner = self.inner.borrow_mut();
            if inner.queue.is_empty() {
                inner.waker = Some(cx.waker().clone());
                std::task::Poll::Pending
            } else {
                std::task::Poll::Ready(())
            }
        })
        .await;
        {
            self.inner.borrow_mut().interrupts += 1;
        }
        self.cpu.interrupt().await;
        self.poll().expect("completion vanished after wake")
    }

    /// Completions delivered so far.
    pub fn delivered(&self) -> u64 {
        self.inner.borrow().pushed
    }

    /// Interrupts taken by consumers of this CQ.
    pub fn interrupts(&self) -> u64 {
        self.inner.borrow().interrupts
    }

    /// Outstanding (unconsumed) completions.
    pub fn depth(&self) -> usize {
        self.inner.borrow().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{CpuCosts, SimDuration, SimTime, Simulation};

    fn cq_on(sim: &Simulation) -> (Cq, Cpu) {
        let cpu = Cpu::new(
            &sim.handle(),
            "host",
            1,
            CpuCosts {
                interrupt_ns: 5_000,
                ..Default::default()
            },
        );
        (Cq::new(cpu.clone()), cpu)
    }

    fn comp(id: u64) -> Completion {
        Completion {
            wr_id: WrId(id),
            opcode: Opcode::Send,
            result: Ok(0),
            payload: None,
        }
    }

    #[test]
    fn polled_completion_is_free() {
        let mut sim = Simulation::new(1);
        let (cq, cpu) = cq_on(&sim);
        cq.push(comp(1));
        let c = sim.block_on({
            let cq = cq.clone();
            async move { cq.next().await }
        });
        assert_eq!(c.wr_id, WrId(1));
        assert_eq!(cpu.busy_time(), SimDuration::ZERO);
        assert_eq!(cq.interrupts(), 0);
    }

    #[test]
    fn parked_wakeup_costs_interrupt() {
        let mut sim = Simulation::new(1);
        let (cq, cpu) = cq_on(&sim);
        let h = sim.handle();
        let cq2 = cq.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::from_micros(10)).await;
            cq2.push(comp(7));
        });
        let cq3 = cq.clone();
        let c = sim.block_on(async move { cq3.next().await });
        assert_eq!(c.wr_id, WrId(7));
        assert_eq!(cpu.busy_time(), SimDuration::from_micros(5));
        assert_eq!(cq.interrupts(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(15_000));
    }

    #[test]
    fn fifo_order() {
        let mut sim = Simulation::new(1);
        let (cq, _) = cq_on(&sim);
        cq.push(comp(1));
        cq.push(comp(2));
        cq.push(comp(3));
        let ids = sim.block_on({
            let cq = cq.clone();
            async move {
                let mut v = Vec::new();
                for _ in 0..3 {
                    v.push(cq.next().await.wr_id.0);
                }
                v
            }
        });
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(cq.delivered(), 3);
        assert_eq!(cq.depth(), 0);
    }
}
