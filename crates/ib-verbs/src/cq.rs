//! Completion queues with interrupt-cost modelling and interrupt
//! moderation (completion coalescing).
//!
//! A consumer that finds the queue non-empty is *polling* and pays
//! nothing; a consumer that parks and is woken by a new completion pays
//! one interrupt on its host CPU. This is how the Read-Write design's
//! elimination of the `RDMA_DONE` message shows up as reduced server
//! CPU load (paper §4.2).
//!
//! With coalescing enabled ([`Cq::with_coalescing`]) a parked consumer
//! is not interrupted per completion: the HCA holds the interrupt until
//! either `count` completions have accumulated or the moderation timer
//! expires, so a burst of server RDMA Writes costs one interrupt
//! instead of N. Completions still drain from one FIFO in push (post)
//! order — moderation delays the *wakeup*, never reorders the queue —
//! which keeps every sweep deterministic even when QPs share a CQ.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::task::Waker;

use sim_core::{Counter, Cpu, Payload, Sim, SimDuration};

use crate::types::{Opcode, VerbsError, WrId};

/// A work completion.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Echo of the work request id.
    pub wr_id: WrId,
    /// Which operation completed.
    pub opcode: Opcode,
    /// Byte count on success, error status otherwise.
    pub result: Result<u64, VerbsError>,
    /// For receive completions: the arrived data (also placed in the
    /// posted buffer).
    pub payload: Option<Payload>,
}

impl Completion {
    /// True if the completion carries an error status.
    pub fn is_err(&self) -> bool {
        self.result.is_err()
    }
}

struct CqInner {
    queue: VecDeque<Completion>,
    waker: Option<Waker>,
    pushed: u64,
    interrupts: u64,
    /// Completions that rode an interrupt another completion paid for
    /// (everything beyond the first drained per parked wakeup).
    coalesced: u64,
    /// Generation of the armed moderation timer; bumping it cancels the
    /// in-flight timer without tracking the task.
    timer_gen: u64,
    timer_armed: bool,
    /// Shared registry counters (bound by the owning HCA).
    interrupts_metric: Option<Rc<Counter>>,
    coalesced_metric: Option<Rc<Counter>>,
}

impl CqInner {
    /// Wake the parked consumer, cancelling any armed moderation timer.
    fn fire(&mut self) {
        self.timer_gen += 1;
        self.timer_armed = false;
        if let Some(w) = self.waker.take() {
            w.wake();
        }
    }
}

/// A completion queue bound to a host CPU for interrupt accounting.
#[derive(Clone)]
pub struct Cq {
    inner: Rc<RefCell<CqInner>>,
    cpu: Cpu,
    /// Completions to accumulate before interrupting a parked consumer.
    coalesce_count: usize,
    /// Interrupt moderation timeout (bounds completion latency when a
    /// batch never fills).
    coalesce_delay: SimDuration,
    /// Needed to arm moderation timers; `None` means no coalescing.
    sim: Option<Sim>,
}

impl Cq {
    /// Create a CQ whose interrupts are charged to `cpu`. Interrupt
    /// moderation is off: every completion wakes a parked consumer.
    pub fn new(cpu: Cpu) -> Self {
        Cq {
            inner: Rc::new(RefCell::new(CqInner {
                queue: VecDeque::new(),
                waker: None,
                pushed: 0,
                interrupts: 0,
                coalesced: 0,
                timer_gen: 0,
                timer_armed: false,
                interrupts_metric: None,
                coalesced_metric: None,
            })),
            cpu,
            coalesce_count: 1,
            coalesce_delay: SimDuration::ZERO,
            sim: None,
        }
    }

    /// Create a CQ with interrupt moderation: a parked consumer is
    /// interrupted once `count` completions are pending, or `delay`
    /// after the first pending completion, whichever comes first.
    /// `count <= 1` behaves exactly like [`Cq::new`].
    pub fn with_coalescing(cpu: Cpu, sim: &Sim, count: usize, delay: SimDuration) -> Self {
        let mut cq = Cq::new(cpu);
        if count > 1 {
            cq.coalesce_count = count;
            cq.coalesce_delay = delay;
            cq.sim = Some(sim.clone());
        }
        cq
    }

    /// Report interrupt/coalescing totals into shared registry counters
    /// (in addition to the per-CQ accessors).
    pub fn bind_metrics(&self, interrupts: Rc<Counter>, coalesced: Rc<Counter>) {
        let mut inner = self.inner.borrow_mut();
        inner.interrupts_metric = Some(interrupts);
        inner.coalesced_metric = Some(coalesced);
    }

    /// Deliver a completion (called by the HCA).
    pub fn push(&self, c: Completion) {
        let mut inner = self.inner.borrow_mut();
        inner.queue.push_back(c);
        inner.pushed += 1;
        if inner.waker.is_none() {
            // Consumer is not parked (polling or mid-drain): nothing to
            // moderate.
            return;
        }
        if self.coalesce_count <= 1 || inner.queue.len() >= self.coalesce_count {
            inner.fire();
        } else if !inner.timer_armed {
            // First pending completion of a batch: arm the moderation
            // timer so latency stays bounded if the batch never fills.
            inner.timer_armed = true;
            let gen = inner.timer_gen;
            let sim = self.sim.clone().expect("coalescing without sim");
            let timer_sim = sim.clone();
            let delay = self.coalesce_delay;
            let weak = Rc::downgrade(&self.inner);
            sim.spawn(async move {
                timer_sim.sleep(delay).await;
                if let Some(inner) = weak.upgrade() {
                    let mut inner = inner.borrow_mut();
                    if inner.timer_armed && inner.timer_gen == gen && !inner.queue.is_empty() {
                        inner.fire();
                    }
                }
            });
        }
    }

    /// Take the next completion without blocking (polling mode, no
    /// interrupt cost).
    pub fn poll(&self) -> Option<Completion> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Await the next completion. If the queue was empty and this task
    /// parked, the wakeup costs one interrupt on the host CPU; with
    /// moderation enabled the interrupt is delayed until a batch
    /// accumulates (or the timer fires), and every completion drained
    /// beyond the first is counted as coalesced.
    pub async fn next(&self) -> Completion {
        if let Some(c) = self.poll() {
            return c;
        }
        // Park until a push (or the moderation timer) wakes us.
        std::future::poll_fn(|cx| {
            let mut inner = self.inner.borrow_mut();
            if inner.queue.is_empty() {
                inner.waker = Some(cx.waker().clone());
                std::task::Poll::Pending
            } else {
                std::task::Poll::Ready(())
            }
        })
        .await;
        {
            let mut inner = self.inner.borrow_mut();
            inner.interrupts += 1;
            if let Some(m) = &inner.interrupts_metric {
                m.inc();
            }
            let extra = inner.queue.len().saturating_sub(1) as u64;
            inner.coalesced += extra;
            if extra > 0 {
                if let Some(m) = &inner.coalesced_metric {
                    m.add(extra);
                }
            }
        }
        self.cpu.interrupt().await;
        self.poll().expect("completion vanished after wake")
    }

    /// Completions delivered so far.
    pub fn delivered(&self) -> u64 {
        self.inner.borrow().pushed
    }

    /// Interrupts taken by consumers of this CQ.
    pub fn interrupts(&self) -> u64 {
        self.inner.borrow().interrupts
    }

    /// Completions that shared an interrupt another completion paid for.
    pub fn coalesced(&self) -> u64 {
        self.inner.borrow().coalesced
    }

    /// Outstanding (unconsumed) completions.
    pub fn depth(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Identity of the underlying queue (distinguishes shared CQs).
    pub(crate) fn id(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{CpuCosts, SimDuration, SimTime, Simulation};

    fn cq_on(sim: &Simulation) -> (Cq, Cpu) {
        let cpu = Cpu::new(
            &sim.handle(),
            "host",
            1,
            CpuCosts {
                interrupt_ns: 5_000,
                ..Default::default()
            },
        );
        (Cq::new(cpu.clone()), cpu)
    }

    fn comp(id: u64) -> Completion {
        Completion {
            wr_id: WrId(id),
            opcode: Opcode::Send,
            result: Ok(0),
            payload: None,
        }
    }

    #[test]
    fn polled_completion_is_free() {
        let mut sim = Simulation::new(1);
        let (cq, cpu) = cq_on(&sim);
        cq.push(comp(1));
        let c = sim.block_on({
            let cq = cq.clone();
            async move { cq.next().await }
        });
        assert_eq!(c.wr_id, WrId(1));
        assert_eq!(cpu.busy_time(), SimDuration::ZERO);
        assert_eq!(cq.interrupts(), 0);
    }

    #[test]
    fn parked_wakeup_costs_interrupt() {
        let mut sim = Simulation::new(1);
        let (cq, cpu) = cq_on(&sim);
        let h = sim.handle();
        let cq2 = cq.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::from_micros(10)).await;
            cq2.push(comp(7));
        });
        let cq3 = cq.clone();
        let c = sim.block_on(async move { cq3.next().await });
        assert_eq!(c.wr_id, WrId(7));
        assert_eq!(cpu.busy_time(), SimDuration::from_micros(5));
        assert_eq!(cq.interrupts(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(15_000));
    }

    #[test]
    fn fifo_order() {
        let mut sim = Simulation::new(1);
        let (cq, _) = cq_on(&sim);
        cq.push(comp(1));
        cq.push(comp(2));
        cq.push(comp(3));
        let ids = sim.block_on({
            let cq = cq.clone();
            async move {
                let mut v = Vec::new();
                for _ in 0..3 {
                    v.push(cq.next().await.wr_id.0);
                }
                v
            }
        });
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(cq.delivered(), 3);
        assert_eq!(cq.depth(), 0);
    }

    fn coalescing_cq_on(sim: &Simulation, count: usize, delay_us: u64) -> (Cq, Cpu) {
        let cpu = Cpu::new(
            &sim.handle(),
            "host",
            1,
            CpuCosts {
                interrupt_ns: 5_000,
                ..Default::default()
            },
        );
        let cq = Cq::with_coalescing(
            cpu.clone(),
            &sim.handle(),
            count,
            SimDuration::from_micros(delay_us),
        );
        (cq, cpu)
    }

    #[test]
    fn burst_costs_one_interrupt_when_coalesced() {
        let mut sim = Simulation::new(1);
        let (cq, cpu) = coalescing_cq_on(&sim, 4, 100);
        let h = sim.handle();
        let cq2 = cq.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::from_micros(10)).await;
            for i in 0..4 {
                cq2.push(comp(i));
            }
        });
        let cq3 = cq.clone();
        let ids = sim.block_on(async move {
            let mut v = Vec::new();
            for _ in 0..4 {
                v.push(cq3.next().await.wr_id.0);
            }
            v
        });
        assert_eq!(ids, vec![0, 1, 2, 3], "drain stays in push order");
        assert_eq!(cq.interrupts(), 1, "one interrupt for the burst");
        assert_eq!(cq.coalesced(), 3);
        assert_eq!(cpu.busy_time(), SimDuration::from_micros(5));
    }

    #[test]
    fn moderation_timer_bounds_latency_of_partial_batch() {
        let mut sim = Simulation::new(1);
        let (cq, _cpu) = coalescing_cq_on(&sim, 8, 20);
        let h = sim.handle();
        let cq2 = cq.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::from_micros(10)).await;
            cq2.push(comp(9)); // lone completion, batch never fills
        });
        let cq3 = cq.clone();
        let c = sim.block_on(async move { cq3.next().await });
        assert_eq!(c.wr_id, WrId(9));
        assert_eq!(cq.interrupts(), 1);
        assert_eq!(cq.coalesced(), 0);
        // Arrived at 10µs, held 20µs by the moderation timer, then a
        // 5µs interrupt: consumed at 35µs.
        assert_eq!(sim.now(), SimTime::from_nanos(35_000));
    }

    #[test]
    fn polling_consumer_never_pays_moderation_delay() {
        let mut sim = Simulation::new(1);
        let (cq, cpu) = coalescing_cq_on(&sim, 4, 100);
        cq.push(comp(1));
        let c = sim.block_on({
            let cq = cq.clone();
            async move { cq.next().await }
        });
        assert_eq!(c.wr_id, WrId(1));
        assert_eq!(cpu.busy_time(), SimDuration::ZERO);
        assert_eq!(cq.interrupts(), 0);
        assert_eq!(sim.now(), SimTime::from_nanos(0));
    }

    #[test]
    fn threshold_wakeup_cancels_moderation_timer() {
        // Fill the batch before the timer expires: the consumer wakes
        // at the threshold push and the stale timer is a no-op.
        let mut sim = Simulation::new(1);
        let (cq, _cpu) = coalescing_cq_on(&sim, 2, 50);
        let h = sim.handle();
        let cq2 = cq.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::from_micros(5)).await;
            cq2.push(comp(1));
            cq2.push(comp(2));
        });
        let cq3 = cq.clone();
        let h2 = sim.handle();
        let drained_at = sim.block_on(async move {
            let a = cq3.next().await;
            let b = cq3.next().await;
            assert_eq!((a.wr_id.0, b.wr_id.0), (1, 2));
            h2.now()
        });
        assert_eq!(cq.interrupts(), 1);
        // Woken at the 2nd push (5µs) + 5µs interrupt — not at 55µs
        // when the stale timer would have fired.
        assert_eq!(drained_at, SimTime::from_nanos(10_000));
    }
}
