//! Property tests for the ONC RPC message codec: headers round-trip
//! exactly, byte soup never panics either decoder, and a hostile
//! opaque-length field (the auth cred/verf bodies) can never pull
//! bytes from beyond the message.

use bytes::Bytes;
use onc_rpc::msg::{decode_call, decode_reply, encode_call, encode_reply};
use onc_rpc::{AcceptStat, CallHeader, ReplyHeader};
use proptest::prelude::*;
use xdr::Encoder;

/// The decoded body is the raw remainder of the message: the original
/// bytes plus XDR padding to the 4-byte boundary (XDR argument bodies
/// are self-delimiting, so the padding is harmless).
fn body_matches(decoded: &Bytes, original: &Bytes) -> bool {
    decoded.len() == original.len().next_multiple_of(4)
        && decoded[..original.len()] == original[..]
        && decoded[original.len()..].iter().all(|&b| b == 0)
}

fn arb_call() -> impl Strategy<Value = CallHeader> {
    (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
        |(xid, prog, vers, proc_num)| CallHeader {
            xid,
            prog,
            vers,
            proc_num,
        },
    )
}

fn arb_stat() -> impl Strategy<Value = AcceptStat> {
    prop_oneof![
        Just(AcceptStat::Success),
        Just(AcceptStat::ProgUnavail),
        Just(AcceptStat::ProcUnavail),
        Just(AcceptStat::GarbageArgs),
    ]
}

proptest! {
    #[test]
    fn call_roundtrips_with_any_body(
        hdr in arb_call(),
        body in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let body = Bytes::from(body);
        let (h2, b2) = decode_call(encode_call(&hdr, &body)).unwrap();
        prop_assert_eq!(h2, hdr);
        prop_assert!(body_matches(&b2, &body));
    }

    #[test]
    fn reply_roundtrips_with_any_body(
        xid in any::<u32>(),
        stat in arb_stat(),
        body in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let hdr = ReplyHeader { xid, stat };
        let body = Bytes::from(body);
        let (h2, b2) = decode_reply(encode_reply(&hdr, &body)).unwrap();
        prop_assert_eq!(h2, hdr);
        prop_assert!(body_matches(&b2, &body));
    }

    /// Neither decoder panics on arbitrary bytes — they are the first
    /// thing a hostile RPC payload reaches after the RDMA header.
    #[test]
    fn decoders_never_panic_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = decode_call(Bytes::from(bytes.clone()));
        let _ = decode_reply(Bytes::from(bytes));
    }

    /// An auth cred whose declared opaque length runs past the end of
    /// the message is rejected, whatever length is claimed — the
    /// decoder must bound every read by the bytes actually present.
    #[test]
    fn oversized_auth_opaque_rejected(
        xid in any::<u32>(),
        claimed in 1u32..=u32::MAX,
    ) {
        let mut enc = Encoder::new();
        enc.put_u32(xid)
            .put_u32(0) // CALL
            .put_u32(2) // RPC version
            .put_u32(100003)
            .put_u32(3)
            .put_u32(0)
            .put_u32(0) // cred flavor AUTH_NONE
            .put_u32(claimed); // cred body length with no body behind it
        prop_assert!(decode_call(enc.finish()).is_err());
    }
}
